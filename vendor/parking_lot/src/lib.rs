//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! Implements exactly the subset of the API this workspace uses —
//! `Mutex`, `RwLock`, and `Condvar::wait_until` — on top of the
//! standard-library primitives, with parking_lot's ergonomics:
//! no lock poisoning (a panicking holder just releases the lock) and
//! guard types that don't carry a `Result`.
//!
//! The build environment has no access to crates.io, so this crate is
//! wired in via `[patch.crates-io]` in the workspace manifest. Removing
//! the patch swaps the real parking_lot back in with no source changes.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// Mutual exclusion primitive. Unlike `std::sync::Mutex`, acquiring a
/// lock whose former holder panicked succeeds (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait_until`] can temporarily take ownership of it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified or `deadline` passes, releasing the guard's
    /// mutex while waiting (reacquired before returning).
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            let res = cv.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
            assert!(!res.timed_out(), "notify should arrive well before 5s");
        }
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
