//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! Provides `BytesMut` (a growable byte buffer backed by `Vec<u8>`) and
//! the `Buf`/`BufMut` cursor traits with the little-endian accessors the
//! workspace's log-record codecs use. Wired in via `[patch.crates-io]`
//! because the build environment has no crates.io access; the real
//! crate is a drop-in replacement.

use std::ops::{Deref, DerefMut};

/// Growable, contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    pub fn clear(&mut self) {
        self.vec.clear();
    }

    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(new_len, value);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.vec.split_off(at);
        BytesMut {
            vec: std::mem::replace(&mut self.vec, rest),
        }
    }

    /// Split off and return everything, leaving the buffer empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            vec: std::mem::take(&mut self.vec),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut { vec: src.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.vec {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, where
/// consuming advances the slice itself.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.extend_from_slice(b"xyz");
        assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 3);

        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u32_le(), 0xDEADBEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur, b"xyz");
        cur.advance(3);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn take_leaves_empty() {
        let mut buf = BytesMut::with_capacity(16);
        buf.extend_from_slice(b"abc");
        let taken = std::mem::take(&mut buf);
        assert_eq!(&taken[..], b"abc");
        assert!(buf.is_empty());
    }

    #[test]
    fn split_to_partitions() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"hello world");
        let head = buf.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&buf[..], b" world");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
