//! Minimal in-tree stand-in for the `libc` crate (Linux).
//!
//! Declares only the FFI surface this workspace uses: `mmap`/`munmap`/
//! `mprotect` for the protected database image, `sysconf(_SC_PAGESIZE)`,
//! `clock_gettime(CLOCK_PROCESS_CPUTIME_ID)` for CPU-time metering,
//! `epoll`/`poll` readiness APIs for the event-driven network server,
//! and `getrlimit`/`setrlimit` so the connection-scaling bench can raise
//! `RLIMIT_NOFILE`. The symbols come from the system C library the
//! binary links anyway; constants are the Linux generic ABI values.
//! Wired in via `[patch.crates-io]` because the build environment has no
//! crates.io access.

#![allow(non_camel_case_types)]

pub type c_void = std::ffi::c_void;
pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;
pub type time_t = i64;
pub type clockid_t = c_int;

#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;
pub const PROT_EXEC: c_int = 4;

pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

pub const _SC_PAGESIZE: c_int = 30;

pub const CLOCK_PROCESS_CPUTIME_ID: clockid_t = 2;
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;
pub const CLOCK_MONOTONIC: clockid_t = 1;

// ---- epoll (Linux readiness API) ----

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

/// On x86-64 the kernel ABI packs this struct (no padding between
/// `events` and the 64-bit data word); other architectures use natural
/// layout. Getting this wrong silently corrupts every second event.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

// ---- poll(2), the portable fallback ----

pub type nfds_t = c_ulong;

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;
pub const POLLNVAL: i16 = 0x020;

#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct pollfd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

// ---- resource limits ----

pub const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct rlimit {
    pub rlim_cur: u64,
    pub rlim_max: u64,
}

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let ps = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(ps >= 4096, "page size {ps}");
        assert!(ps.count_ones() == 1, "page size {ps} not a power of two");
    }

    #[test]
    fn mmap_mprotect_munmap_round_trip() {
        unsafe {
            let len = sysconf(_SC_PAGESIZE) as size_t;
            let p = mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            std::ptr::write_bytes(p as *mut u8, 0xCD, len);
            assert_eq!(mprotect(p, len, PROT_READ), 0);
            assert_eq!(std::ptr::read(p as *const u8), 0xCD);
            assert_eq!(mprotect(p, len, PROT_READ | PROT_WRITE), 0);
            assert_eq!(munmap(p, len), 0);
        }
    }

    #[test]
    fn cpu_clock_advances() {
        unsafe {
            let mut a = timespec {
                tv_sec: 0,
                tv_nsec: 0,
            };
            assert_eq!(clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut a), 0);
            // Burn a little CPU.
            let mut x = 0u64;
            for i in 0..1_000_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
            let mut b = timespec {
                tv_sec: 0,
                tv_nsec: 0,
            };
            assert_eq!(clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut b), 0);
            assert!((b.tv_sec, b.tv_nsec) >= (a.tv_sec, a.tv_nsec));
        }
    }

    #[test]
    fn epoll_event_matches_kernel_abi() {
        // 12 bytes packed on x86-64; elsewhere natural alignment.
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<epoll_event>(), 12);
        }
    }

    #[test]
    fn epoll_reports_readable_pipe_end() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        unsafe {
            let epfd = epoll_create1(EPOLL_CLOEXEC);
            assert!(epfd >= 0, "epoll_create1 failed");
            let (mut tx, rx) = std::os::unix::net::UnixStream::pair().unwrap();
            let mut ev = epoll_event {
                events: EPOLLIN,
                u64: 42,
            };
            assert_eq!(epoll_ctl(epfd, EPOLL_CTL_ADD, rx.as_raw_fd(), &mut ev), 0);

            // Nothing readable yet: zero events at timeout 0.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(epfd, out.as_mut_ptr(), 4, 0), 0);

            tx.write_all(b"x").unwrap();
            let n = epoll_wait(epfd, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            let got = out[0];
            assert_eq!({ got.u64 }, 42);
            assert!({ got.events } & EPOLLIN != 0);

            assert_eq!(
                epoll_ctl(epfd, EPOLL_CTL_DEL, rx.as_raw_fd(), std::ptr::null_mut()),
                0
            );
            assert_eq!(close(epfd), 0);
        }
    }

    #[test]
    fn poll_reports_readable_pipe_end() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        let (mut tx, rx) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut fds = [pollfd {
            fd: rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        unsafe {
            assert_eq!(poll(fds.as_mut_ptr(), 1, 0), 0);
            tx.write_all(b"x").unwrap();
            assert_eq!(poll(fds.as_mut_ptr(), 1, 1000), 1);
        }
        assert!(fds[0].revents & POLLIN != 0);
    }

    #[test]
    fn getrlimit_nofile_is_sane() {
        let mut lim = rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        unsafe {
            assert_eq!(getrlimit(RLIMIT_NOFILE, &mut lim), 0);
        }
        assert!(lim.rlim_cur >= 64, "soft NOFILE {}", lim.rlim_cur);
        assert!(lim.rlim_max >= lim.rlim_cur);
    }
}
