//! Minimal in-tree stand-in for the `libc` crate (Linux).
//!
//! Declares only the FFI surface this workspace uses: `mmap`/`munmap`/
//! `mprotect` for the protected database image, `sysconf(_SC_PAGESIZE)`,
//! and `clock_gettime(CLOCK_PROCESS_CPUTIME_ID)` for CPU-time metering.
//! The symbols come from the system C library the binary links anyway;
//! constants are the Linux generic ABI values. Wired in via
//! `[patch.crates-io]` because the build environment has no crates.io
//! access.

#![allow(non_camel_case_types)]

pub type c_void = std::ffi::c_void;
pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;
pub type time_t = i64;
pub type clockid_t = c_int;

#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;
pub const PROT_EXEC: c_int = 4;

pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

pub const _SC_PAGESIZE: c_int = 30;

pub const CLOCK_PROCESS_CPUTIME_ID: clockid_t = 2;
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;
pub const CLOCK_MONOTONIC: clockid_t = 1;

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let ps = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(ps >= 4096, "page size {ps}");
        assert!(ps.count_ones() == 1, "page size {ps} not a power of two");
    }

    #[test]
    fn mmap_mprotect_munmap_round_trip() {
        unsafe {
            let len = sysconf(_SC_PAGESIZE) as size_t;
            let p = mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            std::ptr::write_bytes(p as *mut u8, 0xCD, len);
            assert_eq!(mprotect(p, len, PROT_READ), 0);
            assert_eq!(std::ptr::read(p as *const u8), 0xCD);
            assert_eq!(mprotect(p, len, PROT_READ | PROT_WRITE), 0);
            assert_eq!(munmap(p, len), 0);
        }
    }

    #[test]
    fn cpu_clock_advances() {
        unsafe {
            let mut a = timespec {
                tv_sec: 0,
                tv_nsec: 0,
            };
            assert_eq!(clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut a), 0);
            // Burn a little CPU.
            let mut x = 0u64;
            for i in 0..1_000_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
            let mut b = timespec {
                tv_sec: 0,
                tv_nsec: 0,
            };
            assert_eq!(clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut b), 0);
            assert!((b.tv_sec, b.tv_nsec) >= (a.tv_sec, a.tv_nsec));
        }
    }
}
