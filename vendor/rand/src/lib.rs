//! Minimal in-tree stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng` (an xoshiro256++ generator), `SeedableRng::
//! seed_from_u64`, and `Rng::gen_range` over half-open and inclusive
//! integer ranges — the surface the workload driver and fault injector
//! use. Deterministic given a seed, which the TPC-B driver relies on.
//! Wired in via `[patch.crates-io]` because the build environment has
//! no crates.io access.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`)
    /// integer range. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample from `[0, n)` via Lemire-style rejection.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via splitmix64 like the real
    /// `StdRng::seed_from_u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(0xDA11);
        let mut b = StdRng::seed_from_u64(0xDA11);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..32).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-999_999i64..=999_999);
            assert!((-999_999..=999_999).contains(&w));
        }
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(rng.gen_range(5usize..=5), 5);
    }

    #[test]
    fn covers_full_range_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
