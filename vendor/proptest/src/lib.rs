//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro, `Strategy` with `prop_map`/`boxed`, integer-range
//! and `any::<T>()` strategies, `collection::vec`, tuple strategies,
//! `prop_oneof!`, the `prop_assert*`/`prop_assume!` macros, and
//! `ProptestConfig { cases, max_shrink_iters, .. }`.
//!
//! Differences from the real crate, by design:
//! * no shrinking — a failing case reports its inputs (via the panic
//!   message) but is not minimized;
//! * no `.proptest-regressions` persistence — regression seeds recorded
//!   by the real crate are not replayed (checked-in regression files are
//!   kept as documentation, and important regressions get explicit
//!   deterministic tests);
//! * case generation is deterministic per test (seeded from the test's
//!   source location), so failures reproduce run-to-run.
//!
//! Wired in via `[patch.crates-io]` because the build environment has
//! no crates.io access.

pub mod test_runner {
    use std::fmt;

    /// Deterministic xoshiro256++ source used to drive strategies.
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_seed(mut seed: u64) -> TestRng {
            TestRng {
                s: [
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                ],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Unbiased sample from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample empty range");
            let zone = u64::MAX - (u64::MAX - n + 1) % n;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }
    }

    /// Failure (or rejection) raised inside a property-test body.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// Assertion failure: the property does not hold.
        Fail(String),
        /// `prop_assume!` rejection: the inputs are uninteresting.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Runner configuration; construct with struct-update syntax over
    /// `Config::default()`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; this runner never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            // Like the real crate, `PROPTEST_CASES` overrides the
            // default case count — CI bumps it for deeper runs without
            // touching per-test configs. A test that sets `cases`
            // explicitly (rather than `.. Config::default()`) is pinned
            // and unaffected.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(256);
            Config {
                cases,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Execute `body` for `config.cases` deterministic cases. Panics on
    /// the first `Fail`; `Reject`ed cases are skipped (with a cap on
    /// consecutive rejections to catch vacuous tests).
    pub fn run_cases(
        config: &Config,
        source: &str,
        line: u32,
        body: impl Fn(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut seed = 0xB0BA_F377u64;
        for b in source.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        seed = seed.wrapping_add((line as u64) << 32);

        let mut rejects = 0u32;
        let mut case = 0u64;
        let mut executed = 0u32;
        while executed < config.cases {
            let mut rng = TestRng::from_seed(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            case += 1;
            match body(&mut rng) {
                Ok(()) => {
                    executed += 1;
                    rejects = 0;
                }
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects < 1024,
                        "{source}:{line}: too many consecutive prop_assume! rejections"
                    );
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest case {} failed at {source}:{line}: {reason}",
                        case - 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy (what `prop_oneof!` arms become).
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among equally-weighted alternatives.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $via:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $via).wrapping_sub(self.start as $via) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $via).wrapping_sub(lo as $via) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// `any::<T>()` — uniform over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size bound for generated collections; half-open internally.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection::SizeRange;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Bodies may use `prop_assert*`/`prop_assume!` and `?` on
/// `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(&__config, file!(), line!(), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                    let __body = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __body()
                });
            }
        )*
    };
    ($($tt:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($tt)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left, right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Step {
        Read(usize),
        Write(usize),
    }

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 0usize..100,
            v in crate::collection::vec(any::<u8>(), 0..16),
            b in any::<bool>(),
        ) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 16);
            prop_assert!(b || !b);
        }

        #[test]
        fn tuple_and_map(
            pair in (0u32..10, 5i64..=9).prop_map(|(a, b)| (a as i64, b)),
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert!((5..=9).contains(&pair.1));
            prop_assert_ne!(pair.1, 100);
        }

        #[test]
        fn oneof_mixes_arms(step in prop_oneof![
            (0usize..4).prop_map(Step::Read),
            (0usize..4).prop_map(Step::Write),
        ]) {
            match step {
                Step::Read(n) | Step::Write(n) => prop_assert!(n < 4),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, max_shrink_iters: 0, ..ProptestConfig::default() })]
        #[test]
        fn config_applies(x in 0u64..1000) {
            prop_assert_eq!(x, x);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(any::<u32>(), 3..7);
        let mut r1 = TestRng::from_seed(42);
        let mut r2 = TestRng::from_seed(42);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        crate::test_runner::run_cases(
            &ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            "inline",
            0,
            |_rng| Err(TestCaseError::fail("always fails")),
        );
    }
}
