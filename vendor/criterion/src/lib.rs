//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! Implements the subset the `dali-bench` benches use: benchmark
//! groups, `BenchmarkId`, `Throughput`, `Bencher::iter`/`iter_batched`,
//! and the `criterion_group!`/`criterion_main!` macros. Instead of
//! criterion's statistical machinery it runs a short warm-up, then
//! measures a fixed window and prints mean time per iteration (and
//! derived throughput when one was declared). Good enough to exercise
//! the bench binaries offline; swap the real crate back in by dropping
//! the `[patch.crates-io]` entry.

use std::fmt;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_one(&id.into().label, None, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost (ignored by this runner —
/// setup is always per-iteration and excluded from timing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up (also sizes the measurement batches).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_nanos() as u64 / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 10_000);

        let start = Instant::now();
        while start.elapsed() < MEASURE {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.iters_done += batch;
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine(setup()));
        }

        let deadline = Instant::now() + MEASURE;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters_done += 1;
        }
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{label:<50} (no iterations run)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / ns * 1e9)
        }
        None => String::new(),
    };
    println!("{label:<50} {:>12.1} ns/iter{extra}", ns);
}

/// `criterion_group!(name, target, ...)` — defines `fn name()` running
/// each target against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group, ...)` — defines `fn main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 64).label, "f/64");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn group_builder_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .measurement_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(5));
        g.finish();
    }
}
