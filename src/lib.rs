//! # dali — codeword protection for main-memory database data
//!
//! A from-scratch Rust reproduction of *"Using Codewords to Protect
//! Database Data from a Class of Software Errors"* (Bohannon, Rastogi,
//! Seshadri, Silberschatz, Sudarshan — ICDE 1999), including the Dali
//! main-memory storage manager substrate the paper's schemes were built
//! into.
//!
//! The problem: applications with *direct access* to database memory can
//! corrupt it with addressing errors (wild writes, copy overruns). The
//! paper's answer: divide the database into protection regions, maintain
//! an XOR *codeword* per region through the prescribed update interface,
//! and then either
//!
//! * **detect** direct corruption cheaply with asynchronous audits
//!   ([`ProtectionScheme::DataCodeword`]),
//! * **prevent** transaction-carried corruption by checking codewords on
//!   every read ([`ProtectionScheme::ReadPrecheck`]), or
//! * **trace and undo** carried corruption by logging what transactions
//!   read ([`ProtectionScheme::ReadLogging`],
//!   [`ProtectionScheme::CwReadLogging`]) and running *delete-transaction
//!   recovery*, which removes the affected transactions from history and
//!   reports their ids for manual compensation.
//!
//! [`ProtectionScheme::MemoryProtection`] implements the mprotect-based
//! hardware scheme the paper compares against.
//!
//! ## Crates
//!
//! | crate | contents |
//! |---|---|
//! | [`common`](dali_common) | ids, errors, configuration, alignment math |
//! | [`mem`](dali_mem) | page-aligned arena, database image, mprotect wrapper |
//! | [`codeword`](dali_codeword) | codewords, regions, protection latches, audits |
//! | [`wal`](dali_wal) | log records (incl. read logging), local logs, system log |
//! | [`engine`](dali_engine) | transactions, MLR, checkpoints, restart + corruption recovery |
//! | [`faultinject`](dali_faultinject) | wild writes / overruns / bit flips |
//! | [`workload`](dali_workload) | the paper's TPC-B style workload |
//! | [`net`](dali_net) | TCP server + client library, wire protocol, networked TPC-B |
//!
//! ## Quick start
//!
//! ```no_run
//! use dali::{DaliConfig, DaliEngine, ProtectionScheme};
//!
//! let config = DaliConfig::small("/tmp/quickstart")
//!     .with_scheme(ProtectionScheme::DataCodeword);
//! let (db, _) = DaliEngine::create(config).unwrap();
//! let table = db.create_table("kv", 64, 1024).unwrap();
//!
//! let txn = db.begin().unwrap();
//! let rec = txn.insert(table, &[42u8; 64]).unwrap();
//! txn.commit().unwrap();
//!
//! // An asynchronous audit certifies the database corruption-free.
//! assert!(db.audit().unwrap().clean());
//! # let _ = rec;
//! ```

pub use dali_codeword as codeword;
pub use dali_common as common;
pub use dali_engine as engine;
pub use dali_faultinject as faultinject;
pub use dali_mem as mem;
pub use dali_net as net;
pub use dali_wal as wal;
pub use dali_workload as workload;

pub use dali_codeword::{AuditReport, DeferredStatsSnapshot, ParityStatsSnapshot, RepairFallback};
pub use dali_common::{
    CodewordAlgebraKind, DaliConfig, DaliError, DbAddr, Lsn, PageId, ProtectionScheme, RecId,
    Result, SlotId, TableId, TxnId,
};
pub use dali_engine::{
    CheckpointOutcome, DaliEngine, LockManager, LockMode, RecoveryMode, RecoveryOutcome,
    RepairOutcome, TxnHandle,
};
pub use dali_faultinject::{
    CampaignTarget, CampaignVerdict, CorruptionPattern, FaultInjector, InjectionEffect,
    RepairRound, RepairVerdict, WalScanOutcome,
};
pub use dali_net::{DaliClient, DaliServer, NetTpcbDriver, RepairSummary, ServerStats, WireError};
pub use dali_wal::SyncStats;
pub use dali_workload::varlen::{VarlenConfig, VarlenStore, VarlenWorkload};
pub use dali_workload::{RunStats, TpcbConfig, TpcbDriver};
