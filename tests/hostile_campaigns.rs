//! Adversarial corruption campaigns against a live engine, under both
//! codeword algebras.
//!
//! The acceptance bar for the residue algebra: a paired same-column
//! flip — the XOR parity's blind spot — must slide under XOR
//! certification and be caught by residue certification, on *both*
//! places codeword-certified bytes live (the data arena and the
//! anchored checkpoint image), while every other structured pattern is
//! detected by both algebras. The WAL keeps its own XOR frame checksum
//! in every configuration, so the paired flip inside one stable frame
//! is a documented residual exposure there; this suite pins both sides
//! of that line too.

use dali::faultinject::{
    algebra_expected_detected, assert_matrix, campaign_payload, run_arena_round, run_matrix,
    run_wal_round, CampaignTarget, CorruptionPattern, WalScanOutcome,
};
use dali::{
    CheckpointOutcome, CodewordAlgebraKind, DaliConfig, DaliEngine, FaultInjector,
    ProtectionScheme, VarlenConfig, VarlenWorkload,
};

const REC: usize = 128;

fn setup_kind(
    kind: CodewordAlgebraKind,
    name: &str,
) -> (DaliEngine, dali::DbAddr, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(&format!("hostile-{name}-{}", kind.tag()));
    let config = DaliConfig::small(dir.path())
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_codeword_algebra(kind);
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", REC, 32).unwrap();
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &campaign_payload(REC)).unwrap();
    txn.commit().unwrap();
    match db.checkpoint().unwrap() {
        CheckpointOutcome::Certified { .. } => {}
        other => panic!("clean database must certify, got {other:?}"),
    }
    let addr = db.record_addr(rec).unwrap();
    (db, addr, dir)
}

/// The full pattern × target matrix, per algebra: every verdict matches
/// the documented detection table, and in particular the paired
/// same-column flip passes XOR and is caught by residue on the arena
/// *and* on the checkpoint image — the class the residue code exists
/// for.
#[test]
fn matrix_verdicts_split_by_algebra_on_arena_and_checkpoint_image() {
    for kind in CodewordAlgebraKind::ALL {
        let (db, addr, _dir) = setup_kind(kind, "matrix");
        let inj = FaultInjector::new(&db);
        let verdicts = run_matrix(&db, &inj, addr, REC).unwrap();
        // Every pattern landed on both targets.
        assert_eq!(verdicts.len(), CorruptionPattern::ALL.len() * 2, "{kind:?}");
        assert_matrix(&verdicts);

        let paired: Vec<_> = verdicts
            .iter()
            .filter(|v| v.pattern == CorruptionPattern::PairedSameColumn)
            .collect();
        assert_eq!(paired.len(), 2, "{kind:?}: arena + checkpoint image");
        for v in paired {
            assert!(matches!(
                v.target,
                CampaignTarget::Arena | CampaignTarget::CheckpointImage
            ));
            assert_eq!(
                v.detected,
                kind == CodewordAlgebraKind::Residue,
                "{kind:?} / {:?}: the paired flip is XOR's blind spot and residue's reason to exist",
                v.target
            );
        }
        // The campaign repaired everything: the engine still audits
        // clean and can keep certifying.
        assert!(db.audit().unwrap().clean(), "{kind:?}");
        assert!(matches!(
            db.checkpoint().unwrap(),
            CheckpointOutcome::Certified { .. }
        ));
    }
}

/// Checkpoint-time certification splits the same way: with the paired
/// flip sitting in the arena, the XOR engine certifies (and anchors) a
/// corrupt image; the residue engine refuses, writes the corruption
/// marker, and poisons itself for corruption recovery.
#[test]
fn paired_flip_splits_checkpoint_certification() {
    for kind in CodewordAlgebraKind::ALL {
        let (db, addr, _dir) = setup_kind(kind, "certify");
        let inj = FaultInjector::new(&db);
        let mut window = vec![0u8; REC];
        db.db().image.read(addr, &mut window).unwrap();
        let corrupt = CorruptionPattern::PairedSameColumn
            .apply(&window)
            .expect("campaign_payload holds an equal-bit column");
        assert!(inj.wild_write_bytes(addr, &corrupt).unwrap().landed());

        match (kind, db.checkpoint()) {
            (CodewordAlgebraKind::XorFold, Ok(CheckpointOutcome::Certified { .. })) => {}
            (CodewordAlgebraKind::Residue, Ok(CheckpointOutcome::CorruptionDetected(report))) => {
                assert!(!report.clean());
            }
            (k, other) => panic!("{k:?}: unexpected checkpoint outcome {other:?}"),
        }
    }
}

/// The WAL's XOR frame checksum, probed at every sampled offset of the
/// stable log: a single flip is either rejected or lands in slack —
/// never silently accepted — while the paired same-column flip slides
/// under the checksum somewhere (the documented residual exposure; the
/// codeword algebra does not govern the log).
#[test]
fn wal_single_flips_reject_and_paired_flips_slide() {
    let (db, _addr, _dir) = setup_kind(CodewordAlgebraKind::Residue, "wal");
    // More committed frames to probe.
    let t2 = db.create_table("t2", REC, 32).unwrap();
    let txn = db.begin().unwrap();
    for _ in 0..8 {
        txn.insert(t2, &campaign_payload(REC)).unwrap();
    }
    txn.commit().unwrap();
    db.db().syslog.flush(false).unwrap();
    let path = dali::engine::db::Db::log_path(&db.db().config.dir);
    let len = std::fs::metadata(&path).unwrap().len() as usize;
    assert!(len > 512, "stable log too small to probe: {len}");

    let mut single = (0usize, 0usize, 0usize); // rejected, altered, unaffected
    let mut paired = (0usize, 0usize, 0usize);
    for off in (0..len.saturating_sub(16)).step_by(48) {
        if let Some(o) = run_wal_round(&db, CorruptionPattern::SingleFlip, off, 8).unwrap() {
            match o {
                WalScanOutcome::Rejected => single.0 += 1,
                WalScanOutcome::SilentlyAltered => single.1 += 1,
                WalScanOutcome::Unaffected => single.2 += 1,
            }
        }
        if let Some(o) = run_wal_round(&db, CorruptionPattern::PairedSameColumn, off, 8).unwrap() {
            match o {
                WalScanOutcome::Rejected => paired.0 += 1,
                WalScanOutcome::SilentlyAltered => paired.1 += 1,
                WalScanOutcome::Unaffected => paired.2 += 1,
            }
        }
    }
    assert!(single.0 > 0, "some single flip must hit a stable frame");
    assert_eq!(
        single.1, 0,
        "a single flip can never slide under the XOR frame checksum"
    );
    assert!(
        paired.1 > 0,
        "the paired flip must slide under the frame checksum somewhere \
         (documented residual exposure: rejected {} / altered {} / unaffected {})",
        paired.0,
        paired.1,
        paired.2
    );
}

/// The variable-length workload's live slots are protected the same
/// way: the paired flip against a varlen record splits the algebras,
/// everything is repaired, and the workload (with its secondary index)
/// keeps running and verifying afterwards.
#[test]
fn varlen_records_split_by_algebra_and_survive_repair() {
    for kind in CodewordAlgebraKind::ALL {
        let dir = dali_testutil::TempDir::new(&format!("hostile-varlen-{}", kind.tag()));
        let config = DaliConfig::small(dir.path())
            .with_scheme(ProtectionScheme::DataCodeword)
            .with_codeword_algebra(kind);
        let (db, _) = DaliEngine::create(config).unwrap();
        let mut wl = VarlenWorkload::setup(&db, VarlenConfig::small()).unwrap();
        wl.run_ops(300).unwrap();
        wl.verify().unwrap();

        let inj = FaultInjector::new(&db);
        let rec = wl.sample_rec().expect("workload left live records");
        let addr = db.record_addr(rec).unwrap();
        for pattern in [
            CorruptionPattern::SingleFlip,
            CorruptionPattern::PairedSameColumn,
            CorruptionPattern::Burst,
        ] {
            let v = run_arena_round(&db, &inj, pattern, addr, 96)
                .unwrap()
                .unwrap_or_else(|| panic!("{pattern:?} must land on a varlen slot"));
            assert_eq!(
                v.detected,
                algebra_expected_detected(kind, pattern),
                "{kind:?} / {pattern:?} on a varlen slot"
            );
        }

        // Repaired in place: the workload continues and still agrees
        // with its shadow, and the database audits clean.
        wl.run_ops(200).unwrap();
        wl.verify().unwrap();
        assert!(db.audit().unwrap().clean(), "{kind:?}");
    }
}
