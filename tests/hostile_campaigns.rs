//! Adversarial corruption campaigns against a live engine, under both
//! codeword algebras.
//!
//! The acceptance bar for the residue algebra: a paired same-column
//! flip — the XOR parity's blind spot — must slide under XOR
//! certification and be caught by residue certification, on *both*
//! places codeword-certified bytes live (the data arena and the
//! anchored checkpoint image), while every other structured pattern is
//! detected by both algebras. The WAL's frame checksum now follows the
//! configured algebra too: XOR-framed logs keep the paired flip as a
//! documented residual exposure, residue-framed logs reject it; this
//! suite pins both sides of that line. The repair leg asserts the
//! self-healing layer above detection: every detected pattern is
//! rebuilt *in place* from the parity stripe (byte-identical image,
//! clean post-repair audit), and a double fault inside one parity group
//! falls back to online log-based recovery.

use dali::faultinject::{
    algebra_expected_detected, assert_matrix, assert_repair_matrix, campaign_payload,
    run_arena_round, run_double_fault_round, run_matrix, run_repair_matrix, run_wal_round,
    CampaignTarget, CorruptionPattern, RepairVerdict, WalScanOutcome,
};
use dali::{
    CheckpointOutcome, CodewordAlgebraKind, DaliConfig, DaliEngine, FaultInjector,
    ProtectionScheme, VarlenConfig, VarlenWorkload,
};
use std::sync::atomic::Ordering;

const REC: usize = 128;

fn setup_kind(
    kind: CodewordAlgebraKind,
    name: &str,
) -> (DaliEngine, dali::DbAddr, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(&format!("hostile-{name}-{}", kind.tag()));
    let config = DaliConfig::small(dir.path())
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_codeword_algebra(kind);
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", REC, 32).unwrap();
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &campaign_payload(REC)).unwrap();
    txn.commit().unwrap();
    match db.checkpoint().unwrap() {
        CheckpointOutcome::Certified { .. } => {}
        other => panic!("clean database must certify, got {other:?}"),
    }
    let addr = db.record_addr(rec).unwrap();
    (db, addr, dir)
}

/// The full pattern × target matrix, per algebra: every verdict matches
/// the documented detection table, and in particular the paired
/// same-column flip passes XOR and is caught by residue on the arena
/// *and* on the checkpoint image — the class the residue code exists
/// for.
#[test]
fn matrix_verdicts_split_by_algebra_on_arena_and_checkpoint_image() {
    for kind in CodewordAlgebraKind::ALL {
        let (db, addr, _dir) = setup_kind(kind, "matrix");
        let inj = FaultInjector::new(&db);
        let verdicts = run_matrix(&db, &inj, addr, REC).unwrap();
        // Every pattern landed on both targets.
        assert_eq!(verdicts.len(), CorruptionPattern::ALL.len() * 2, "{kind:?}");
        assert_matrix(&verdicts);

        let paired: Vec<_> = verdicts
            .iter()
            .filter(|v| v.pattern == CorruptionPattern::PairedSameColumn)
            .collect();
        assert_eq!(paired.len(), 2, "{kind:?}: arena + checkpoint image");
        for v in paired {
            assert!(matches!(
                v.target,
                CampaignTarget::Arena | CampaignTarget::CheckpointImage
            ));
            assert_eq!(
                v.detected,
                kind == CodewordAlgebraKind::Residue,
                "{kind:?} / {:?}: the paired flip is XOR's blind spot and residue's reason to exist",
                v.target
            );
        }
        // The campaign repaired everything: the engine still audits
        // clean and can keep certifying.
        assert!(db.audit().unwrap().clean(), "{kind:?}");
        assert!(matches!(
            db.checkpoint().unwrap(),
            CheckpointOutcome::Certified { .. }
        ));
    }
}

/// Checkpoint-time certification splits the same way: with the paired
/// flip sitting in the arena, the XOR engine certifies (and anchors) a
/// corrupt image; the residue engine detects it — and, with the parity
/// stripe on by default, heals the region in place and carries on
/// certifying instead of poisoning itself.
#[test]
fn paired_flip_splits_checkpoint_certification() {
    for kind in CodewordAlgebraKind::ALL {
        let (db, addr, _dir) = setup_kind(kind, "certify");
        let inj = FaultInjector::new(&db);
        let mut window = vec![0u8; REC];
        db.db().image.read(addr, &mut window).unwrap();
        let corrupt = CorruptionPattern::PairedSameColumn
            .apply(&window)
            .expect("campaign_payload holds an equal-bit column");
        assert!(inj.wild_write_bytes(addr, &corrupt).unwrap().landed());

        match (kind, db.checkpoint()) {
            (CodewordAlgebraKind::XorFold, Ok(CheckpointOutcome::Certified { .. })) => {}
            (
                CodewordAlgebraKind::Residue,
                Ok(CheckpointOutcome::CorruptionRepaired { report, outcome }),
            ) => {
                assert!(!report.clean());
                assert!(
                    outcome.in_place(),
                    "single corrupt region must rebuild from its parity group, got {outcome:?}"
                );
                // Healed, not poisoned: the image is back to the
                // pre-corruption bytes and the engine keeps certifying.
                let mut after = vec![0u8; REC];
                db.db().image.read(addr, &mut after).unwrap();
                assert_eq!(after, window, "repair must restore the original bytes");
                assert!(db.audit().unwrap().clean());
                assert!(matches!(
                    db.checkpoint().unwrap(),
                    CheckpointOutcome::Certified { .. }
                ));
            }
            (k, other) => panic!("{k:?}: unexpected checkpoint outcome {other:?}"),
        }
    }
}

/// Concatenate the retained log segments in base order: LSNs are global
/// byte offsets, so this reconstructs the global stable-log byte stream
/// (seal frames included).
fn read_log_bytes(log_dir: &std::path::Path) -> Vec<u8> {
    let mut out = Vec::new();
    for seg in dali::wal::segment::list(log_dir).unwrap() {
        let bytes = std::fs::read(dali::wal::segment::path(log_dir, seg.base)).unwrap();
        out.extend_from_slice(&bytes);
    }
    out
}

/// Walk the `[len:u32][checksum:u32][type:u8][payload]` framing of a raw
/// stable log and return every in-payload probe offset with at least 8
/// bytes of payload after it. Seal frames (empty payload) are skipped. A
/// flip straddling the *stored checksum* and the matching column of the
/// first payload word compensates under either algebra — the checksum
/// cannot protect itself — so the algebra split below is a claim about
/// payload bytes, and the probes stay inside them.
fn payload_probe_offsets(log: &[u8]) -> Vec<usize> {
    const HDR: usize = dali::wal::record::FRAME_HDR;
    let mut offs = Vec::new();
    let mut pos = 0usize;
    while pos + HDR <= log.len() {
        let len = u32::from_le_bytes(log[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + HDR + len > log.len() {
            break;
        }
        let payload = pos + HDR..pos + HDR + len;
        for off in (payload.start..payload.end.saturating_sub(8)).step_by(16) {
            offs.push(off);
        }
        pos += HDR + len;
    }
    offs
}

/// The WAL's frame checksum follows the configured algebra, probed at
/// sampled payload offsets of the stable log: a single flip is either
/// rejected or lands in replayed-prefix slack — never silently accepted
/// — under both kinds, while the paired same-column flip slides
/// somewhere under XOR frames (the documented residual exposure) and is
/// rejected everywhere by residue frames.
#[test]
fn wal_single_flips_reject_and_paired_flips_split_by_algebra() {
    for kind in CodewordAlgebraKind::ALL {
        let (db, _addr, _dir) = setup_kind(kind, "wal");
        // More committed frames to probe.
        let t2 = db.create_table("t2", REC, 32).unwrap();
        let txn = db.begin().unwrap();
        for _ in 0..8 {
            txn.insert(t2, &campaign_payload(REC)).unwrap();
        }
        txn.commit().unwrap();
        db.db().syslog.flush(false).unwrap();
        let path = dali::engine::db::Db::log_path(&db.db().config.dir);
        let log = read_log_bytes(&path);
        let offsets = payload_probe_offsets(&log);
        assert!(
            offsets.len() > 8,
            "stable log too small to probe: {} offsets",
            offsets.len()
        );

        let mut single = (0usize, 0usize, 0usize); // rejected, altered, unaffected
        let mut paired = (0usize, 0usize, 0usize);
        for &off in &offsets {
            if let Some(o) = run_wal_round(&db, CorruptionPattern::SingleFlip, off, 8).unwrap() {
                match o {
                    WalScanOutcome::Rejected => single.0 += 1,
                    WalScanOutcome::SilentlyAltered => single.1 += 1,
                    WalScanOutcome::Unaffected => single.2 += 1,
                }
            }
            if let Some(o) =
                run_wal_round(&db, CorruptionPattern::PairedSameColumn, off, 8).unwrap()
            {
                match o {
                    WalScanOutcome::Rejected => paired.0 += 1,
                    WalScanOutcome::SilentlyAltered => paired.1 += 1,
                    WalScanOutcome::Unaffected => paired.2 += 1,
                }
            }
        }
        assert!(
            single.0 > 0,
            "{kind:?}: some single flip must hit a stable frame"
        );
        assert_eq!(
            single.1, 0,
            "{kind:?}: a single flip can never slide under the frame checksum"
        );
        match kind {
            CodewordAlgebraKind::XorFold => assert!(
                paired.1 > 0,
                "the paired flip must slide under XOR frames somewhere \
                 (documented residual exposure: rejected {} / altered {} / unaffected {})",
                paired.0,
                paired.1,
                paired.2
            ),
            CodewordAlgebraKind::Residue => {
                assert_eq!(
                    paired.1, 0,
                    "residue frames must never silently accept an in-payload paired flip \
                     (rejected {} / unaffected {})",
                    paired.0, paired.2
                );
                assert!(
                    paired.0 > 0,
                    "some paired flip must hit a stable frame and be rejected"
                );
            }
        }
    }
}

/// The variable-length workload's live slots are protected the same
/// way: the paired flip against a varlen record splits the algebras,
/// everything is repaired, and the workload (with its secondary index)
/// keeps running and verifying afterwards.
#[test]
fn varlen_records_split_by_algebra_and_survive_repair() {
    for kind in CodewordAlgebraKind::ALL {
        let dir = dali_testutil::TempDir::new(&format!("hostile-varlen-{}", kind.tag()));
        let config = DaliConfig::small(dir.path())
            .with_scheme(ProtectionScheme::DataCodeword)
            .with_codeword_algebra(kind);
        let (db, _) = DaliEngine::create(config).unwrap();
        let mut wl = VarlenWorkload::setup(&db, VarlenConfig::small()).unwrap();
        wl.run_ops(300).unwrap();
        wl.verify().unwrap();

        let inj = FaultInjector::new(&db);
        let rec = wl.sample_rec().expect("workload left live records");
        let addr = db.record_addr(rec).unwrap();
        for pattern in [
            CorruptionPattern::SingleFlip,
            CorruptionPattern::PairedSameColumn,
            CorruptionPattern::Burst,
        ] {
            let v = run_arena_round(&db, &inj, pattern, addr, 96)
                .unwrap()
                .unwrap_or_else(|| panic!("{pattern:?} must land on a varlen slot"));
            assert_eq!(
                v.detected,
                algebra_expected_detected(kind, pattern),
                "{kind:?} / {pattern:?} on a varlen slot"
            );
        }

        // Repaired in place: the workload continues and still agrees
        // with its shadow, and the database audits clean.
        wl.run_ops(200).unwrap();
        wl.verify().unwrap();
        assert!(db.audit().unwrap().clean(), "{kind:?}");
    }
}

/// The self-healing leg of the campaign: every detected pattern landing
/// inside a single 64-byte region is rebuilt *in place* from its parity
/// group — byte-identical image, clean post-repair audit — under both
/// algebras, and the engine keeps certifying afterwards.
#[test]
fn repair_matrix_rebuilds_every_detected_pattern_in_place() {
    for kind in CodewordAlgebraKind::ALL {
        // 64-byte records: the record fills exactly one protection
        // region, so every pattern (including the full-window Burst)
        // stays a single-region, single-fault corruption that must
        // rebuild in place — and the torn-page tail keeps the
        // cancellation-breaking last byte of [`campaign_payload`]
        // inside the window.
        let dir = dali_testutil::TempDir::new(&format!("hostile-repair-{}", kind.tag()));
        let config = DaliConfig::small(dir.path())
            .with_scheme(ProtectionScheme::DataCodeword)
            .with_codeword_algebra(kind);
        let (db, _) = DaliEngine::create(config).unwrap();
        let t = db.create_table("t", 64, 32).unwrap();
        let txn = db.begin().unwrap();
        let rec = txn.insert(t, &campaign_payload(64)).unwrap();
        txn.commit().unwrap();
        match db.checkpoint().unwrap() {
            CheckpointOutcome::Certified { .. } => {}
            other => panic!("clean database must certify, got {other:?}"),
        }
        let addr = db.record_addr(rec).unwrap();
        assert!(
            db.db().prot.parity().is_some(),
            "small() config must enable the parity stripe by default"
        );
        let inj = FaultInjector::new(&db);
        let rounds = run_repair_matrix(&db, &inj, addr, 64).unwrap();
        assert!(
            rounds.len() >= CorruptionPattern::ALL.len() - 1,
            "{kind:?}: most patterns must land ({} rounds)",
            rounds.len()
        );
        assert_repair_matrix(&rounds);
        for r in &rounds {
            if algebra_expected_detected(kind, r.pattern) {
                assert_eq!(
                    r.verdict,
                    RepairVerdict::RepairedInPlace,
                    "{kind:?} / {:?}: single-region faults rebuild from parity",
                    r.pattern
                );
            }
        }

        let stats = db.stats();
        assert!(
            stats.repair_attempted.load(Ordering::Relaxed) > 0,
            "{kind:?}"
        );
        assert!(
            stats.repair_succeeded.load(Ordering::Relaxed) > 0,
            "{kind:?}"
        );
        assert!(db.audit().unwrap().clean(), "{kind:?}");
        assert!(matches!(
            db.checkpoint().unwrap(),
            CheckpointOutcome::Certified { .. }
        ));
    }
}

/// Two corrupt regions inside one parity group exceed what a single
/// XOR stripe can solve: repair must detect the sibling corruption,
/// fall back to online log-based recovery (certified checkpoint + WAL
/// replay), and still end with the original bytes and a clean audit.
#[test]
fn double_fault_in_one_parity_group_falls_back_to_log_recovery() {
    for kind in CodewordAlgebraKind::ALL {
        let (db, addr, _dir) = setup_kind(kind, "double");
        let inj = FaultInjector::new(&db);
        let round = run_double_fault_round(&db, &inj, addr).unwrap();
        assert_eq!(
            round.verdict,
            RepairVerdict::RecoveredViaLog,
            "{kind:?}: a double fault cannot be solved by one parity stripe"
        );
        assert!(
            round.image_restored,
            "{kind:?}: log recovery must restore the bytes"
        );

        let stats = db.stats();
        assert!(
            stats.repair_fell_back.load(Ordering::Relaxed) > 0,
            "{kind:?}"
        );
        assert!(db.audit().unwrap().clean(), "{kind:?}");
        assert!(matches!(
            db.checkpoint().unwrap(),
            CheckpointOutcome::Certified { .. }
        ));
    }
}
