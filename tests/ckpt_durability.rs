//! Checkpoint-anchor durability under a crash between the anchor rename
//! and the directory fsync that makes the rename durable.
//!
//! `atomic_write` renames the new anchor over the old and then fsyncs
//! the parent directory. A crash inside that window leaves the disk in
//! one of two states: the rename persisted (new anchor) or it was lost
//! (old anchor resurfaces). Either way the anchor must name a
//! *certified* checkpoint and recovery must reproduce every committed
//! transaction — the older anchor simply replays a longer log tail.
//!
//! The `atomic_write.post_rename` crash point is armed to trip on its
//! third occurrence within the checkpoint (the first is the parity-stripe
//! write, the second the meta write, the third the anchor write). The
//! crash-point registry is process-global, so this test lives alone in
//! its own binary.

use dali_common::{DaliConfig, ProtectionScheme, RecId};
use dali_engine::DaliEngine;
use dali_faultinject::crashpoint;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-ckdur-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn assert_recovers(dir: &std::path::Path, expected: &[(RecId, Vec<u8>)]) {
    let config = DaliConfig::small(dir).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _outcome) = DaliEngine::open(config).unwrap();
    // The anchor named a certified image: the database opens and every
    // committed record is present with its committed value.
    let txn = db.begin().unwrap();
    for (rec, val) in expected {
        assert_eq!(&txn.read_vec(*rec).unwrap(), val, "record {rec:?}");
    }
    txn.commit().unwrap();
    // And the recovered database is itself audit-clean.
    assert!(db.audit().unwrap().clean());
}

#[test]
fn crash_between_anchor_rename_and_dir_sync_recovers_both_ways() {
    // Guard the process-global registry: asserts no point leaked in from
    // another test, and disarms everything on every exit path (including
    // assertion failures below).
    let _guard = crashpoint::ScopedCrashpoints::new();
    let dir = tmpdir("anchor");
    let config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", 32, 16).unwrap();

    // Transaction 1, then a certified checkpoint (anchor → image 0).
    let txn = db.begin().unwrap();
    let r1 = txn.insert(t, &[0x11; 32]).unwrap();
    txn.commit().unwrap();
    db.checkpoint().unwrap();
    let anchor_path = dir.join("cur_ckpt");
    let old_anchor = std::fs::read(&anchor_path).unwrap();

    // Transaction 2, committed but only checkpointed by the attempt that
    // crashes mid-anchor-write.
    let txn = db.begin().unwrap();
    let r2 = txn.insert(t, &[0x22; 32]).unwrap();
    txn.commit().unwrap();

    // Arm the third atomic_write of the checkpoint: the parity-stripe and
    // meta writes pass, the anchor write trips *after* its rename,
    // *before* the directory sync.
    crashpoint::arm_after("atomic_write.post_rename", 2);
    let err = db.checkpoint().unwrap_err();
    assert!(
        err.to_string().contains("crash point tripped"),
        "unexpected error: {err}"
    );
    assert!(!crashpoint::is_armed("atomic_write.post_rename"));
    db.crash();

    let expected = vec![(r1, vec![0x11; 32]), (r2, vec![0x22; 32])];
    let new_anchor = std::fs::read(&anchor_path).unwrap();
    assert_ne!(old_anchor, new_anchor, "the rename itself happened");

    // Post-crash state A: the rename persisted — the anchor names the
    // just-written (fully certified: pages + audit + meta all preceded
    // the anchor write) image.
    let persisted = tmpdir("anchor-persisted");
    copy_dir(&dir, &persisted);
    assert_recovers(&persisted, &expected);

    // Post-crash state B: the unsynced rename was lost — the previous
    // anchor resurfaces and recovery replays the longer log tail from
    // the older certified checkpoint.
    let reverted = tmpdir("anchor-reverted");
    copy_dir(&dir, &reverted);
    std::fs::write(reverted.join("cur_ckpt"), &old_anchor).unwrap();
    assert_recovers(&reverted, &expected);

    assert!(
        !crashpoint::any_armed(),
        "no crash point may outlive the test"
    );
}
