//! Parallel redo equivalence: restart recovery with a page-partitioned
//! worker pool must be indistinguishable from serial replay.
//!
//! A random transaction mix (commits, aborts, multi-record updates) runs
//! against tiny log segments so the redo scan crosses several segment
//! boundaries, then the database is recovered with `redo_threads` of 1,
//! 2 and 8 from identical copies of the crashed directory. The recovered
//! image must be byte-identical across thread counts, and the recovery
//! outcome (mode, scanned-record count, rollback sets) must match
//! exactly.

use dali_common::{DaliConfig, DbAddr, ProtectionScheme};
use dali_engine::DaliEngine;
use proptest::prelude::*;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-predo-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn config_for(dir: &std::path::Path, redo_threads: usize) -> DaliConfig {
    let mut c = DaliConfig::small(dir)
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_log_segment_bytes(1024)
        .with_redo_threads(redo_threads);
    c.db_pages = 64;
    c
}

/// One recovery run: image bytes + the observable outcome.
fn recover(dir: &std::path::Path, threads: usize) -> (Vec<u8>, String) {
    let config = config_for(dir, threads);
    let db_bytes = config.db_bytes();
    let (db, outcome) = DaliEngine::open(config).unwrap();
    let mut image = vec![0u8; db_bytes];
    db.db().image.read(DbAddr(0), &mut image).unwrap();
    let summary = format!(
        "{:?} scanned={} rolled_back={:?} deleted={:?}",
        outcome.mode, outcome.records_scanned, outcome.rolled_back_txns, outcome.deleted_txns
    );
    db.crash();
    (image, summary)
}

/// Heavier default when the deep-proptest env knob is set (CI), light
/// locally — each case runs one workload plus three full recoveries.
fn cases() -> u32 {
    if std::env::var_os("PROPTEST_CASES").is_some() {
        ProptestConfig::default().cases
    } else {
        16
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), .. ProptestConfig::default() })]

    #[test]
    fn parallel_redo_is_byte_identical_to_serial(
        // Each txn: list of (record index, value seed), plus commit/abort.
        txns in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..12, any::<u8>()), 1..5),
                any::<bool>(),
            ),
            1..7,
        ),
    ) {
        let dir = tmpdir("base");
        let (db, _) = DaliEngine::create(config_for(&dir, 1)).unwrap();
        // 512-byte records spread the working set over several pages, so
        // the page-partitioned buckets genuinely interleave.
        let t = db.create_table("t", 512, 16).unwrap();
        let setup = db.begin().unwrap();
        let mut recs = Vec::new();
        for i in 0..12usize {
            recs.push(setup.insert(t, &[i as u8; 512]).unwrap());
        }
        setup.commit().unwrap();

        for (ops, commit) in &txns {
            let txn = db.begin().unwrap();
            for &(idx, seed) in ops {
                let mut v = vec![seed; 512];
                v[0] = idx as u8;
                txn.update(recs[idx], &v).unwrap();
            }
            if *commit {
                txn.commit().unwrap();
            } else {
                txn.abort().unwrap();
            }
        }
        db.crash();

        let mut baseline: Option<(Vec<u8>, String)> = None;
        for threads in [1usize, 2, 8] {
            let case = tmpdir(&format!("t{threads}"));
            copy_dir(&dir, &case);
            let (image, summary) = recover(&case, threads);
            match &baseline {
                None => baseline = Some((image, summary)),
                Some((base_img, base_sum)) => {
                    prop_assert_eq!(&summary, base_sum, "outcome diverged at {} threads", threads);
                    prop_assert!(
                        &image == base_img,
                        "recovered image diverged from serial replay at {} threads",
                        threads
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&case);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
