//! Property tests of the dali-net wire protocol.
//!
//! Two families:
//!
//! * **Round-trip**: arbitrary requests, responses and wire errors
//!   survive encode → frame → unframe → decode unchanged, so the client
//!   and server can never disagree about a well-formed message.
//! * **Adversarial input**: arbitrary garbage bytes, bit-flipped frames
//!   and truncations of valid frames produce a structured protocol
//!   error (`DaliError::InvalidArg` / `Io`) — never a panic and never a
//!   huge allocation — which is what lets the server keep its promise
//!   that a malicious or broken peer cannot take it down.
//!
//! CI raises the case count via `PROPTEST_CASES`, as with the lock-model
//! suite.

use dali::net::protocol::{
    encode_request, encode_response, read_frame, write_frame, HealthReport, MetricsReport,
    RepairSummary, Request, Response, ServerStats, VerbMetrics, WireError, MAX_FRAME,
};
use dali::{DbAddr, RecId, SlotId, TableId, TxnId};
use proptest::prelude::*;

fn arb_rec() -> impl Strategy<Value = RecId> {
    (any::<u32>(), any::<u32>()).prop_map(|(t, s)| RecId::new(TableId(t), SlotId(s)))
}

/// Short ASCII table names (the only strings requests carry).
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..=122, 0..16)
        .prop_map(|v| String::from_utf8(v).expect("ascii range"))
}

fn arb_blob() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..200)
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Begin),
        arb_rec().prop_map(|rec| Request::Read { rec }),
        (any::<u32>(), arb_blob()).prop_map(|(t, data)| Request::Insert {
            table: TableId(t),
            data,
        }),
        (arb_rec(), arb_blob()).prop_map(|(rec, data)| Request::Update { rec, data }),
        arb_rec().prop_map(|rec| Request::Delete { rec }),
        arb_rec().prop_map(|rec| Request::LockExclusive { rec }),
        Just(Request::Commit),
        Just(Request::Abort),
        (arb_name(), any::<u32>(), any::<u64>()).prop_map(|(name, rec_size, capacity)| {
            Request::CreateTable {
                name,
                rec_size,
                capacity,
            }
        }),
        arb_name().prop_map(|name| Request::OpenTable { name }),
        any::<u32>().prop_map(|t| Request::RecordCount { table: TableId(t) }),
        Just(Request::Audit),
        Just(Request::Stats),
        Just(Request::Ping),
        any::<u64>().prop_map(|region| Request::Repair { region }),
        Just(Request::Health),
        Just(Request::Metrics),
    ]
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    prop_oneof![
        (any::<u64>(), arb_rec()).prop_map(|(t, rec)| WireError::LockDenied { txn: TxnId(t), rec }),
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>()).prop_map(
            |(addr, len, expected, actual)| WireError::CorruptionDetected {
                addr: DbAddr(addr as usize),
                len,
                expected,
                actual,
            }
        ),
        any::<u64>().prop_map(|a| WireError::WriteFault {
            addr: DbAddr(a as usize),
        }),
        any::<u64>().prop_map(|t| WireError::TxnAborted(TxnId(t))),
        arb_name().prop_map(WireError::NotFound),
        arb_name().prop_map(WireError::OutOfSpace),
        arb_name().prop_map(WireError::InvalidArg),
        arb_name().prop_map(WireError::RecoveryFailed),
        Just(WireError::Crashed),
        arb_name().prop_map(WireError::Io),
        Just(WireError::NoTxn),
        Just(WireError::TxnAlreadyOpen),
        Just(WireError::ConnectionClosed),
    ]
}

fn arb_stats() -> impl Strategy<Value = ServerStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(a, b, c, d, e, f)| ServerStats {
            commits: a,
            aborts: b,
            fsyncs: c,
            log_flushes: d,
            durable_commits: e,
            piggybacked: f,
            group_followers: a ^ b,
            sessions: c ^ d,
            orphans_rolled_back: e ^ f,
            deferred_drains: a ^ c,
            deferred_coalesced: b ^ d,
            deferred_max_shard_depth: a ^ e,
            deferred_pending: b ^ f,
            audits_run: c ^ e,
            audit_regions: d ^ f,
            audit_bytes_folded: a ^ f,
            audit_ns: c ^ f,
            certify_regions_certified: a ^ d,
            certify_regions_skipped: b ^ e,
            audit_latch_brackets: c.wrapping_add(f),
            repair_attempted: d ^ e,
            repair_succeeded: a.wrapping_add(b),
            repair_fell_back: c ^ d ^ e,
            repair_bytes_rebuilt: a.wrapping_mul(3),
            certify_parity_groups: f.wrapping_add(1),
            conns_rejected: a ^ b ^ c,
            frames_pipelined: d.wrapping_add(e),
            read_parks: b ^ c ^ d,
            exec_queue_depth: e ^ a,
            exec_queue_max: f ^ b,
            loop_iterations: a.wrapping_add(f),
            outbound_buffered_max: b.wrapping_mul(5),
            log_segments_active: c.wrapping_add(d),
            log_segments_retired: e.wrapping_mul(7),
            log_bytes_on_disk: f ^ a ^ b,
            redo_threads_used: d.wrapping_add(1),
            redo_parallel_ns: e ^ c,
        })
}

fn arb_health() -> impl Strategy<Value = HealthReport> {
    (any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(healthy, conns_open, exec_queue_depth, uptime_ns)| HealthReport {
            healthy,
            conns_open,
            exec_queue_depth,
            uptime_ns,
        },
    )
}

fn arb_metrics() -> impl Strategy<Value = MetricsReport> {
    let verb = (
        any::<u8>(),
        1u64..u64::MAX,
        any::<u64>(),
        proptest::collection::vec((0u8..64, 1u64..u64::MAX), 0..8),
    )
        .prop_map(|(verb, count, total_ns, mut buckets)| {
            // The wire format carries buckets ascending and unique.
            buckets.sort_by_key(|&(i, _)| i);
            buckets.dedup_by_key(|&mut (i, _)| i);
            VerbMetrics {
                verb,
                count,
                total_ns,
                buckets,
            }
        });
    (any::<u64>(), proptest::collection::vec(verb, 0..6)).prop_map(|(uptime_ns, mut verbs)| {
        verbs.sort_by_key(|v| v.verb);
        verbs.dedup_by_key(|v| v.verb);
        MetricsReport { uptime_ns, verbs }
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        any::<u64>().prop_map(|t| Response::Began { txn: TxnId(t) }),
        arb_blob().prop_map(Response::Data),
        arb_rec().prop_map(|rec| Response::Inserted { rec }),
        any::<u32>().prop_map(|t| Response::Table { table: TableId(t) }),
        any::<u64>().prop_map(Response::Count),
        (any::<bool>(), any::<u64>()).prop_map(|(clean, regions_checked)| Response::Audited {
            clean,
            regions_checked,
        }),
        arb_stats().prop_map(Response::Stats),
        arb_health().prop_map(Response::Health),
        arb_metrics().prop_map(Response::Metrics),
        arb_wire_error().prop_map(Response::Err),
        (any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(in_place, regions_rebuilt, bytes_rebuilt, records_replayed)| {
                Response::Repaired(RepairSummary {
                    in_place,
                    regions_rebuilt,
                    bytes_rebuilt,
                    records_replayed,
                })
            }
        ),
    ]
}

proptest! {
    /// encode → frame → unframe → decode is the identity on requests.
    #[test]
    fn request_round_trips_through_a_frame(req in arb_request()) {
        let payload = encode_request(&req);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = &wire[..];
        let got = read_frame(&mut cursor).unwrap().expect("one frame");
        prop_assert_eq!(Request::decode(&got).unwrap(), req);
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    /// encode → frame → unframe → decode is the identity on responses
    /// (including every structured error variant).
    #[test]
    fn response_round_trips_through_a_frame(resp in arb_response()) {
        let payload = encode_response(&resp);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = &wire[..];
        let got = read_frame(&mut cursor).unwrap().expect("one frame");
        prop_assert_eq!(Response::decode(&got).unwrap(), resp);
    }

    /// Arbitrary garbage fed to the frame reader returns a structured
    /// error or a (luckily) checksum-valid frame — never a panic. Any
    /// frame that does come out decodes without panicking too.
    #[test]
    fn garbage_bytes_never_panic_the_reader(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut cursor = &bytes[..];
        if let Ok(Some(payload)) = read_frame(&mut cursor) {
            let _ = Request::decode(&payload);
            let _ = Response::decode(&payload);
        }
    }

    /// Any strict truncation of a valid frame errors (or reports clean
    /// EOF for the empty prefix) — it must never yield a payload.
    #[test]
    fn truncated_frames_error_not_panic(req in arb_request(), cut in any::<u16>()) {
        let payload = encode_request(&req);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let cut = cut as usize % wire.len();
        let mut cursor = &wire[..cut];
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert!(cut == 0, "clean EOF from non-empty prefix of {cut} bytes"),
            Ok(Some(_)) => prop_assert!(false, "payload from a truncated frame"),
            Err(_) => {}
        }
    }

    /// A single flipped bit anywhere in a frame never reaches the
    /// application as a message: payload and checksum flips fail the
    /// checksum, length-growing flips fail as truncation, and the one
    /// gap in the frame layer — a length-shrinking flip that shaves
    /// trailing bytes whose XOR-fold contribution is zero — hands decode
    /// a strict prefix of a valid encoding, which always errors (the
    /// last field comes up short).
    #[test]
    fn bit_flips_are_detected(req in arb_request(), pos in any::<u16>(), bit in 0u8..8) {
        let payload = encode_request(&req);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let pos = pos as usize % wire.len();
        wire[pos] ^= 1 << bit;
        let mut cursor = &wire[..];
        if let Ok(Some(got)) = read_frame(&mut cursor) {
            prop_assert!(
                Request::decode(&got).is_err(),
                "corrupt frame decoded as a message"
            );
        }
    }
}

/// An absurd length prefix is rejected before any allocation happens.
#[test]
fn oversized_length_rejected_before_allocation() {
    let mut header = Vec::new();
    header.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    let mut cursor = &header[..];
    assert!(read_frame(&mut cursor).is_err());
}
