//! Server shutdown must not hang on idle clients.
//!
//! The accept thread joins every session thread, and a session blocks in
//! `read_frame` while its client is quiet. Shutdown therefore
//! `Shutdown::Both`s every registered connection so parked reads return
//! EOF — without that, `shutdown()` with one idle connected client never
//! returns. The test runs the shutdown on a watchdog thread and fails if
//! it misses a generous deadline; orphaned open transactions must still
//! be rolled back through the usual path.

use dali::net::{DaliClient, DaliServer};
use dali::{DaliConfig, DaliEngine, ProtectionScheme};
use std::time::{Duration, Instant};

fn server(name: &str) -> (DaliServer, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(&format!("net-shutdown-{name}"));
    let config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config).unwrap();
    let server = DaliServer::start(db, "127.0.0.1:0").unwrap();
    (server, dir)
}

fn assert_shutdown_within(server: DaliServer, deadline: Duration) {
    let start = Instant::now();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = tx.send(());
    });
    assert!(
        rx.recv_timeout(deadline).is_ok(),
        "shutdown hung past {deadline:?} (idle session never unblocked)"
    );
    assert!(start.elapsed() < deadline);
}

#[test]
fn shutdown_with_idle_connected_client_returns_promptly() {
    let (server, _dir) = server("idle");
    let engine = server.engine().clone();
    // An idle client: connected, proven live, then silent forever.
    let mut client = DaliClient::connect(server.addr()).unwrap();
    client.ping().unwrap();
    assert_shutdown_within(server, Duration::from_secs(10));
    // The engine survives its server.
    assert!(engine.audit().unwrap().clean());
}

#[test]
fn shutdown_rolls_back_idle_client_open_transaction() {
    let (server, _dir) = server("orphan");
    let engine = server.engine().clone();
    let mut client = DaliClient::connect(server.addr()).unwrap();
    let table = client.create_table("t", 32, 16).unwrap();
    client.begin().unwrap();
    client.insert(table, &[7u8; 32]).unwrap();
    // Client goes quiet mid-transaction; shutdown must both return and
    // roll the orphan back, releasing its locks and its insert.
    assert_shutdown_within(server, Duration::from_secs(10));
    assert_eq!(engine.record_count(table).unwrap(), 0);
    assert_eq!(
        engine
            .stats()
            .aborts
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn shutdown_with_many_idle_clients() {
    let (server, _dir) = server("many");
    let mut clients = Vec::new();
    for _ in 0..8 {
        let mut c = DaliClient::connect(server.addr()).unwrap();
        c.ping().unwrap();
        clients.push(c);
    }
    assert_shutdown_within(server, Duration::from_secs(10));
}

/// A request issued after the server closed the connection surfaces as
/// the structured [`DaliError::ConnectionClosed`], not a raw I/O error:
/// retry loops and connection pools need to tell "the server went away"
/// apart from a torn frame or a local fault.
#[test]
fn request_against_closed_server_is_connection_closed() {
    use dali::DaliError;
    let (server, _dir) = server("closed");
    let mut client = DaliClient::connect(server.addr()).unwrap();
    client.begin().unwrap();
    server.shutdown();
    // The connection is gone mid-transaction. Depending on timing the
    // client sees the close on the write (broken pipe) or on the read
    // (EOF / reset); either way the structured error comes back.
    match client.ping() {
        Err(DaliError::ConnectionClosed) => {}
        Err(other) => panic!("expected ConnectionClosed, got {other:?}"),
        Ok(()) => panic!("ping succeeded against a shut-down server"),
    }
}
