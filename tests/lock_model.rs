//! Model-based test of the lock-protocol rules.
//!
//! Generates arbitrary scripts of `lock` / `unlock_all` calls over a
//! handful of transactions and records and applies each script to the
//! real [`LockManager`] single-threaded, checking every grant decision
//! against a trivially-correct serial reference model:
//!
//! * shared and exclusive holders never coexist on a record;
//! * a shared→exclusive upgrade is granted only to a sole holder;
//! * reentrant requests for an already-sufficient mode are idempotent;
//! * a request the model denies times out with `LockDenied` (nobody
//!   else can release in a single-threaded run);
//! * the 1-shard and 8-shard managers decide every request identically;
//! * after releasing every transaction the table is empty (no leaked
//!   empty lock states).
//!
//! Deadlock detection stays off: scripts are applied serially, so a
//! denial is always a timeout, making outcomes deterministic.

use dali::{LockManager, LockMode, RecId, SlotId, TableId, TxnId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

const NTXNS: u64 = 3;
const NRECS: u32 = 5;

/// Denials burn the full timeout, so keep it tiny.
const TIMEOUT: Duration = Duration::from_millis(2);

#[derive(Clone, Copy, Debug)]
enum Op {
    Lock(u64, u32, LockMode),
    UnlockAll(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NTXNS, 0..NRECS).prop_map(|(t, r)| Op::Lock(t, r, LockMode::Shared)),
        (0..NTXNS, 0..NRECS).prop_map(|(t, r)| Op::Lock(t, r, LockMode::Exclusive)),
        (0..NTXNS).prop_map(Op::UnlockAll),
    ]
}

fn rec(r: u32) -> RecId {
    RecId::new(TableId(1), SlotId(r))
}

/// Serial reference model of the lock table: per record, each holder's
/// strongest granted mode.
#[derive(Default)]
struct Model {
    holders: HashMap<u32, Vec<(u64, LockMode)>>,
}

impl Model {
    /// Would a serial lock manager grant this request right now?
    fn grantable(&self, t: u64, r: u32, mode: LockMode) -> bool {
        let hs = self.holders.get(&r).map_or(&[][..], |v| v);
        if let Some(&(_, held)) = hs.iter().find(|&&(h, _)| h == t) {
            // Reentrant: sufficient already, or an upgrade needing sole
            // ownership.
            if held == LockMode::Exclusive || mode == LockMode::Shared {
                return true;
            }
            return hs.len() == 1;
        }
        match mode {
            LockMode::Shared => hs.iter().all(|&(_, m)| m == LockMode::Shared),
            LockMode::Exclusive => hs.is_empty(),
        }
    }

    fn grant(&mut self, t: u64, r: u32, mode: LockMode) {
        let hs = self.holders.entry(r).or_default();
        match hs.iter_mut().find(|(h, _)| *h == t) {
            Some(h) => {
                if mode == LockMode::Exclusive {
                    h.1 = LockMode::Exclusive;
                }
            }
            None => hs.push((t, mode)),
        }
    }

    fn unlock_all(&mut self, t: u64) {
        self.holders.retain(|_, hs| {
            hs.retain(|&(h, _)| h != t);
            !hs.is_empty()
        });
    }

    /// The protocol invariants every reachable state must satisfy.
    fn check_invariants(&self) -> Result<(), String> {
        for (&r, hs) in &self.holders {
            for (i, &(t, _)) in hs.iter().enumerate() {
                if hs.iter().skip(i + 1).any(|&(u, _)| u == t) {
                    return Err(format!("record {r}: txn {t} appears twice"));
                }
            }
            let exclusive = hs
                .iter()
                .filter(|&&(_, m)| m == LockMode::Exclusive)
                .count();
            if exclusive > 0 && hs.len() > 1 {
                return Err(format!(
                    "record {r}: exclusive holder coexists with {} others",
                    hs.len() - 1
                ));
            }
        }
        Ok(())
    }
}

/// Apply `script` to `mgr`, checking each outcome against the model.
fn run_script(mgr: &LockManager, script: &[Op]) -> Result<Vec<bool>, String> {
    let mut model = Model::default();
    let mut outcomes = Vec::with_capacity(script.len());
    for (i, &op) in script.iter().enumerate() {
        match op {
            Op::Lock(t, r, mode) => {
                let expect = model.grantable(t, r, mode);
                let got = mgr.lock(TxnId(t), rec(r), mode).is_ok();
                if got != expect {
                    return Err(format!(
                        "op {i}: lock(txn {t}, rec {r}, {mode:?}) granted={got}, model says {expect}"
                    ));
                }
                if expect {
                    model.grant(t, r, mode);
                }
                outcomes.push(got);
            }
            Op::UnlockAll(t) => {
                mgr.unlock_all(TxnId(t));
                model.unlock_all(t);
                outcomes.push(true);
            }
        }
        model.check_invariants()?;
        // The real table must agree with the model on every held mode.
        for t in 0..NTXNS {
            for r in 0..NRECS {
                let want = model
                    .holders
                    .get(&r)
                    .and_then(|hs| hs.iter().find(|&&(h, _)| h == t).map(|&(_, m)| m));
                let got = mgr.held_mode(TxnId(t), rec(r));
                if want != got {
                    return Err(format!(
                        "op {i}: held_mode(txn {t}, rec {r}) = {got:?}, model says {want:?}"
                    ));
                }
            }
        }
    }
    for t in 0..NTXNS {
        mgr.unlock_all(TxnId(t));
    }
    if mgr.locked_records() != 0 {
        return Err(format!(
            "{} lock states leaked after releasing every txn",
            mgr.locked_records()
        ));
    }
    Ok(outcomes)
}

proptest! {
    // Quarter of the configured case count: model-denied requests each
    // burn the 2 ms timeout, so full-depth runs are left to CI (which
    // raises the baseline via `PROPTEST_CASES`).
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::default().cases / 4,
        .. ProptestConfig::default()
    })]

    #[test]
    fn lock_decisions_match_serial_model(
        script in proptest::collection::vec(op(), 1..28),
    ) {
        let single = LockManager::new(TIMEOUT);
        let sharded = LockManager::with_config(TIMEOUT, 8, None);
        let a = run_script(&single, &script)
            .map_err(|e| TestCaseError::fail(format!("1 shard: {e}")))?;
        let b = run_script(&sharded, &script)
            .map_err(|e| TestCaseError::fail(format!("8 shards: {e}")))?;
        // Shard count must never change a grant decision.
        prop_assert_eq!(a, b);
    }
}

/// Pinned scripts for the interesting corners, kept deterministic so a
/// regression reproduces without the property runner.
#[test]
fn pinned_protocol_scripts() {
    use LockMode::{Exclusive, Shared};
    use Op::{Lock, UnlockAll};
    let scripts: &[&[Op]] = &[
        // Upgrade granted to a sole holder, then blocks a second reader.
        &[
            Lock(0, 0, Shared),
            Lock(0, 0, Exclusive),
            Lock(1, 0, Shared),
        ],
        // Upgrade denied while a second reader holds on.
        &[
            Lock(0, 0, Shared),
            Lock(1, 0, Shared),
            Lock(0, 0, Exclusive),
            UnlockAll(1),
            Lock(0, 0, Exclusive),
        ],
        // Reentrant requests are idempotent; X subsumes S.
        &[
            Lock(0, 1, Exclusive),
            Lock(0, 1, Exclusive),
            Lock(0, 1, Shared),
            Lock(1, 1, Shared),
        ],
        // unlock_all releases every record a txn holds, nothing else.
        &[
            Lock(0, 0, Exclusive),
            Lock(0, 1, Shared),
            Lock(1, 2, Shared),
            UnlockAll(0),
            Lock(1, 0, Exclusive),
            Lock(1, 1, Exclusive),
        ],
        // Denied request leaves no empty lock state behind (leak fix).
        &[
            Lock(0, 4, Exclusive),
            Lock(1, 4, Shared),
            UnlockAll(0),
            UnlockAll(1),
        ],
    ];
    for (i, script) in scripts.iter().enumerate() {
        for (name, mgr) in [
            ("1 shard", LockManager::new(TIMEOUT)),
            ("8 shards", LockManager::with_config(TIMEOUT, 8, None)),
        ] {
            if let Err(e) = run_script(&mgr, script) {
                panic!("pinned script {i} on {name}: {e}");
            }
        }
    }
}
