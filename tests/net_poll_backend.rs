//! The portable `poll(2)` readiness backend, end to end.
//!
//! `DALI_NET_FORCE_POLL=1` makes every `Poller` fall back from epoll to
//! `poll(2)`; this file holds exactly one test so the process-wide
//! environment variable cannot race with other tests in the binary.

use dali::net::{DaliClient, DaliServer, Request, Response};
use dali::{DaliConfig, DaliEngine, ProtectionScheme};

#[test]
fn poll_backend_serves_pipelined_workload() {
    std::env::set_var("DALI_NET_FORCE_POLL", "1");
    let dir = dali_testutil::TempDir::new("net-poll-backend");
    let config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::DataCodeword);
    let (engine, _) = DaliEngine::create(config).unwrap();
    let server = DaliServer::start(engine, "127.0.0.1:0").unwrap();
    assert_eq!(server.backend_name(), "poll");

    let mut client = DaliClient::connect(server.addr()).unwrap();
    let table = client.create_table("t", 16, 128).unwrap();

    // A pipelined transactional burst exercises accept, read-accumulate,
    // decode, exec hand-off, write-drain, and interest churn on poll.
    let mut reqs = vec![Request::Begin];
    for i in 0..32u8 {
        reqs.push(Request::Insert {
            table,
            data: vec![i; 16],
        });
    }
    reqs.push(Request::Commit);
    let resps = client.pipeline(&reqs).unwrap();
    assert!(matches!(resps[0], Response::Began { .. }));
    assert!(matches!(resps[resps.len() - 1], Response::Ok));
    assert_eq!(
        resps
            .iter()
            .filter(|r| matches!(r, Response::Inserted { .. }))
            .count(),
        32
    );
    assert_eq!(client.record_count(table).unwrap(), 32);

    // Health/Metrics work over the fallback too.
    assert!(client.health().unwrap().healthy);
    assert!(client
        .metrics()
        .unwrap()
        .verb(Request::Commit.tag())
        .is_some());
    server.shutdown();
    std::env::remove_var("DALI_NET_FORCE_POLL");
}
