//! Delta certification equivalence and cadence.
//!
//! Property: a delta certification — auditing only the protection
//! regions covered by the dirty footprint (dirty pages' regions plus
//! queued deferred-delta regions) — returns *exactly* the full sweep's
//! verdict restricted to that footprint, for every latch-run bound and
//! worker count, on eager and deferred maintenance alike.
//!
//! The deterministic engine tests pin down the cadence semantics: a
//! wild write *inside* the footprint is caught by the very next delta
//! certification; one *outside* the footprint is invisible to delta
//! sweeps (maintained codewords only drift where legitimate writes
//! went) and is caught by the scheduled full sweep — the bounded
//! staleness the `full_certify_every` knob trades for O(write rate)
//! certification.

use dali_codeword::{CodewordProtection, DeferredConfig, ProtectionScheme};
use dali_common::{DaliConfig, DbAddr, PageId};
use dali_engine::{CheckpointOutcome, DaliEngine};
use dali_faultinject::FaultInjector;
use dali_mem::DbImage;
use proptest::prelude::*;
use std::sync::atomic::Ordering;

const PAGE: usize = 4096;
const PAGES: usize = 4;
const REGION: usize = 64;

/// One prescribed (codeword-maintained) update.
fn prescribed_update(image: &DbImage, prot: &CodewordProtection, addr: usize, data: &[u8]) {
    let (ws, wl) = dali_common::align::widen_to_words(addr, data.len());
    let mut old = vec![0u8; wl];
    image.read(DbAddr(ws), &mut old).unwrap();
    image.write(DbAddr(addr), data).unwrap();
    prot.apply_update(image, DbAddr(ws), &old).unwrap();
}

fn sorted_dedup(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok().and_then(|v| v.parse().ok()).unwrap_or(64),
        ..ProptestConfig::default()
    })]

    /// Delta verdict == full verdict restricted to the dirty footprint,
    /// identically across the latch-batched and per-region paths.
    #[test]
    fn delta_matches_full_restricted_to_footprint(
        updates in proptest::collection::vec(
            (0..PAGES * PAGE - 32, 1..24usize, any::<u8>()), 0..12),
        wilds in proptest::collection::vec(
            (0..PAGES * PAGE, any::<u8>()), 0..6),
        latch_run in 1..96usize,
        threads in 1..4usize,
        deferred in any::<bool>(),
        residue in any::<bool>(),
    ) {
        let scheme = if deferred {
            ProtectionScheme::DeferredMaintenance
        } else {
            ProtectionScheme::DataCodeword
        };
        let kind = if residue {
            dali_common::CodewordAlgebraKind::Residue
        } else {
            dali_common::CodewordAlgebraKind::XorFold
        };
        let image = DbImage::new(PAGES, PAGE).unwrap();
        let mut prot = CodewordProtection::with_config(
            &image, scheme, REGION, 1,
            DeferredConfig { shards: 4, watermark: 0 },
            threads,
            kind,
        ).unwrap();
        prot.set_latch_run(latch_run);

        // Maintained updates: the engine would note their pages dirty.
        let mut dirty_pages = Vec::new();
        for (addr, len, val) in &updates {
            let data = vec![*val; *len];
            prescribed_update(&image, &prot, *addr, &data);
            let first = addr / PAGE;
            let last = (addr + len - 1) / PAGE;
            dirty_pages.extend((first..=last).map(|p| PageId(p as u32)));
        }
        dirty_pages.sort_unstable();
        dirty_pages.dedup();

        // Wild writes: bypass the interface, guaranteed to flip bits.
        for (addr, val) in &wilds {
            let mut cur = [0u8];
            image.read(DbAddr(*addr), &mut cur).unwrap();
            image.write(DbAddr(*addr), &[cur[0] ^ (val | 1)]).unwrap();
        }

        // The footprint a delta certification derives.
        let mut footprint =
            dali_wal::pages_to_regions(&dirty_pages, PAGE, REGION);
        footprint.extend(prot.deferred_dirty_regions());
        let footprint = sorted_dedup(footprint);

        let delta = prot.audit_regions(&image, &footprint).unwrap();
        let full = prot.audit(&image).unwrap();

        // Delta verdict == full verdict ∩ footprint.
        let full_in_footprint: Vec<_> = full
            .corrupt
            .iter()
            .filter(|c| footprint.binary_search(&c.region).is_ok())
            .cloned()
            .collect();
        prop_assert_eq!(&delta.corrupt, &full_in_footprint);
        prop_assert_eq!(delta.regions_checked, footprint.len());

        // The per-region (latch_run = 1) path is byte-equivalent to the
        // batched path, on both sweep shapes. (Everything queued is
        // drained by now, so repeat audits are stable.)
        prot.set_latch_run(1);
        let delta_lr1 = prot.audit_regions(&image, &footprint).unwrap();
        let full_lr1 = prot.audit(&image).unwrap();
        prop_assert_eq!(&delta_lr1.corrupt, &delta.corrupt);
        prop_assert_eq!(&full_lr1.corrupt, &full.corrupt);
        prop_assert_eq!(delta_lr1.latch_brackets, footprint.len());
        prop_assert!(delta.latch_brackets <= delta_lr1.latch_brackets);
        prop_assert!(full.latch_brackets <= full_lr1.latch_brackets);
    }
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-delta-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A wild write inside a page dirtied this interval is caught by the
/// very next (delta) certification.
#[test]
fn delta_certification_catches_corruption_inside_footprint() {
    let dir = tmpdir("inside");
    // Parity repair pinned off: this test pins down the *detection*
    // cadence one rung below the self-healing layer (with the stripe on,
    // the same wild write would be repaired in place and the checkpoint
    // would certify — see `tests/repair_model.rs` for that path).
    let config = DaliConfig::small(&dir)
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_full_certify_every(8)
        .with_parity_group_size(0);
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", 32, 64).unwrap();
    // Flush the all-pages initial dirty sets out of both images so the
    // next footprint is genuinely small.
    db.checkpoint().unwrap();

    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &[0x33; 32]).unwrap();
    txn.commit().unwrap();
    let addr = db.record_addr(rec).unwrap();
    let inj = FaultInjector::new(&db);
    assert!(inj
        .wild_write(DbAddr(addr.0 + 8), 0x44, 4)
        .unwrap()
        .landed());

    let full_before = db.stats().certify_full.load(Ordering::Relaxed);
    match db.checkpoint().unwrap() {
        CheckpointOutcome::CorruptionDetected(report) => {
            assert!(!report.clean());
        }
        other => panic!("delta certification missed in-footprint corruption: {other:?}"),
    }
    // It was a *delta* sweep that caught it.
    assert_eq!(db.stats().certify_full.load(Ordering::Relaxed), full_before);
    assert!(db.stats().certify_delta.load(Ordering::Relaxed) >= 1);
    assert!(db.stats().certify_regions_skipped.load(Ordering::Relaxed) > 0);
}

/// A wild write outside every dirty page is invisible to delta
/// certifications but caught — within the cadence bound — by the next
/// full sweep, which the failure then re-forces.
#[test]
fn out_of_footprint_corruption_is_caught_by_the_scheduled_full_sweep() {
    let dir = tmpdir("outside");
    // Parity pinned off, as above: the subject is the cadence bound and
    // the keep-prior-checkpoint / recover path, not the repair layer.
    let config = DaliConfig::small(&dir)
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_full_certify_every(3)
        .with_parity_group_size(0);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 32, 64).unwrap();
    // create() ran the mandatory full checkpoint (image A). This one
    // drains image B's initial all-pages set — still a delta by cadence,
    // but its footprint covers everything.
    db.checkpoint().unwrap();

    // Corrupt the far end of the database, which no interface write will
    // touch, then dirty one unrelated page legitimately.
    let inj = FaultInjector::new(&db);
    let far = DbAddr(db.config().db_bytes() - REGION);
    // One word, not two: a repeated pattern across an even number of
    // words XOR-cancels in the fold (the parity blind spot).
    assert!(inj.wild_write(far, 0x5a, 4).unwrap().landed());
    let txn = db.begin().unwrap();
    txn.insert(t, &[0x11; 32]).unwrap();
    txn.commit().unwrap();

    // Checkpoint 3 of the cadence: a genuine small-footprint delta. The
    // corruption is outside the footprint — certified anyway (the
    // documented staleness window).
    match db.checkpoint().unwrap() {
        CheckpointOutcome::Certified { .. } => {}
        other => panic!("expected the delta sweep to miss it: {other:?}"),
    }
    assert!(db.stats().certify_regions_skipped.load(Ordering::Relaxed) > 0);

    // Next checkpoint hits the full-sweep cadence and finds it.
    let full_before = db.stats().certify_full.load(Ordering::Relaxed);
    match db.checkpoint().unwrap() {
        CheckpointOutcome::CorruptionDetected(report) => {
            assert_eq!(report.corrupt.len(), 1);
            assert_eq!(report.corrupt[0].addr, far);
        }
        other => panic!("full sweep must catch out-of-footprint corruption: {other:?}"),
    }
    assert_eq!(
        db.stats().certify_full.load(Ordering::Relaxed),
        full_before + 1
    );

    // The failed certification kept the prior certified checkpoint:
    // reopening runs corruption recovery and comes back audit-clean.
    db.crash();
    let (db, _) = DaliEngine::open(config).unwrap();
    assert!(db.audit().unwrap().clean());
}

/// The certification footprint must include the parity stripe: parity
/// buffers live outside the image, so the dirty-page → region mapping
/// can never cover them — the groups dirtied by drains are certified
/// through the stripe's own dirty-group channel, and a delta checkpoint
/// consumes that channel completely.
#[test]
fn delta_certification_covers_parity_groups_dirtied_by_drains() {
    let dir = tmpdir("parity-footprint");
    let config = DaliConfig::small(&dir)
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_full_certify_every(8);
    assert!(
        config.resolved_parity_group_size() > 0,
        "stripe on by default"
    );
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", 32, 64).unwrap();
    db.checkpoint().unwrap(); // flush the initial all-pages footprints

    // One committed insert dirties at least the record's parity group
    // (plus allocator metadata) via the stripe's deferred-delta path.
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &[0x77; 32]).unwrap();
    txn.commit().unwrap();
    let addr = db.record_addr(rec).unwrap();
    let stripe = db.db().prot.parity().expect("stripe enabled");
    let geom = db.db().prot.geometry();
    let rec_group = stripe.group_of(geom.region_of(addr));

    let before = db.stats().certify_parity_groups.load(Ordering::Relaxed);
    match db.checkpoint().unwrap() {
        CheckpointOutcome::Certified { .. } => {}
        other => panic!("clean workload must certify: {other:?}"),
    }
    // This was a delta sweep, and it still certified the drained groups.
    assert!(db.stats().certify_delta.load(Ordering::Relaxed) >= 1);
    let certified = db.stats().certify_parity_groups.load(Ordering::Relaxed) - before;
    assert!(certified >= 1, "drain-dirtied groups are in the footprint");
    // The channel is fully consumed: nothing queued, nothing still dirty,
    // and the record's group verifies against its own codeword.
    let snap = db.parity_stats();
    assert_eq!(snap.pending_deltas, 0);
    assert_eq!(snap.dirty_groups, 0);
    assert!(stripe.verify_group(rec_group));

    // A wild write to a *drain-dirtied* parity buffer (not the image) is
    // healed by the next certification: the members just audited clean,
    // so the checkpoint rebuilds the group instead of distrusting data.
    let txn = db.begin().unwrap();
    txn.update(rec, &[0x78; 32]).unwrap();
    txn.commit().unwrap();
    db.db().prot.drain_deferred(); // flush the stripe delta → group dirty
    stripe.wild_xor_group(rec_group, 0, &[0xA5, 0x5A]);
    match db.checkpoint().unwrap() {
        CheckpointOutcome::Certified { .. } => {}
        other => panic!("stripe damage must not fail data certification: {other:?}"),
    }
    assert!(
        stripe.verify_group(rec_group),
        "checkpoint healed the group"
    );
    assert!(db.audit().unwrap().clean());
}
