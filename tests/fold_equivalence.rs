//! Kernel-equivalence suite for the wide XOR-fold.
//!
//! The fold kernels (`codeword::fold`/`fold_padded`/`delta` on slices,
//! `Arena::xor_fold` behind `DbImage`) process 32-byte blocks with four
//! independent `u64` accumulators. That rewrite is only a win if it is
//! *exactly* the old one-word-at-a-time fold, so everything here compares
//! against an independent byte-at-a-time reference — byte `i` contributes
//! to bit column `8 * (i mod 4)` — that shares no code with the kernels:
//!
//! * exhaustively, every word-aligned length through several wide blocks
//!   (all `u64`-remainder and final-`u32` tail shapes), every partial-word
//!   tail length 1..32 for the padded fold, and every sub-slice offset
//!   0..8 (misaligned base pointers — the slice kernels must be
//!   alignment-oblivious; the raw-pointer kernel must take its one-word
//!   alignment head at offsets ≡ 4 mod 8);
//! * property-based, over random contents / lengths / offsets (CI raises
//!   the case count via `PROPTEST_CASES`, as with the other suites);
//! * and at the scan layer: a parallel `audit_all` must produce a report
//!   byte-identical to the serial scan on a deliberately corrupted image,
//!   for every worker count.

use dali::codeword::codeword::{delta, fold, fold_padded, fold_scalar};
use dali::codeword::{CodewordProtection, ProtectionScheme};
use dali::mem::DbImage;
use dali::DbAddr;
use proptest::prelude::*;

/// Independent byte-wise reference fold (zero-pad semantics: agrees with
/// `fold` on aligned lengths and with `fold_padded` on any length).
fn ref_fold(bytes: &[u8]) -> u32 {
    let mut acc = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        acc ^= (b as u32) << (8 * (i & 3));
    }
    acc
}

fn patterned(len: usize) -> Vec<u8> {
    (0..len as u32)
        .map(|i| (i.wrapping_mul(2654435761).rotate_right(7) ^ i) as u8)
        .collect()
}

/// Every word-aligned length 0..=288 (several 32-byte blocks plus every
/// tail shape) at every sub-slice offset 0..8.
#[test]
fn slice_fold_matches_reference_exhaustively() {
    let backing = patterned(8 + 288);
    for off in 0..8 {
        for len in (0..=288).step_by(4) {
            let sub = &backing[off..off + len];
            assert_eq!(fold(sub), ref_fold(sub), "offset {off} len {len}");
            assert_eq!(fold_scalar(sub), ref_fold(sub), "offset {off} len {len}");
        }
    }
}

/// Every tail length 1..32 (and beyond, through two blocks) for the
/// zero-padded fold, again at every base offset.
#[test]
fn padded_fold_matches_reference_every_tail() {
    let backing = patterned(8 + 2 * 32 + 31);
    for off in 0..8 {
        for len in 0..=2 * 32 + 31 {
            let sub = &backing[off..off + len];
            assert_eq!(fold_padded(sub), ref_fold(sub), "offset {off} len {len}");
        }
    }
}

/// The fused interleaved delta equals the reference symmetric difference
/// for every aligned length and offset pair.
#[test]
fn fused_delta_matches_reference_exhaustively() {
    let old_backing = patterned(8 + 128);
    let new_backing: Vec<u8> = old_backing
        .iter()
        .map(|b| b.wrapping_mul(73) ^ 0x5a)
        .collect();
    for off in 0..8 {
        for len in (0..=128).step_by(4) {
            let (o, n) = (&old_backing[off..off + len], &new_backing[off..off + len]);
            assert_eq!(
                delta(o, n),
                ref_fold(o) ^ ref_fold(n),
                "offset {off} len {len}"
            );
        }
    }
}

/// The raw-pointer kernel behind `DbImage::xor_fold`, for every offset
/// alignment mod 8 (the wide path takes a one-`u32` head at ≡ 4 mod 8)
/// and every tail shape.
#[test]
fn image_fold_matches_reference_exhaustively() {
    let image = DbImage::new(1, 4096).unwrap();
    let noise = patterned(4096);
    image.write(DbAddr(0), &noise).unwrap();
    for off in [0usize, 4, 8, 12, 20, 36] {
        for len in (0..=3 * 32 + 4).step_by(4) {
            assert_eq!(
                image.xor_fold(DbAddr(off), len).unwrap(),
                ref_fold(&noise[off..off + len]),
                "offset {off} len {len}"
            );
        }
    }
}

/// Corrupt a scattered set of regions and check that the parallel audit
/// reports exactly what the serial audit reports, for every worker count
/// (including more workers than regions).
#[test]
fn parallel_audit_report_identical_to_serial_on_corrupt_image() {
    let image = DbImage::new(8, 4096).unwrap();
    let prot = CodewordProtection::new(&image, ProtectionScheme::DataCodeword, 64, 1).unwrap();
    // Maintained updates first, so codewords are non-trivial.
    for r in (0..prot.geometry().num_regions()).step_by(7) {
        let addr = DbAddr(r * 64 + 8);
        let mut old = [0u8; 8];
        image.read(addr, &mut old).unwrap();
        let new = patterned(8);
        image.write(addr, &new).unwrap();
        prot.apply_update(&image, addr, &old).unwrap();
    }
    assert!(prot.audit_with_threads(&image, 3).unwrap().clean());
    // Now stray writes that bypass maintenance.
    for addr in [5usize, 64 * 9 + 3, 4096 * 3, 4096 * 5 + 777, 8 * 4096 - 10] {
        image.write(DbAddr(addr), &[0xba]).unwrap();
    }
    let serial = prot.audit_with_threads(&image, 1).unwrap();
    assert_eq!(serial.corrupt.len(), 5);
    for threads in [2, 3, 4, 8, 64, prot.geometry().num_regions() + 1] {
        let par = prot.audit_with_threads(&image, threads).unwrap();
        assert_eq!(
            par.regions_checked, serial.regions_checked,
            "{threads} threads"
        );
        assert_eq!(par.corrupt, serial.corrupt, "{threads} threads");
    }
}

proptest! {
    /// Random contents and lengths ≥ 256 bytes with random misaligned
    /// sub-slice bases: wide ≡ scalar ≡ byte-wise reference.
    #[test]
    fn wide_fold_equals_reference(
        bytes in proptest::collection::vec(any::<u8>(), 256..1024),
        off in 0usize..8,
    ) {
        let sub = &bytes[off.min(bytes.len())..];
        let aligned = &sub[..sub.len() / 4 * 4];
        prop_assert_eq!(fold(aligned), ref_fold(aligned));
        prop_assert_eq!(fold_scalar(aligned), ref_fold(aligned));
        prop_assert_eq!(fold_padded(sub), ref_fold(sub));
    }

    /// Fused delta ≡ reference symmetric difference on random pairs.
    #[test]
    fn fused_delta_equals_reference(
        a in proptest::collection::vec(any::<u8>(), 0..768),
        b in proptest::collection::vec(any::<u8>(), 0..768),
    ) {
        let n = a.len().min(b.len()) / 4 * 4;
        let (old, new) = (&a[..n], &b[..n]);
        prop_assert_eq!(delta(old, new), ref_fold(old) ^ ref_fold(new));
    }

    /// Raw-pointer kernel ≡ reference on random word-aligned ranges of a
    /// noisy image (offsets cover both 8-aligned and 4-mod-8 bases).
    #[test]
    fn image_fold_equals_reference(
        seed in any::<u32>(),
        word_off in 0usize..512,
        word_len in 0usize..256,
    ) {
        let image = DbImage::new(1, 4096).unwrap();
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(seed | 1).rotate_left(11) ^ i) as u8)
            .collect();
        image.write(DbAddr(0), &noise).unwrap();
        let (off, len) = (word_off * 4, word_len * 4);
        prop_assume!(off + len <= 4096);
        prop_assert_eq!(
            image.xor_fold(DbAddr(off), len).unwrap(),
            ref_fold(&noise[off..off + len])
        );
    }
}
