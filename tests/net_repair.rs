//! The `Repair` admin verb over the wire: a loopback client corrupts a
//! region (through the in-process fault injector — the network cannot
//! write wild bytes, only ask for repairs) and heals it remotely.
//!
//! Two rungs of the ladder are pinned end to end:
//!
//! * a single corrupt region comes back `in_place` — rebuilt from its
//!   parity group with no log replay — and the record reads back intact
//!   through the same connection;
//! * a double fault inside one parity group reports `in_place: false`
//!   with a log-replay count, because one XOR stripe cannot solve two
//!   unknowns.
//!
//! Either way the server stays up, the post-repair audit is clean, and
//! the repair counters appended to the `Stats` verb move.

use dali::net::{DaliClient, DaliServer};
use dali::{CheckpointOutcome, DaliConfig, DaliEngine, FaultInjector, ProtectionScheme};

const REC: usize = 64;
const PAYLOAD: [u8; REC] = {
    let mut p = [0u8; REC];
    let mut i = 0;
    while i < REC {
        p[i] = (i as u8).wrapping_mul(7).wrapping_add(3);
        i += 1;
    }
    p
};

fn start_server(name: &str) -> (DaliServer, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(name);
    let config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::DataCodeword);
    let (engine, _) = DaliEngine::create(config).unwrap();
    let server = DaliServer::start(engine, "127.0.0.1:0").unwrap();
    (server, dir)
}

#[test]
fn single_region_corruption_repairs_in_place_over_the_wire() {
    let (server, _dir) = start_server("net-repair-single");
    let mut client = DaliClient::connect(server.addr()).unwrap();

    let table = client.create_table("t", REC, 32).unwrap();
    client.begin().unwrap();
    let rec = client.insert(table, &PAYLOAD).unwrap();
    client.commit().unwrap();
    match server.engine().checkpoint().unwrap() {
        CheckpointOutcome::Certified { .. } => {}
        other => panic!("clean database must certify, got {other:?}"),
    }

    // Wild write through the in-process injector: flip a bit in the
    // record's region, behind the codeword's back.
    let addr = server.engine().record_addr(rec).unwrap();
    let region = server.engine().db().prot.geometry().region_of(addr);
    let inj = FaultInjector::new(server.engine());
    let mut window = vec![0u8; REC];
    server.engine().db().image.read(addr, &mut window).unwrap();
    let mut corrupt = window.clone();
    corrupt[0] ^= 0x08;
    assert!(inj.wild_write_bytes(addr, &corrupt).unwrap().landed());

    // Heal it remotely.
    let summary = client.repair(region as u64).unwrap();
    assert!(
        summary.in_place,
        "single fault must stay on the parity rung"
    );
    assert_eq!(summary.regions_rebuilt, 1);
    assert!(summary.bytes_rebuilt > 0);
    assert_eq!(summary.records_replayed, 0);

    // The same connection sees the healed record and a clean audit.
    client.begin().unwrap();
    assert_eq!(client.read(rec).unwrap(), PAYLOAD);
    client.commit().unwrap();
    let (clean, regions) = client.audit().unwrap();
    assert!(clean, "post-repair audit must be clean");
    assert!(regions > 0);

    let stats = client.stats().unwrap();
    assert!(stats.repair_attempted > 0);
    assert!(stats.repair_succeeded > 0);
    assert_eq!(stats.repair_fell_back, 0);
    assert!(stats.repair_bytes_rebuilt > 0);
}

#[test]
fn double_fault_in_one_group_recovers_via_log_over_the_wire() {
    let (server, _dir) = start_server("net-repair-double");
    let mut client = DaliClient::connect(server.addr()).unwrap();

    let table = client.create_table("t", REC, 32).unwrap();
    client.begin().unwrap();
    let rec = client.insert(table, &PAYLOAD).unwrap();
    client.commit().unwrap();
    match server.engine().checkpoint().unwrap() {
        CheckpointOutcome::Certified { .. } => {}
        other => panic!("clean database must certify, got {other:?}"),
    }

    // Corrupt two sibling regions of one parity group: one stripe
    // cannot solve two unknowns, so repair must ride the log.
    let addr = server.engine().record_addr(rec).unwrap();
    let prot = &server.engine().db().prot;
    let geom = prot.geometry();
    let stripe = prot.parity().expect("small() enables the stripe");
    let (first, last) = stripe.members(stripe.group_of(geom.region_of(addr)));
    assert!(last > first, "group must hold at least two regions");
    let inj = FaultInjector::new(server.engine());
    for region in [first, first + 1] {
        let base = geom.region_base(region);
        let mut b = [0u8; 1];
        server.engine().db().image.read(base, &mut b).unwrap();
        b[0] ^= 0x08;
        assert!(inj.wild_write_bytes(base, &b).unwrap().landed());
    }

    let summary = client.repair(first as u64).unwrap();
    assert!(
        !summary.in_place,
        "a double fault must fall back to log-based recovery: {summary:?}"
    );
    assert!(summary.records_replayed > 0 || summary.bytes_rebuilt == 0);

    let (clean, _) = client.audit().unwrap();
    assert!(clean, "log-based recovery must leave a clean image");
    client.begin().unwrap();
    assert_eq!(client.read(rec).unwrap(), PAYLOAD);
    client.commit().unwrap();

    let stats = client.stats().unwrap();
    assert!(stats.repair_fell_back > 0);
}
