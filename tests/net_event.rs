//! Event-server behaviors beyond the wire protocol: admission control
//! at the connection cap, and the `Health`/`Metrics` admin verbs.

use dali::net::{DaliClient, DaliServer, Request, Response};
use dali::{DaliConfig, DaliEngine, DaliError, ProtectionScheme};
use std::time::{Duration, Instant};

fn server_with(
    name: &str,
    tweak: impl FnOnce(DaliConfig) -> DaliConfig,
) -> (DaliServer, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(name);
    let config = tweak(DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::DataCodeword));
    let (engine, _) = DaliEngine::create(config).unwrap();
    let server = DaliServer::start(engine, "127.0.0.1:0").unwrap();
    (server, dir)
}

/// At `net_max_conns` the listener pauses; connections beyond the cap
/// wait in the kernel backlog. When a slot frees, the backlog drains:
/// the first waiter is admitted, and — with the cap full again — the
/// next is rejected with a structured error and counted.
#[test]
fn connection_cap_pauses_accepts_then_rejects_overflow() {
    let (server, _dir) = server_with("net-admission", |c| c.with_net_max_conns(1));

    // c1 takes the only slot (ping proves it is served, not queued).
    let mut c1 = DaliClient::connect(server.addr()).unwrap();
    c1.ping().unwrap();

    // c2 and c3 connect at the TCP level (kernel backlog) but are not
    // admitted: the listener is parked at the cap.
    let mut c2 = DaliClient::connect(server.addr()).unwrap();
    let mut c3 = DaliClient::connect(server.addr()).unwrap();

    // Free the slot: the backlog drains in order — c2 admitted (cap
    // full again), c3 rejected with OutOfSpace and counted.
    c1.drop_connection();
    c2.ping().unwrap();
    match c3.ping() {
        Ok(()) => panic!("third connection served past a cap of 1"),
        Err(DaliError::OutOfSpace(msg)) => {
            assert!(
                msg.contains("connection limit"),
                "unexpected message: {msg}"
            )
        }
        // The rejection frame is best-effort; the close may win the race.
        Err(DaliError::ConnectionClosed) => {}
        Err(other) => panic!("expected OutOfSpace or ConnectionClosed, got {other:?}"),
    }

    let stats = c2.stats().unwrap();
    assert_eq!(stats.conns_rejected, 1, "exactly one rejection counted");
    assert_eq!(stats.sessions, 1, "one admitted session at the cap");
    server.shutdown();
}

#[test]
fn health_probe_reports_liveness_and_load() {
    let (server, _dir) = server_with("net-health", |c| c);
    let mut client = DaliClient::connect(server.addr()).unwrap();
    let h = client.health().unwrap();
    assert!(h.healthy, "fresh server must report healthy");
    assert!(h.conns_open >= 1, "the probing connection is open");
    assert!(h.uptime_ns > 0);
    server.shutdown();
}

#[test]
fn metrics_report_per_verb_latency_histograms() {
    let (server, _dir) = server_with("net-metrics", |c| c);
    let mut client = DaliClient::connect(server.addr()).unwrap();
    let table = client.create_table("t", 16, 64).unwrap();
    for _ in 0..10 {
        client.ping().unwrap();
    }
    client.begin().unwrap();
    let rec = client.insert(table, &[3u8; 16]).unwrap();
    client.read(rec).unwrap();
    client.commit().unwrap();

    let m = client.metrics().unwrap();
    assert!(m.uptime_ns > 0);
    let ping = m
        .verb(Request::Ping.tag())
        .expect("ping row present after 10 pings");
    assert_eq!(ping.count, 10);
    assert_eq!(ping.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 10);
    // Quantiles are monotone and positive; the mean sits inside the
    // recorded range (log₂ buckets bound each sample within 2×).
    let p50 = ping.quantile(0.50);
    let p99 = ping.quantile(0.99);
    assert!(p50 > 0 && p50 <= p99, "p50={p50} p99={p99}");
    assert!(ping.mean_ns() > 0);
    for verb in [Request::Begin, Request::Commit] {
        let row = m.verb(verb.tag()).expect("txn verb row");
        assert_eq!(row.count, 1);
    }
    // A verb never exercised has no row.
    assert!(m.verb(Request::Repair { region: 0 }.tag()).is_none());
    server.shutdown();
}

/// Pipelined verbs land in the histograms too, and latency includes
/// queue wait (decode → response), so a burst's p99 reflects what the
/// client actually experienced.
#[test]
fn metrics_count_pipelined_bursts() {
    let (server, _dir) = server_with("net-metrics-pipe", |c| c);
    let mut client = DaliClient::connect(server.addr()).unwrap();
    let reqs: Vec<Request> = std::iter::repeat_with(|| Request::Ping).take(50).collect();
    let resps = client.pipeline(&reqs).unwrap();
    assert!(resps.iter().all(|r| matches!(r, Response::Ok)));
    let m = client.metrics().unwrap();
    assert_eq!(m.verb(Request::Ping.tag()).unwrap().count, 50);
    let stats = client.stats().unwrap();
    assert!(stats.frames_pipelined > 0);
    assert!(stats.loop_iterations > 0);
    server.shutdown();
}

/// Orphan rollback still holds under the event server when a client
/// vanishes mid-transaction with work in flight (the event loop hands
/// the abort to the exec pool; no event loop ever blocks on it).
#[test]
fn orphan_rollback_with_pipelined_work_in_flight() {
    let (server, _dir) = server_with("net-orphan-pipe", |c| c);
    let engine = server.engine().clone();
    let mut setup = DaliClient::connect(server.addr()).unwrap();
    let table = setup.create_table("t", 32, 64).unwrap();

    let mut client = DaliClient::connect(server.addr()).unwrap();
    client.begin().unwrap();
    client.insert(table, &[9u8; 32]).unwrap();
    client.drop_connection();

    // The orphan's insert must be rolled back (poll: cleanup is async).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = setup.stats().unwrap();
        if stats.orphans_rolled_back == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "orphan was never rolled back");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(engine.record_count(table).unwrap(), 0);
    assert_eq!(engine.db().locks.locked_records(), 0);
    server.shutdown();
}
