//! Concurrency stress: TPC-B updaters, ad-hoc readers and a background
//! audit loop all running against one engine.
//!
//! The schemes' concurrency contracts (§3: shared latches for plain
//! codeword maintenance, exclusive for prechecked reads) must hold up
//! under real contention: no deadlock, no spurious corruption report
//! from an audit racing an update bracket, and the TPC-B invariant
//! intact at the end.

use dali::{
    DaliConfig, DaliEngine, DaliError, ProtectionScheme, RecId, SlotId, TpcbConfig, TpcbDriver,
};
use std::sync::atomic::{AtomicBool, Ordering};

const THREADS: usize = 4;
const OPS: usize = 4_000;

fn stress(scheme: ProtectionScheme, audit_threads: usize) {
    let cfg = TpcbConfig::small();
    let dir = dali_testutil::TempDir::new(&format!("stress-{scheme:?}-{audit_threads}"));
    let mut config = DaliConfig::small(dir.path())
        .with_scheme(scheme)
        .with_audit_threads(audit_threads);
    config.db_pages = cfg.required_pages(config.page_size);
    let (db, _) = DaliEngine::create(config).unwrap();
    let mut driver = TpcbDriver::setup(&db, cfg.clone()).unwrap();

    let stop = AtomicBool::new(false);
    let (accounts, _, _, _) = driver.tables();
    let audits_done = std::thread::scope(|s| {
        // Background audit loop: a full-database codeword sweep racing
        // the updaters. Any unclean report here is a false positive —
        // nothing in this test corrupts memory.
        let auditor = s.spawn(|| {
            let mut audits = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let report = db.audit().unwrap();
                assert!(
                    report.clean(),
                    "{scheme:?}: audit #{audits} reported corruption in an uncorrupted \
                     database: {report:?}"
                );
                audits += 1;
            }
            audits
        });

        // Ad-hoc reader: scans random accounts outside the workers'
        // partition discipline, so it genuinely conflicts with updater
        // locks (and, under ReadPrecheck, their exclusive latches).
        s.spawn(|| {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let txn = db.begin().unwrap();
                let mut res = Ok(Vec::new());
                for k in 0..8 {
                    let rec =
                        RecId::new(accounts, SlotId(((i * 37 + k * 131) % cfg.accounts) as u32));
                    res = txn.read_vec(rec);
                    if res.is_err() {
                        break;
                    }
                }
                match res {
                    Ok(_) => txn.commit().unwrap(),
                    // Lock conflicts with updaters are expected; anything
                    // else (CorruptionDetected!) is a real failure.
                    Err(DaliError::LockDenied { .. }) => txn.abort().unwrap(),
                    Err(e) => panic!("{scheme:?}: reader failed: {e}"),
                }
                i += 1;
            }
        });

        let stats = driver.run_concurrent(THREADS, OPS).unwrap();
        stop.store(true, Ordering::Relaxed);
        assert_eq!(stats.ops, OPS);
        auditor.join().unwrap()
    });

    assert!(audits_done >= 1, "audit loop never completed a sweep");
    driver.verify_invariant().unwrap();
    assert!(db.audit().unwrap().clean());
}

#[test]
fn stress_data_codeword() {
    stress(ProtectionScheme::DataCodeword, 1);
}

#[test]
fn stress_read_precheck() {
    stress(ProtectionScheme::ReadPrecheck, 1);
}

/// The audit loop runs *striped across 4 worker threads* while the TPC-B
/// updaters and the ad-hoc reader hammer the same regions. Each stripe
/// worker still takes every region's latch individually, so the
/// no-false-positive guarantee must be unchanged — a corruption report
/// here means the parallel scan broke the latch-then-check protocol.
#[test]
fn stress_data_codeword_parallel_audit() {
    stress(ProtectionScheme::DataCodeword, 4);
}

#[test]
fn stress_read_precheck_parallel_audit() {
    stress(ProtectionScheme::ReadPrecheck, 4);
}

/// Contended variant: workers draw from *overlapping* row ranges, so
/// they conflict — and deadlock — with each other constantly, on top of
/// the audit loop and an ad-hoc reader. Deadlock victims abort and
/// retry; the run must still end with the TPC-B invariant intact, a
/// clean audit, and an empty lock table (no lost unlocks across the
/// sharded release sweep).
fn stress_contended(scheme: ProtectionScheme, shards: usize) {
    const OPS: usize = 2_000;
    let mut cfg = TpcbConfig::small();
    cfg.ops_per_txn = 5;
    let dir = dali_testutil::TempDir::new(&format!("stress-contended-{scheme:?}-{shards}"));
    let mut config = DaliConfig::small(dir.path())
        .with_scheme(scheme)
        .with_lock_shards(shards);
    config.deadlock_detect_interval = Some(std::time::Duration::from_millis(1));
    config.db_pages = cfg.required_pages(config.page_size);
    let (db, _) = DaliEngine::create(config).unwrap();
    let mut driver = TpcbDriver::setup(&db, cfg.clone()).unwrap();

    let stop = AtomicBool::new(false);
    let (accounts, _, _, _) = driver.tables();
    let audits_done = std::thread::scope(|s| {
        let auditor = s.spawn(|| {
            let mut audits = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let report = db.audit().unwrap();
                assert!(
                    report.clean(),
                    "{scheme:?}: audit #{audits} reported corruption in an uncorrupted \
                     database: {report:?}"
                );
                audits += 1;
            }
            audits
        });

        s.spawn(|| {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let txn = db.begin().unwrap();
                let mut res = Ok(Vec::new());
                for k in 0..8 {
                    let rec =
                        RecId::new(accounts, SlotId(((i * 37 + k * 131) % cfg.accounts) as u32));
                    res = txn.read_vec(rec);
                    if res.is_err() {
                        break;
                    }
                }
                match res {
                    Ok(_) => txn.commit().unwrap(),
                    Err(DaliError::LockDenied { .. }) => txn.abort().unwrap(),
                    Err(e) => panic!("{scheme:?}: reader failed: {e}"),
                }
                i += 1;
            }
        });

        let stats = driver.run_concurrent_contended(THREADS, OPS).unwrap();
        stop.store(true, Ordering::Relaxed);
        assert_eq!(stats.ops, OPS);
        auditor.join().unwrap()
    });

    assert!(audits_done >= 1, "audit loop never completed a sweep");
    driver.verify_invariant().unwrap();
    assert!(db.audit().unwrap().clean());
    // Quiesced: every transaction committed or aborted, so a lock left
    // behind would be a lost unlock in the sharded release sweep.
    assert_eq!(
        db.db().locks.locked_records(),
        0,
        "locks leaked after quiesce"
    );
}

#[test]
fn stress_contended_data_codeword_sharded() {
    stress_contended(ProtectionScheme::DataCodeword, 8);
}

#[test]
fn stress_contended_read_precheck_sharded() {
    stress_contended(ProtectionScheme::ReadPrecheck, 8);
}

/// Single-shard contended run: the pre-sharding configuration must stay
/// correct under the same deadlock-heavy load (only slower).
#[test]
fn stress_contended_data_codeword_single_shard() {
    stress_contended(ProtectionScheme::DataCodeword, 1);
}

/// Deferred-maintenance under the full mixed workload: TPC-B writers
/// queueing coalesced deltas, the background drainer applying them every
/// millisecond, an ad-hoc reader, and an audit loop racing all of it.
/// Every audit must come back clean — the incremental latch-then-drain
/// catch-up replaced the global quiesce, so a false corruption report
/// here means a delta was visible in the image but missed by the audit's
/// shard drain. After quiesce the dirty set must be empty and the
/// drainer must actually have run.
fn stress_deferred(
    shards: usize,
    drain_interval: Option<std::time::Duration>,
    watermark: usize,
    audit_threads: usize,
) {
    let cfg = TpcbConfig::small();
    let dir = dali_testutil::TempDir::new(&format!("stress-deferred-{shards}-{audit_threads}"));
    let mut config = DaliConfig::small(dir.path())
        .with_scheme(ProtectionScheme::DeferredMaintenance)
        .with_deferred_shards(shards)
        .with_deferred_drain_interval(drain_interval)
        .with_deferred_watermark(watermark)
        .with_audit_threads(audit_threads);
    config.db_pages = cfg.required_pages(config.page_size);
    let (db, _) = DaliEngine::create(config).unwrap();
    let mut driver = TpcbDriver::setup(&db, cfg.clone()).unwrap();

    let stop = AtomicBool::new(false);
    let (accounts, _, _, _) = driver.tables();
    let audits_done = std::thread::scope(|s| {
        let auditor = s.spawn(|| {
            let mut audits = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let report = db.audit().unwrap();
                assert!(
                    report.clean(),
                    "deferred ({shards} shards): audit #{audits} reported corruption in an \
                     uncorrupted database: {report:?}"
                );
                audits += 1;
            }
            audits
        });

        s.spawn(|| {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let txn = db.begin().unwrap();
                let mut res = Ok(Vec::new());
                for k in 0..8 {
                    let rec =
                        RecId::new(accounts, SlotId(((i * 37 + k * 131) % cfg.accounts) as u32));
                    res = txn.read_vec(rec);
                    if res.is_err() {
                        break;
                    }
                }
                match res {
                    Ok(_) => txn.commit().unwrap(),
                    Err(DaliError::LockDenied { .. }) => txn.abort().unwrap(),
                    Err(e) => panic!("deferred: reader failed: {e}"),
                }
                i += 1;
            }
        });

        let stats = driver.run_concurrent(THREADS, OPS).unwrap();
        stop.store(true, Ordering::Relaxed);
        assert_eq!(stats.ops, OPS);
        auditor.join().unwrap()
    });

    assert!(audits_done >= 1, "audit loop never completed a sweep");
    driver.verify_invariant().unwrap();
    assert!(db.audit().unwrap().clean());
    // Quiesced and fully audited: every queued delta has been applied.
    let deferred = db.deferred_stats();
    assert_eq!(
        deferred.pending_deltas, 0,
        "deltas left queued: {deferred:?}"
    );
    assert_eq!(
        deferred.dirty_regions, 0,
        "regions left dirty: {deferred:?}"
    );
    assert!(deferred.drains > 0, "no drain ever ran: {deferred:?}");
    assert_eq!(deferred.shards, shards as u64);
}

#[test]
fn stress_deferred_sharded_with_background_drainer() {
    stress_deferred(8, Some(std::time::Duration::from_millis(1)), 4096, 1);
}

/// No background drainer and a tiny watermark: catch-up rides entirely
/// on audit drains and inline backpressure drains.
#[test]
fn stress_deferred_watermark_only() {
    stress_deferred(4, None, 16, 1);
}

/// The hardest combination: concurrent TPC-B updaters queueing deferred
/// deltas, the background drainer applying them, an ad-hoc reader, and a
/// *4-way-striped* audit loop doing the latch-then-drain-shard catch-up
/// from four threads at once. Every audit must stay clean and the dirty
/// set must still be empty at quiesce — stripe workers draining shards
/// concurrently with each other, the drainer, and watermark pushers must
/// never lose or double-apply a delta.
#[test]
fn stress_deferred_parallel_audit() {
    stress_deferred(8, Some(std::time::Duration::from_millis(1)), 4096, 4);
}
