//! Second property test of §4.1 conflict-consistency, with a stronger
//! transaction shape than `history_consistency.rs`: each transaction is a
//! *sequence* of interleaved reads and writes, so a transaction can write
//! cleanly **before** reading corrupt data. Those pre-taint writes are
//! rolled back when the transaction is deleted, so any later transaction
//! that read them must be quarantined too — the case §4.3's conflict
//! check exists for.

use dali::{DaliConfig, DaliEngine, FaultInjector, ProtectionScheme, RecId, RecoveryMode, TableId};
use proptest::prelude::*;

const REC: usize = 128;
const NRECS: usize = 10;

#[derive(Clone, Debug)]
enum Step {
    Read(usize),
    /// Write record, value derived from everything read so far (plus the
    /// transaction tag).
    Write(usize),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..NRECS).prop_map(Step::Read),
        (0..NRECS).prop_map(Step::Write),
    ]
}

#[derive(Clone, Debug)]
struct Scenario {
    txns: Vec<Vec<Step>>,
    corrupt_after: usize,
    victim: usize,
    scheme_cw: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(proptest::collection::vec(step(), 1..5), 2..7),
        0..5usize,
        0..NRECS,
        any::<bool>(),
    )
        .prop_map(|(txns, ca, victim, scheme_cw)| Scenario {
            corrupt_after: ca.min(txns.len()),
            txns,
            victim,
            scheme_cw,
        })
}

fn initial(i: usize) -> Vec<u8> {
    let mut v = vec![0u8; REC];
    v[0..8].copy_from_slice(&(0xABC0u64 + i as u64).to_le_bytes());
    v[16] = i as u8;
    v
}

fn derived(tag: u64, step_no: usize, reads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = vec![0u8; REC];
    out[0..8].copy_from_slice(&tag.to_le_bytes());
    out[8..16].copy_from_slice(&(step_no as u64).to_le_bytes());
    for r in reads {
        for (o, b) in out.iter_mut().skip(16).zip(&r[16..]) {
            *o ^= *b;
        }
    }
    out
}

fn run_scenario(s: &Scenario) -> Result<(), TestCaseError> {
    let dir = dali_testutil::TempDir::new("histint");
    let scheme = if s.scheme_cw {
        ProtectionScheme::CwReadLogging
    } else {
        ProtectionScheme::ReadLogging
    };
    let config = DaliConfig::small(dir.path()).with_scheme(scheme);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let table: TableId = db.create_table("t", REC, 64).unwrap();
    let setup = db.begin().unwrap();
    let recs: Vec<RecId> = (0..NRECS)
        .map(|i| setup.insert(table, &initial(i)).unwrap())
        .collect();
    setup.commit().unwrap();
    db.checkpoint().unwrap();
    prop_assert!(db.audit().unwrap().clean());

    let inj = FaultInjector::new(&db);
    let mut txn_ids = Vec::new();
    let mut corrupted = false;
    for (i, steps) in s.txns.iter().enumerate() {
        if i == s.corrupt_after {
            inj.wild_write_bytes(
                db.record_addr(recs[s.victim]).unwrap().add(32),
                &[0xDE, 0xAD, 0xBE, 0xEF],
            )
            .unwrap();
            corrupted = true;
        }
        let txn = db.begin().unwrap();
        txn_ids.push(txn.id());
        let mut reads: Vec<Vec<u8>> = Vec::new();
        for (sn, st) in steps.iter().enumerate() {
            match st {
                Step::Read(r) => reads.push(txn.read_vec(recs[*r]).unwrap()),
                Step::Write(w) => txn
                    .update(recs[*w], &derived(i as u64 + 1, sn, &reads))
                    .unwrap(),
            }
        }
        txn.commit().unwrap();
    }
    if !corrupted {
        inj.wild_write_bytes(
            db.record_addr(recs[s.victim]).unwrap().add(32),
            &[0xDE, 0xAD, 0xBE, 0xEF],
        )
        .unwrap();
    }

    prop_assert!(!db.audit().unwrap().clean(), "wild write must be detected");
    let (db, outcome) = DaliEngine::open(config).unwrap();
    prop_assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);

    // Replay the delete history the engine chose: skip deleted txns,
    // recompute surviving txns' writes from model values. The recovered
    // image must match exactly (conflict-consistency, §4.1).
    let deleted: std::collections::HashSet<usize> = (0..s.txns.len())
        .filter(|i| outcome.deleted_txns.contains(&txn_ids[*i]))
        .collect();
    let mut model: Vec<Vec<u8>> = (0..NRECS).map(initial).collect();
    for (i, steps) in s.txns.iter().enumerate() {
        if deleted.contains(&i) {
            continue;
        }
        let mut reads: Vec<Vec<u8>> = Vec::new();
        for (sn, st) in steps.iter().enumerate() {
            match st {
                Step::Read(r) => reads.push(model[*r].clone()),
                Step::Write(w) => model[*w] = derived(i as u64 + 1, sn, &reads),
            }
        }
    }
    // Minimal completeness: every txn that read the victim record after
    // corruption must be deleted.
    let mut dirty = std::collections::HashSet::new();
    dirty.insert(s.victim);
    for (i, steps) in s.txns.iter().enumerate().skip(s.corrupt_after) {
        let mut tainted = false;
        for st in steps {
            match st {
                Step::Read(r) if dirty.contains(r) => tainted = true,
                Step::Write(w) if tainted => {
                    dirty.insert(*w);
                }
                _ => {}
            }
        }
        if tainted {
            prop_assert!(
                deleted.contains(&i),
                "txn #{i} read corrupt data but survived ({:?})",
                outcome.deleted_txns
            );
        }
    }

    let check = db.begin().unwrap();
    for (i, rec) in recs.iter().enumerate() {
        let got = check.read_vec(*rec).unwrap();
        prop_assert_eq!(
            &got,
            &model[i],
            "record {} diverges from the delete history (deleted={:?})",
            i,
            deleted
        );
    }
    check.commit().unwrap();
    prop_assert!(db.audit().unwrap().clean());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 50,
    })]

    #[test]
    fn interleaved_histories_are_conflict_consistent(s in scenario()) {
        run_scenario(&s)?;
    }
}
