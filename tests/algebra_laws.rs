//! Property tests for the codeword-algebra laws, over both algebras.
//!
//! Everything the protection machinery asks of an algebra is a short
//! list of equations (see `dali_codeword::algebra`): folds compose over
//! concatenation, the directed update delta moves a codeword exactly to
//! the recompute-from-image value, deltas coalesce associatively and
//! commutatively (the deferred dirty set merges them in whatever order
//! shards drain), and the zero-padded fold agrees with the aligned fold
//! on zero-padded input. These hold trivially for XOR; for the
//! mod-(2^32−1) residue they depend on the end-around carry and the
//! canonicalization being right. So: random data, both algebras, every
//! law. `PROPTEST_CASES` raises the case count in CI.

use dali::codeword::algebra::{delta, fold, fold_padded, fold_scalar};
use dali::CodewordAlgebraKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Canonical codeword from an arbitrary u32 (the residue algebra's
/// carrier is [0, 2^32−1), so 0xFFFF_FFFF canonicalizes to 0).
fn canon(kind: CodewordAlgebraKind, raw: u32) -> u32 {
    fold(kind, &raw.to_le_bytes())
}

fn aligned(bytes: Vec<u8>) -> Vec<u8> {
    let len = bytes.len() / 4 * 4;
    let mut b = bytes;
    b.truncate(len);
    b
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok().and_then(|v| v.parse().ok()).unwrap_or(64),
        ..ProptestConfig::default()
    })]

    /// fold(a ++ b) == combine(fold(a), fold(b)).
    #[test]
    fn fold_composes_over_concatenation(
        a in proptest::collection::vec(any::<u8>(), 0..257),
        b in proptest::collection::vec(any::<u8>(), 0..257),
    ) {
        let (a, b) = (aligned(a), aligned(b));
        let mut ab = a.clone();
        ab.extend_from_slice(&b);
        for kind in CodewordAlgebraKind::ALL {
            prop_assert_eq!(
                fold(kind, &ab),
                kind.combine(fold(kind, &a), fold(kind, &b)),
                "{:?}", kind
            );
            // The wide kernel and the scalar reference agree everywhere.
            prop_assert_eq!(fold(kind, &ab), fold_scalar(kind, &ab), "{:?}", kind);
        }
    }

    /// Composing the directed delta of an in-place sub-range overwrite
    /// onto the old codeword equals recomputing from the new image; the
    /// negated delta rolls it back.
    #[test]
    fn delta_composed_equals_recompute(
        region in proptest::collection::vec(any::<u8>(), 4..513),
        replacement in proptest::collection::vec(any::<u8>(), 1..129),
        at in any::<u16>(),
    ) {
        let region = aligned(region);
        let words = region.len() / 4;
        let start = (at as usize % words) * 4;
        let len = (replacement.len() / 4 * 4).min(region.len() - start);
        let replacement = &replacement[..len];

        let mut after = region.clone();
        after[start..start + len].copy_from_slice(replacement);
        for kind in CodewordAlgebraKind::ALL {
            let d = delta(kind, &region[start..start + len], replacement);
            prop_assert_eq!(
                kind.combine(fold(kind, &region), d),
                fold(kind, &after),
                "{:?} forward", kind
            );
            prop_assert_eq!(
                kind.combine(fold(kind, &after), kind.neg(d)),
                fold(kind, &region),
                "{:?} rollback", kind
            );
        }
    }

    /// Deltas coalesce associatively and commutatively: any grouping and
    /// any order of combining the same multiset of deltas produces the
    /// same merged delta. This is the invariant that lets the sharded
    /// deferred set merge concurrent publications without ordering.
    #[test]
    fn deltas_coalesce_in_any_order_and_grouping(
        raws in proptest::collection::vec(any::<u32>(), 1..24),
        seed in any::<u64>(),
    ) {
        for kind in CodewordAlgebraKind::ALL {
            let deltas: Vec<u32> = raws.iter().map(|&r| canon(kind, r)).collect();
            // Left-to-right fold.
            let left = deltas.iter().fold(kind.identity(), |a, &d| kind.combine(a, d));
            // Right-to-left fold (associativity).
            let right = deltas.iter().rev().fold(kind.identity(), |a, &d| kind.combine(d, a));
            prop_assert_eq!(left, right, "{:?} associativity", kind);
            // Shuffled order (commutativity).
            let mut shuffled = deltas.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, rng.gen_range(0..=i));
            }
            let any_order = shuffled.iter().fold(kind.identity(), |a, &d| kind.combine(a, d));
            prop_assert_eq!(left, any_order, "{:?} commutativity", kind);
            // Pairwise tree reduction (the striped audit's merge shape).
            let mut level = deltas;
            while level.len() > 1 {
                level = level
                    .chunks(2)
                    .map(|c| if c.len() == 2 { kind.combine(c[0], c[1]) } else { c[0] })
                    .collect();
            }
            prop_assert_eq!(left, level[0], "{:?} tree reduction", kind);
        }
    }

    /// fold_padded(b) == fold(b ++ zeros), and agrees with fold exactly
    /// on already-aligned input.
    #[test]
    fn fold_padded_agrees_with_fold_on_zero_padded_input(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut padded = bytes.clone();
        padded.resize(bytes.len().div_ceil(4) * 4, 0);
        for kind in CodewordAlgebraKind::ALL {
            prop_assert_eq!(fold_padded(kind, &bytes), fold(kind, &padded), "{:?}", kind);
            prop_assert_eq!(fold_padded(kind, &padded), fold(kind, &padded), "{:?}", kind);
        }
    }

    /// Group laws on canonical codewords: identity is neutral, neg is the
    /// inverse, combine commutes.
    #[test]
    fn combine_is_a_commutative_group(ra in any::<u32>(), rb in any::<u32>()) {
        for kind in CodewordAlgebraKind::ALL {
            let (a, b) = (canon(kind, ra), canon(kind, rb));
            prop_assert_eq!(kind.combine(a, kind.identity()), a, "{:?} identity", kind);
            prop_assert_eq!(kind.combine(a, kind.neg(a)), kind.identity(), "{:?} inverse", kind);
            prop_assert_eq!(kind.combine(a, b), kind.combine(b, a), "{:?} commute", kind);
        }
    }
}
