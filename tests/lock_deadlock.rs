//! Deterministic deadlock tests: the two canonical shapes — an X/X
//! cross wait over two records and a two-reader upgrade collision on
//! one record — must resolve, never hang, under both resolution
//! policies:
//!
//! * **wait-for-graph detector on**: the youngest transaction (largest
//!   `TxnId`) is doomed within a few detection intervals, far below the
//!   lock timeout; the survivor's request is granted once the victim
//!   releases; the victim's locks are fully released afterwards;
//! * **detector off**: the timeout fires instead — slower, but the
//!   system still makes progress.
//!
//! The same cross wait is also driven end-to-end through engine
//! transactions (`TxnHandle`), where a lock denial surfaces to the
//! caller as abort-and-retry.

use dali::{
    DaliConfig, DaliEngine, DaliError, LockManager, LockMode, ProtectionScheme, RecId, SlotId,
    TableId, TxnId,
};
use std::sync::Barrier;
use std::time::{Duration, Instant};

fn rec(n: u32) -> RecId {
    RecId::new(TableId(1), SlotId(n))
}

/// Long enough that a test reaching it has hung in practice; the
/// detector variants must resolve about three orders of magnitude
/// faster.
const LONG_TIMEOUT: Duration = Duration::from_secs(30);

/// Drive an X/X cross wait: t1 holds r1 and wants r2, t2 holds r2 and
/// wants r1. Returns (t1's second-lock outcome, t2's second-lock
/// outcome, elapsed).
fn cross_wait(mgr: &LockManager) -> (Result<(), DaliError>, Result<(), DaliError>, Duration) {
    let (t1, t2) = (TxnId(1), TxnId(2));
    let (r1, r2) = (rec(1), rec(2));
    mgr.lock(t1, r1, LockMode::Exclusive).unwrap();
    mgr.lock(t2, r2, LockMode::Exclusive).unwrap();
    let barrier = Barrier::new(2);
    let start = Instant::now();
    let (res1, res2) = std::thread::scope(|s| {
        let h = s.spawn(|| {
            barrier.wait();
            let r = mgr.lock(t2, r1, LockMode::Exclusive);
            if r.is_err() {
                // The caller contract on denial: abort, releasing
                // everything the transaction holds.
                mgr.unlock_all(t2);
            }
            r
        });
        barrier.wait();
        // Give t2's request time to block so the cycle actually forms.
        std::thread::sleep(Duration::from_millis(20));
        let r = mgr.lock(t1, r2, LockMode::Exclusive);
        if r.is_err() {
            mgr.unlock_all(t1);
        }
        (r, h.join().unwrap())
    });
    (res1, res2, start.elapsed())
}

#[test]
fn cross_wait_detector_dooms_youngest_and_survivor_completes() {
    let mgr = LockManager::with_config(LONG_TIMEOUT, 8, Some(Duration::from_millis(2)));
    let (res1, res2, elapsed) = cross_wait(&mgr);
    // The youngest transaction (t2) is the victim; t1 survives and gets
    // its lock as soon as t2's abort releases r2.
    assert!(res1.is_ok(), "survivor was denied: {res1:?}");
    match res2 {
        Err(DaliError::LockDenied { txn, .. }) => assert_eq!(txn, TxnId(2)),
        other => panic!("victim outcome should be LockDenied, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "detector took {elapsed:?}; deadlock was resolved by something other than detection"
    );
    // The survivor still holds r1 + r2; the victim holds nothing.
    assert_eq!(mgr.held_mode(TxnId(1), rec(1)), Some(LockMode::Exclusive));
    assert_eq!(mgr.held_mode(TxnId(1), rec(2)), Some(LockMode::Exclusive));
    assert_eq!(mgr.held_mode(TxnId(2), rec(1)), None);
    assert_eq!(mgr.held_mode(TxnId(2), rec(2)), None);
    mgr.unlock_all(TxnId(1));
    assert_eq!(mgr.locked_records(), 0, "locks leaked after quiesce");
}

#[test]
fn cross_wait_timeout_resolves_without_detector() {
    let mgr = LockManager::with_config(Duration::from_millis(150), 8, None);
    let (res1, res2, elapsed) = cross_wait(&mgr);
    // With timeout-only resolution at least one side must be denied;
    // whichever side survives (if any) keeps its locks.
    assert!(
        res1.is_err() || res2.is_err(),
        "a deadlocked pair cannot both be granted"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "timeout resolution hung for {elapsed:?}"
    );
    mgr.unlock_all(TxnId(1));
    mgr.unlock_all(TxnId(2));
    assert_eq!(mgr.locked_records(), 0, "locks leaked after quiesce");
}

/// Two readers on one record that both request the upgrade: neither can
/// be granted (each blocks on the other's shared hold) — deadlock.
fn upgrade_collision(
    mgr: &LockManager,
) -> (Result<(), DaliError>, Result<(), DaliError>, Duration) {
    let (t1, t2) = (TxnId(1), TxnId(2));
    let r = rec(7);
    mgr.lock(t1, r, LockMode::Shared).unwrap();
    mgr.lock(t2, r, LockMode::Shared).unwrap();
    let barrier = Barrier::new(2);
    let start = Instant::now();
    let (res1, res2) = std::thread::scope(|s| {
        let h = s.spawn(|| {
            barrier.wait();
            let res = mgr.lock(t2, r, LockMode::Exclusive);
            if res.is_err() {
                mgr.unlock_all(t2);
            }
            res
        });
        barrier.wait();
        std::thread::sleep(Duration::from_millis(20));
        let res = mgr.lock(t1, r, LockMode::Exclusive);
        if res.is_err() {
            mgr.unlock_all(t1);
        }
        (res, h.join().unwrap())
    });
    (res1, res2, start.elapsed())
}

#[test]
fn upgrade_deadlock_detector_dooms_youngest_reader() {
    let mgr = LockManager::with_config(LONG_TIMEOUT, 8, Some(Duration::from_millis(2)));
    let (res1, res2, elapsed) = upgrade_collision(&mgr);
    assert!(res1.is_ok(), "older reader's upgrade was denied: {res1:?}");
    match res2 {
        Err(DaliError::LockDenied { txn, .. }) => assert_eq!(txn, TxnId(2)),
        other => panic!("younger reader should be the victim, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "upgrade deadlock took {elapsed:?} to resolve"
    );
    // t1 ends up sole exclusive holder.
    assert_eq!(mgr.held_mode(TxnId(1), rec(7)), Some(LockMode::Exclusive));
    mgr.unlock_all(TxnId(1));
    assert_eq!(mgr.locked_records(), 0, "locks leaked after quiesce");
}

#[test]
fn upgrade_deadlock_timeout_resolves_without_detector() {
    let mgr = LockManager::with_config(Duration::from_millis(150), 8, None);
    let (res1, res2, elapsed) = upgrade_collision(&mgr);
    assert!(
        res1.is_err() || res2.is_err(),
        "colliding upgrades cannot both be granted"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "timeout resolution hung for {elapsed:?}"
    );
    mgr.unlock_all(TxnId(1));
    mgr.unlock_all(TxnId(2));
    assert_eq!(mgr.locked_records(), 0, "locks leaked after quiesce");
}

/// The same cross wait through real engine transactions: the victim's
/// update fails with `LockDenied`, it aborts, and the survivor commits.
/// Verifies the error surface and lock release end-to-end rather than
/// against the bare lock manager.
#[test]
fn engine_transactions_resolve_cross_update_deadlock() {
    let dir = dali_testutil::TempDir::new("engine-deadlock");
    let mut config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::DataCodeword);
    config.lock_timeout = LONG_TIMEOUT;
    config.deadlock_detect_interval = Some(Duration::from_millis(2));
    let (db, _) = DaliEngine::create(config).unwrap();
    let table = db.create_table("pair", 16, 64).unwrap();
    let setup = db.begin().unwrap();
    let r1 = setup.insert(table, &[1u8; 16]).unwrap();
    let r2 = setup.insert(table, &[2u8; 16]).unwrap();
    setup.commit().unwrap();

    let start = Instant::now();
    // txn_a is older than txn_b, so txn_b is the victim.
    let txn_a = db.begin().unwrap();
    let txn_b = db.begin().unwrap();
    txn_a.update(r1, &[11u8; 16]).unwrap();
    txn_b.update(r2, &[22u8; 16]).unwrap();
    let barrier = Barrier::new(2);
    std::thread::scope(|s| {
        let victim = s.spawn(|| {
            barrier.wait();
            match txn_b.update(r1, &[33u8; 16]) {
                Err(DaliError::LockDenied { .. }) => txn_b.abort().unwrap(),
                other => panic!("victim update should be LockDenied, got {other:?}"),
            }
        });
        barrier.wait();
        std::thread::sleep(Duration::from_millis(20));
        txn_a.update(r2, &[44u8; 16]).unwrap();
        txn_a.commit().unwrap();
        victim.join().unwrap();
    });
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "engine deadlock resolution took {:?}",
        start.elapsed()
    );
    // Survivor's writes stuck, victim's rolled back, no locks remain.
    let check = db.begin().unwrap();
    assert_eq!(check.read_vec(r1).unwrap(), vec![11u8; 16]);
    assert_eq!(check.read_vec(r2).unwrap(), vec![44u8; 16]);
    check.commit().unwrap();
    assert_eq!(db.db().locks.locked_records(), 0, "locks leaked");
}
