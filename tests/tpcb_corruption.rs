//! TPC-B under fire: inject corruption into a live workload, recover,
//! and check global consistency.
//!
//! The TPC-B invariant (sum of account balances == sum of teller balances
//! == sum of branch balances) must hold after delete-transaction
//! recovery: every deleted transaction had its updates to *all four*
//! tables removed atomically, so the sums stay aligned no matter which
//! transactions were deleted.

use dali::{
    DaliConfig, DaliEngine, FaultInjector, ProtectionScheme, RecoveryMode, TpcbConfig, TpcbDriver,
};

fn tmpdir(name: &str) -> dali_testutil::TempDir {
    dali_testutil::TempDir::new(&format!("tpcbcorr-{name}"))
}

fn build(
    name: &str,
    scheme: ProtectionScheme,
) -> (DaliConfig, DaliEngine, TpcbDriver, dali_testutil::TempDir) {
    let wl = TpcbConfig::small();
    let dir = tmpdir(name);
    let mut config = DaliConfig::small(dir.path()).with_scheme(scheme);
    config.db_pages = wl.required_pages(config.page_size);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let driver = TpcbDriver::setup(&db, wl).unwrap();
    (config, db, driver, dir)
}

#[test]
fn invariant_holds_after_delete_txn_recovery() {
    let (config, db, mut driver, _dir) = build("inv", ProtectionScheme::ReadLogging);
    driver.run_ops(300).unwrap();
    db.checkpoint().unwrap();
    driver.run_ops(100).unwrap();

    // Corrupt a random account, let the workload carry it around.
    let victim = driver.random_account();
    let inj = FaultInjector::new(&db);
    inj.wild_write_noise(db.record_addr(victim).unwrap().add(8), 8)
        .unwrap();
    driver.run_ops(100).unwrap();

    assert!(!db.audit().unwrap().clean());
    let (db, outcome) = DaliEngine::open(config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    // The workload touched the victim with high probability; whether or
    // not transactions were deleted, the invariant must hold.
    let driver = TpcbDriver::attach(&db, TpcbConfig::small()).unwrap();
    driver.verify_invariant().unwrap();
    assert!(db.audit().unwrap().clean());
}

#[test]
fn invariant_holds_after_cw_recovery_from_plain_crash() {
    let (config, db, mut driver, _dir) = build("cw", ProtectionScheme::CwReadLogging);
    driver.run_ops(200).unwrap();
    db.checkpoint().unwrap();

    let victim = driver.random_account();
    let inj = FaultInjector::new(&db);
    inj.wild_write_noise(db.record_addr(victim).unwrap().add(8), 8)
        .unwrap();
    driver.run_ops(100).unwrap();
    db.crash(); // no audit ever saw it

    let (db, outcome) = DaliEngine::open(config).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    let driver = TpcbDriver::attach(&db, TpcbConfig::small()).unwrap();
    driver.verify_invariant().unwrap();
    assert!(db.audit().unwrap().clean());
}

#[test]
fn repeated_corruption_recovery_cycles() {
    let wl = TpcbConfig::small();
    let dir = tmpdir("cycles");
    let mut config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::ReadLogging);
    config.db_pages = wl.required_pages(config.page_size);
    let (mut db, _) = DaliEngine::create(config.clone()).unwrap();
    let mut driver = TpcbDriver::setup(&db, wl.clone()).unwrap();
    driver.run_ops(100).unwrap();
    db.checkpoint().unwrap();

    for round in 0..3 {
        let mut d = TpcbDriver::attach(&db, wl.clone()).unwrap();
        d.run_ops(60).unwrap();
        let victim = d.random_account();
        FaultInjector::new(&db)
            .wild_write(db.record_addr(victim).unwrap().add(16), 0xA0 + round, 4)
            .unwrap();
        d.run_ops(30).unwrap();
        assert!(!db.audit().unwrap().clean(), "round {round}");
        let (ndb, outcome) = DaliEngine::open(config.clone()).unwrap();
        assert_eq!(outcome.mode, RecoveryMode::DeleteTxn, "round {round}");
        db = ndb;
        let d = TpcbDriver::attach(&db, wl.clone()).unwrap();
        d.verify_invariant()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
}

/// Checkpoint certification striped across 4 audit workers must still
/// find a wild write — and report exactly what a serial certification
/// pass reports. With the parity stripe on (the default) the detection
/// now resolves into an online in-place repair
/// (`CorruptionRepaired`), which carries the same certification report
/// the old poison path surfaced; the serial reference report comes from
/// a second engine running the identical scenario.
#[test]
fn parallel_certification_detects_corruption() {
    let run = |name: &str, audit_threads: usize| {
        let wl = TpcbConfig::small();
        let dir = tmpdir(name);
        let mut config = DaliConfig::small(dir.path())
            .with_scheme(ProtectionScheme::DataCodeword)
            .with_audit_threads(audit_threads);
        config.db_pages = wl.required_pages(config.page_size);
        let (db, _) = DaliEngine::create(config).unwrap();
        let mut driver = TpcbDriver::setup(&db, wl).unwrap();
        driver.run_ops(100).unwrap();
        // Deterministic victim so both engines corrupt the same record.
        let victim = driver.account(7);
        FaultInjector::new(&db)
            .wild_write(db.record_addr(victim).unwrap().add(8), 0xEE, 4)
            .unwrap();
        match db.checkpoint().unwrap() {
            dali::CheckpointOutcome::CorruptionRepaired { report, outcome } => {
                assert!(outcome.in_place(), "single fault must rebuild in place");
                report
            }
            other => panic!("certification must detect the fault: {other:?}"),
        }
    };
    let parallel = run("parcert-4", 4);
    let serial = run("parcert-1", 1);
    assert!(!parallel.clean());
    assert_eq!(parallel.regions_checked, serial.regions_checked);
    assert_eq!(
        parallel.corrupt.len(),
        serial.corrupt.len(),
        "stripe workers must find the same corrupt regions"
    );
    for (p, s) in parallel.corrupt.iter().zip(&serial.corrupt) {
        assert_eq!(p.region, s.region);
        assert_eq!(p.addr, s.addr);
        assert_eq!(p.len, s.len);
    }
}

#[test]
fn mprotect_scheme_blocks_campaign_and_workload_continues() {
    let (_config, db, mut driver, _dir) = build("mp", ProtectionScheme::MemoryProtection);
    driver.run_ops(100).unwrap();

    let inj = FaultInjector::new(&db);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let report = dali::faultinject::random_campaign(&inj, &mut rng, 100, 16).unwrap();
    assert_eq!(
        report.trapped, 100,
        "all writes trapped outside update windows"
    );

    driver.run_ops(100).unwrap();
    driver.verify_invariant().unwrap();
}

#[test]
fn baseline_campaign_corrupts_silently_then_readlog_would_have_caught_it() {
    // Contrast experiment: identical campaign against Baseline (lands,
    // goes unnoticed) and against ReadLogging (detected at checkpoint).
    let (_c1, db1, mut d1, _dir1) = build("contrast-base", ProtectionScheme::Baseline);
    d1.run_ops(50).unwrap();
    let v = d1.random_account();
    FaultInjector::new(&db1)
        .wild_write(db1.record_addr(v).unwrap().add(8), 0xEE, 4)
        .unwrap();
    // Baseline checkpoint certifies blindly — corruption persists.
    db1.checkpoint().unwrap();
    assert!(db1.audit().unwrap().clean(), "baseline audit sees nothing");
    // The invariant is now silently broken (the corrupted balance).
    let err = d1.verify_invariant();
    assert!(
        err.is_err(),
        "corruption went undetected and broke the books"
    );

    let (c2, db2, mut d2, _dir2) = build("contrast-rl", ProtectionScheme::ReadLogging);
    d2.run_ops(50).unwrap();
    // A periodic audit runs clean here; without it, recovery's Audit_SN
    // would predate population and conservatively delete the population
    // transactions themselves (corruption could have happened any time
    // after the last clean audit).
    assert!(db2.audit().unwrap().clean());
    let v = d2.random_account();
    FaultInjector::new(&db2)
        .wild_write(db2.record_addr(v).unwrap().add(8), 0xEE, 4)
        .unwrap();
    match db2.checkpoint().unwrap() {
        dali::CheckpointOutcome::CorruptionDetected(_) => {}
        other => panic!("certification must fail: {other:?}"),
    }
    let (db2, _) = DaliEngine::open(c2).unwrap();
    let d2 = TpcbDriver::attach(&db2, TpcbConfig::small()).unwrap();
    d2.verify_invariant().unwrap();
}
