//! Property test of the delete-transaction model's correctness criterion
//! (paper §4.1): the recovered database must be **conflict-consistent**
//! with a delete history of the original execution.
//!
//! Strategy: run a randomized sequence of transactions, each reading a
//! few records and writing values *derived from those reads* (so carried
//! corruption is observable). Inject a wild write at a random point.
//! After recovery reports the deleted set `D`, replay the original
//! transaction sequence in a model store, skipping transactions in `D`
//! and recomputing every surviving transaction's writes from the model's
//! values. Conflict-consistency requires the recovered image to equal
//! the model exactly — every surviving read must have returned the value
//! the delete history provides.
//!
//! Additionally, `D` must contain every transaction that (transitively)
//! read the corrupt bytes — the taint closure — and recovery must leave
//! a clean audit.

use dali::{DaliConfig, DaliEngine, FaultInjector, ProtectionScheme, RecId, RecoveryMode, TableId};
use proptest::prelude::*;

/// 128-byte records = exactly two 64-byte protection regions, so a
/// record's corruption never taints a neighbour.
const REC: usize = 128;
const NRECS: usize = 12;

#[derive(Clone, Debug)]
struct TxnPlan {
    reads: Vec<usize>,
    write: usize,
}

fn txn_plan() -> impl Strategy<Value = TxnPlan> {
    (proptest::collection::vec(0..NRECS, 1..3), 0..NRECS)
        .prop_map(|(reads, write)| TxnPlan { reads, write })
}

#[derive(Clone, Debug)]
struct Scenario {
    txns: Vec<TxnPlan>,
    /// After how many transactions the wild write fires.
    corrupt_after: usize,
    /// Which record gets corrupted.
    victim: usize,
    scheme_cw: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(txn_plan(), 2..8),
        0..6usize,
        0..NRECS,
        any::<bool>(),
    )
        .prop_map(|(txns, ca, victim, scheme_cw)| {
            let corrupt_after = ca.min(txns.len());
            Scenario {
                txns,
                corrupt_after,
                victim,
                scheme_cw,
            }
        })
}

/// The value transaction `tag` writes, derived from what it read.
fn derived(tag: u64, reads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = vec![0u8; REC];
    out[0..8].copy_from_slice(&tag.to_le_bytes());
    for r in reads {
        for (o, b) in out.iter_mut().skip(8).zip(&r[8..]) {
            *o ^= *b;
        }
    }
    out
}

fn initial(i: usize) -> Vec<u8> {
    let mut v = vec![0u8; REC];
    v[0..8].copy_from_slice(&(0xF00u64 + i as u64).to_le_bytes());
    v[20] = i as u8;
    v
}

fn run_scenario(s: &Scenario, case: u64) -> Result<(), TestCaseError> {
    let dir = dali_testutil::TempDir::new(&format!("hist-{case}"));
    let scheme = if s.scheme_cw {
        ProtectionScheme::CwReadLogging
    } else {
        ProtectionScheme::ReadLogging
    };
    let config = DaliConfig::small(dir.path()).with_scheme(scheme);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let table: TableId = db.create_table("t", REC, 64).unwrap();

    // Populate.
    let setup = db.begin().unwrap();
    let recs: Vec<RecId> = (0..NRECS)
        .map(|i| setup.insert(table, &initial(i)).unwrap())
        .collect();
    setup.commit().unwrap();
    db.checkpoint().unwrap();
    prop_assert!(db.audit().unwrap().clean());

    // Execute the planned transactions, with the wild write at the chosen
    // point. Track each txn's engine id.
    let mut txn_ids = Vec::new();
    let inj = FaultInjector::new(&db);
    let mut corrupted = false;
    for (i, plan) in s.txns.iter().enumerate() {
        if i == s.corrupt_after {
            // Non-periodic pattern so the XOR fold always changes (see
            // tests/parity_blind_spot.rs).
            inj.wild_write_bytes(
                db.record_addr(recs[s.victim]).unwrap().add(32),
                &[0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8],
            )
            .unwrap();
            corrupted = true;
        }
        let txn = db.begin().unwrap();
        txn_ids.push(txn.id());
        let reads: Vec<Vec<u8>> = plan
            .reads
            .iter()
            .map(|&r| txn.read_vec(recs[r]).unwrap())
            .collect();
        txn.update(recs[plan.write], &derived(i as u64 + 1, &reads))
            .unwrap();
        txn.commit().unwrap();
    }
    if !corrupted {
        // Non-periodic pattern so the XOR fold always changes (a 4-byte
        // periodic pattern over uniform data cancels in the codeword —
        // see tests/parity_blind_spot.rs).
        inj.wild_write_bytes(
            db.record_addr(recs[s.victim]).unwrap().add(32),
            &[0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8],
        )
        .unwrap();
    }

    // Detect and recover.
    let report = db.audit().unwrap();
    prop_assert!(!report.clean(), "wild write must be detected");
    let (db, outcome) = DaliEngine::open(config).unwrap();
    prop_assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);

    // ---- model: minimal taint closure ----
    let mut corrupt_recs = std::collections::HashSet::new();
    corrupt_recs.insert(s.victim);
    let mut min_deleted = std::collections::HashSet::new();
    for (i, plan) in s.txns.iter().enumerate().skip(s.corrupt_after) {
        if plan.reads.iter().any(|r| corrupt_recs.contains(r)) {
            min_deleted.insert(i);
            corrupt_recs.insert(plan.write);
        } else if corrupt_recs.contains(&plan.write) {
            // Overwrote corrupt data without reading it: under the basic
            // scheme the write record itself taints the transaction.
            // (Under CW it may survive; either is a legal delete set, so
            // we do not force it into the minimal set.)
            corrupt_recs.remove(&plan.write);
        }
    }
    for i in &min_deleted {
        prop_assert!(
            outcome.deleted_txns.contains(&txn_ids[*i]),
            "txn #{i} read corrupt data but survived: deleted={:?}",
            outcome.deleted_txns
        );
    }

    // ---- model: replay the delete history the engine chose ----
    let deleted: std::collections::HashSet<usize> = (0..s.txns.len())
        .filter(|i| outcome.deleted_txns.contains(&txn_ids[*i]))
        .collect();
    let mut model: Vec<Vec<u8>> = (0..NRECS).map(initial).collect();
    for (i, plan) in s.txns.iter().enumerate() {
        if deleted.contains(&i) {
            continue;
        }
        let reads: Vec<Vec<u8>> = plan.reads.iter().map(|&r| model[r].clone()).collect();
        model[plan.write] = derived(i as u64 + 1, &reads);
    }

    let check = db.begin().unwrap();
    for (i, rec) in recs.iter().enumerate() {
        let got = check.read_vec(*rec).unwrap();
        prop_assert_eq!(
            &got,
            &model[i],
            "record {} diverges from the delete history (deleted={:?})",
            i,
            deleted
        );
    }
    check.commit().unwrap();
    prop_assert!(db.audit().unwrap().clean());
    Ok(())
}

/// Regression for the shrunk counterexample recorded in
/// `history_consistency.proptest-regressions` (seed `fe395a98…`):
/// both transactions read record 0 and write it back, and the wild
/// write fires *before* the first transaction, under plain ReadLogging.
/// Kept as an explicit deterministic test so the exact scenario runs on
/// every `cargo test` regardless of the property-test case sample.
#[test]
fn regression_corrupt_record_read_twice_before_any_commit() {
    let s = Scenario {
        txns: vec![
            TxnPlan {
                reads: vec![0],
                write: 0,
            },
            TxnPlan {
                reads: vec![0],
                write: 0,
            },
        ],
        corrupt_after: 0,
        victim: 0,
        scheme_cw: false,
    };
    run_scenario(&s, 101_295_199_967).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 40,
    })]

    #[test]
    fn recovered_state_is_conflict_consistent_with_a_delete_history(
        s in scenario(),
        case in any::<u64>(),
    ) {
        run_scenario(&s, case)?;
    }
}
