//! The XOR codeword's blind spot, and the residue algebra that closes it.
//!
//! A wild write whose per-word XOR deltas cancel (a 4-byte-periodic
//! pattern over word-aligned identical data, or any *even* number of
//! same-direction flips of one bit column) is invisible to the XOR
//! audit. The paper's schemes detect corruption only "with high
//! probability" (§3); this is the residual miss class. The
//! mod-(2^32−1) residue algebra sums words instead of XORing them, so
//! same-direction deltas *add* rather than cancel — the whole class
//! becomes detectable, at the price of a carry chain per word.
//!
//! The first half of this file documents the XOR misses as before; the
//! second half runs the structured corruption matrix
//! ([`dali::CorruptionPattern`]) under *both* algebras and pins every
//! cell of the detection table.

use dali::faultinject::{algebra_expected_detected, campaign_payload, run_arena_round};
use dali::{
    CodewordAlgebraKind, CorruptionPattern, DaliConfig, DaliEngine, FaultInjector,
    ProtectionScheme, RecId,
};

fn setup_kind(
    kind: CodewordAlgebraKind,
    name: &str,
    payload: &[u8; 128],
) -> (DaliEngine, RecId, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(&format!("parity-{name}"));
    let config = DaliConfig::small(dir.path())
        .with_scheme(ProtectionScheme::ReadLogging)
        .with_codeword_algebra(kind);
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", 128, 64).unwrap();
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, payload).unwrap();
    txn.commit().unwrap();
    db.checkpoint().unwrap();
    (db, rec, dir)
}

fn setup(name: &str) -> (DaliEngine, RecId, dali_testutil::TempDir) {
    // uniform contents, default (XOR) algebra
    setup_kind(CodewordAlgebraKind::XorFold, name, &[0u8; 128])
}

#[test]
fn periodic_pattern_over_uniform_data_cancels_in_the_codeword() {
    let (db, rec, _dir) = setup("cancel");
    let inj = FaultInjector::new(&db);
    // Two words flipped identically: XOR parity unchanged — undetected.
    let eff = inj
        .wild_write(db.record_addr(rec).unwrap().add(32), 0xEE, 8)
        .unwrap();
    assert!(eff.landed());
    assert!(
        db.audit().unwrap().clean(),
        "XOR parity cancellation: this corruption is in the scheme's blind spot"
    );
}

#[test]
fn residue_algebra_detects_the_periodic_pattern_xor_misses() {
    // The identical corruption against an identical database configured
    // with the residue algebra: both words move the sum by +0xEEEEEEEE,
    // which cannot cancel mod 2^32−1.
    let (db, rec, _dir) = setup_kind(CodewordAlgebraKind::Residue, "residue-cancel", &[0u8; 128]);
    let inj = FaultInjector::new(&db);
    let eff = inj
        .wild_write(db.record_addr(rec).unwrap().add(32), 0xEE, 8)
        .unwrap();
    assert!(eff.landed());
    assert!(
        !db.audit().unwrap().clean(),
        "the residue code exists precisely to catch the XOR-cancelling pair"
    );
}

#[test]
fn matching_arithmetic_ramps_also_cancel() {
    // Subtler variant: overwriting an arithmetic byte sequence with
    // another arithmetic sequence of the same stride produces a constant
    // per-byte delta, so all word deltas are equal and XOR-cancel in
    // pairs. Single-word (4-byte) writes can never cancel.
    let mut ramp = [0u8; 128];
    for (i, b) in ramp.iter_mut().enumerate() {
        *b = i as u8;
    }
    let (db, rec, _dir) = setup_kind(CodewordAlgebraKind::XorFold, "ramp", &ramp);
    let inj = FaultInjector::new(&db);
    // 0xE0..0xE7 over 0x00..0x07: per-byte delta 0xE0 everywhere.
    inj.wild_write_bytes(
        db.record_addr(rec).unwrap(),
        &[0xE0, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7],
    )
    .unwrap();
    assert!(
        db.audit().unwrap().clean(),
        "same-stride ramp overwrite is in the blind spot"
    );
}

#[test]
fn residue_algebra_detects_the_matching_ramp() {
    let mut ramp = [0u8; 128];
    for (i, b) in ramp.iter_mut().enumerate() {
        *b = i as u8;
    }
    let (db, rec, _dir) = setup_kind(CodewordAlgebraKind::Residue, "residue-ramp", &ramp);
    let inj = FaultInjector::new(&db);
    inj.wild_write_bytes(
        db.record_addr(rec).unwrap(),
        &[0xE0, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7],
    )
    .unwrap();
    assert!(
        !db.audit().unwrap().clean(),
        "equal word deltas add to 2·0xE0E0E0E0 mod 2^32−1 — nonzero, detected"
    );
}

#[test]
fn non_periodic_pattern_is_always_detected() {
    let (db, rec, _dir) = setup("detect");
    let inj = FaultInjector::new(&db);
    let eff = inj
        .wild_write_bytes(
            db.record_addr(rec).unwrap().add(32),
            &[0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8],
        )
        .unwrap();
    assert!(eff.landed());
    assert!(!db.audit().unwrap().clean());
}

#[test]
fn single_word_change_is_always_detected() {
    let (db, rec, _dir) = setup("word");
    let inj = FaultInjector::new(&db);
    assert!(inj
        .wild_write(db.record_addr(rec).unwrap().add(32), 0xEE, 4)
        .unwrap()
        .landed());
    assert!(!db.audit().unwrap().clean());
}

/// The full per-algebra detection matrix over the structured corruption
/// patterns. Every cell is pinned: the paired same-column flip is the
/// *only* (algebra, pattern) combination that goes undetected, and only
/// under XOR.
#[test]
fn detection_matrix_splits_by_algebra() {
    // campaign_payload gives every pattern something to land on — and
    // keeps the torn page out of the XOR blind spot (see the torn-ramp
    // test below for why a plain ramp would not).
    let payload: [u8; 128] = campaign_payload(128).try_into().unwrap();
    for kind in CodewordAlgebraKind::ALL {
        let (db, rec, _dir) = setup_kind(kind, &format!("matrix-{}", kind.tag()), &payload);
        let inj = FaultInjector::new(&db);
        let addr = db.record_addr(rec).unwrap();
        let mut landed = Vec::new();
        for pattern in CorruptionPattern::ALL {
            let v = run_arena_round(&db, &inj, pattern, addr, 128)
                .unwrap()
                .unwrap_or_else(|| panic!("{pattern:?} must land on ramp contents"));
            assert_eq!(
                v.detected,
                algebra_expected_detected(kind, pattern),
                "{kind:?} / {pattern:?}: wrong verdict"
            );
            landed.push(pattern);
        }
        assert_eq!(landed, CorruptionPattern::ALL.to_vec());
        // The repairs in run_arena_round restored image/codeword
        // consistency: the database audits clean afterwards.
        assert!(db.audit().unwrap().clean(), "{kind:?}: repair left residue");
    }
}

/// A torn write that zeroes a power-of-two run of a pure byte ramp is
/// *also* XOR-blind: sixteen consecutive ramp words XOR-fold to zero
/// (every bit column below the run length appears an even number of
/// times). The residue sums the words instead, and a nonzero tail has a
/// nonzero sum mod 2^32−1.
#[test]
fn torn_ramp_tail_is_xor_blind_but_residue_detects_it() {
    let mut ramp = [0u8; 128];
    for (i, b) in ramp.iter_mut().enumerate() {
        *b = i as u8;
    }
    for kind in CodewordAlgebraKind::ALL {
        let (db, rec, _dir) = setup_kind(kind, &format!("torn-{}", kind.tag()), &ramp);
        let inj = FaultInjector::new(&db);
        // Zero the 64-byte tail of the record, as a torn write would.
        inj.wild_write(db.record_addr(rec).unwrap().add(64), 0x00, 64)
            .unwrap();
        let detected = !db.audit().unwrap().clean();
        assert_eq!(
            detected,
            kind == CodewordAlgebraKind::Residue,
            "{kind:?}: torn pure-ramp tail"
        );
    }
}

/// Odd flip counts in one column are outside the blind spot: three
/// same-direction flips move both the XOR parity and the residue.
#[test]
fn three_flips_detected_by_both_algebras() {
    for kind in CodewordAlgebraKind::ALL {
        let (db, rec, _dir) = setup_kind(kind, &format!("three-{}", kind.tag()), &[0u8; 128]);
        let inj = FaultInjector::new(&db);
        // Same 0x08 flip in words 0, 1 and 2.
        let addr = db.record_addr(rec).unwrap();
        inj.wild_write_bytes(addr, &[0x08, 0, 0, 0, 0x08, 0, 0, 0, 0x08, 0, 0, 0])
            .unwrap();
        assert!(
            !db.audit().unwrap().clean(),
            "{kind:?} must detect an odd flip count"
        );
    }
}
