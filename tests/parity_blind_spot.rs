//! Documents the known blind spot of XOR codewords: a wild write whose
//! per-word XOR deltas cancel (e.g. a 4-byte-periodic pattern over
//! word-aligned identical data) is invisible to the audit. The paper's
//! schemes detect corruption only "with high probability" (§3); this is
//! the residual miss case.

use dali::{DaliConfig, DaliEngine, FaultInjector, ProtectionScheme};

fn setup(name: &str) -> (DaliEngine, dali::RecId, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(&format!("parity-{name}"));
    let config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::ReadLogging);
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", 128, 64).unwrap();
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &[0u8; 128]).unwrap(); // uniform contents
    txn.commit().unwrap();
    db.checkpoint().unwrap();
    (db, rec, dir)
}

#[test]
fn periodic_pattern_over_uniform_data_cancels_in_the_codeword() {
    let (db, rec, _dir) = setup("cancel");
    let inj = FaultInjector::new(&db);
    // Two words flipped identically: XOR parity unchanged — undetected.
    let eff = inj
        .wild_write(db.record_addr(rec).unwrap().add(32), 0xEE, 8)
        .unwrap();
    assert!(eff.landed());
    assert!(
        db.audit().unwrap().clean(),
        "XOR parity cancellation: this corruption is in the scheme's blind spot"
    );
}

#[test]
fn matching_arithmetic_ramps_also_cancel() {
    // Subtler variant: overwriting an arithmetic byte sequence with
    // another arithmetic sequence of the same stride produces a constant
    // per-byte delta, so all word deltas are equal and XOR-cancel in
    // pairs. Single-word (4-byte) writes can never cancel.
    let dir = dali_testutil::TempDir::new("parity-ramp");
    let config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::ReadLogging);
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", 128, 64).unwrap();
    let txn = db.begin().unwrap();
    let ramp: Vec<u8> = (0..128).map(|i| i as u8).collect();
    let rec = txn.insert(t, &ramp).unwrap();
    txn.commit().unwrap();
    db.checkpoint().unwrap();

    let inj = FaultInjector::new(&db);
    // 0xE0..0xE7 over 0x00..0x07: per-byte delta 0xE0 everywhere.
    inj.wild_write_bytes(
        db.record_addr(rec).unwrap(),
        &[0xE0, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7],
    )
    .unwrap();
    assert!(
        db.audit().unwrap().clean(),
        "same-stride ramp overwrite is in the blind spot"
    );
}

#[test]
fn non_periodic_pattern_is_always_detected() {
    let (db, rec, _dir) = setup("detect");
    let inj = FaultInjector::new(&db);
    let eff = inj
        .wild_write_bytes(
            db.record_addr(rec).unwrap().add(32),
            &[0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8],
        )
        .unwrap();
    assert!(eff.landed());
    assert!(!db.audit().unwrap().clean());
}

#[test]
fn single_word_change_is_always_detected() {
    let (db, rec, _dir) = setup("word");
    let inj = FaultInjector::new(&db);
    assert!(inj
        .wild_write(db.record_addr(rec).unwrap().add(32), 0xEE, 4)
        .unwrap()
        .landed());
    assert!(!db.audit().unwrap().clean());
}
