//! The protection matrix: every scheme delivers exactly the guarantees
//! the paper's Table 2 columns claim ("Direct" / "Indirect" corruption
//! handling).

use dali::{
    DaliConfig, DaliEngine, DaliError, FaultInjector, ProtectionScheme, RecId, RecoveryMode,
};

const REC: usize = 128;

fn tmpdir(name: &str) -> dali_testutil::TempDir {
    dali_testutil::TempDir::new(&format!("matrix-{name}"))
}

fn val(tag: u8) -> Vec<u8> {
    vec![tag; REC]
}

struct World {
    config: DaliConfig,
    db: DaliEngine,
    x: RecId,
    y: RecId,
    /// Keeps the scratch directory alive for the test's duration.
    _dir: dali_testutil::TempDir,
}

fn world(name: &str, scheme: ProtectionScheme) -> World {
    world_cfg(name, |c| c.with_scheme(scheme))
}

fn world_cfg(name: &str, tune: impl FnOnce(DaliConfig) -> DaliConfig) -> World {
    let dir = tmpdir(name);
    let config = tune(DaliConfig::small(dir.path()));
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", REC, 32).unwrap();
    let txn = db.begin().unwrap();
    let x = txn.insert(t, &val(1)).unwrap();
    let y = txn.insert(t, &val(2)).unwrap();
    txn.commit().unwrap();
    db.checkpoint().unwrap();
    World {
        config,
        db,
        x,
        y,
        _dir: dir,
    }
}

fn corrupt_x(w: &World) -> dali::InjectionEffect {
    let inj = FaultInjector::new(&w.db);
    // Non-periodic pattern: a 4-byte-periodic write over uniform data
    // cancels in the XOR codeword (see tests/parity_blind_spot.rs).
    inj.wild_write_bytes(
        w.db.record_addr(w.x).unwrap(),
        &[0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8],
    )
    .unwrap()
}

#[test]
fn baseline_none_none() {
    // No detection, no prevention: the corrupt value is served silently.
    let w = world("base", ProtectionScheme::Baseline);
    assert!(corrupt_x(&w).landed());
    let txn = w.db.begin().unwrap();
    let got = txn.read_vec(w.x).unwrap();
    assert_eq!(&got[..8], &[0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8]);
    txn.commit().unwrap();
    assert!(w.db.audit().unwrap().clean(), "nothing to audit against");
}

#[test]
fn data_codeword_detects_direct_only() {
    let w = world("dcw", ProtectionScheme::DataCodeword);
    assert!(corrupt_x(&w).landed());
    // Readers are NOT protected (no precheck)...
    let txn = w.db.begin().unwrap();
    assert_eq!(
        &txn.read_vec(w.x).unwrap()[..8],
        &[0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8]
    );
    txn.commit().unwrap();
    // ...but the asynchronous audit detects the direct corruption.
    assert!(!w.db.audit().unwrap().clean());
}

#[test]
fn deferred_maintenance_detects_direct_at_audit() {
    // Same guarantee as Data CW, but codeword deltas sit in a queue until
    // the audit drains them: legitimate updates must NOT trip the audit,
    // wild writes must.
    let w = world("defer", ProtectionScheme::DeferredMaintenance);
    // Legitimate updates first — their deltas are queued, not applied.
    let txn = w.db.begin().unwrap();
    txn.update(w.y, &val(7)).unwrap();
    txn.update(w.x, &val(8)).unwrap();
    txn.commit().unwrap();
    assert!(
        w.db.audit().unwrap().clean(),
        "drain reconciles queued deltas"
    );

    assert!(corrupt_x(&w).landed());
    assert!(
        !w.db.audit().unwrap().clean(),
        "wild write has no queued delta"
    );
}

#[test]
fn deferred_maintenance_recovers_like_data_cw() {
    // Parity stripe off: pins the legacy detect → poison → restart path.
    // (With the stripe on — the default — the audit heals the region
    // online instead; the next test covers that.)
    let w = world_cfg("defer-rec", |c| {
        c.with_scheme(ProtectionScheme::DeferredMaintenance)
            .with_parity_group_size(0)
    });
    assert!(corrupt_x(&w).landed());
    assert!(!w.db.audit().unwrap().clean());
    let (db, outcome) = DaliEngine::open(w.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::CacheRecovery);
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(w.x).unwrap(), val(1));
    txn.commit().unwrap();
    assert!(db.audit().unwrap().clean());
}

#[test]
fn deferred_maintenance_self_heals_with_stripe_on() {
    // Same fault with the parity stripe on (the default): the dirty
    // audit walks the repair ladder, the engine never poisons, and the
    // restart is Normal with the bytes already healed.
    let w = world("defer-heal", ProtectionScheme::DeferredMaintenance);
    assert!(corrupt_x(&w).landed());
    assert!(
        !w.db.audit().unwrap().clean(),
        "detection is still reported"
    );
    let txn = w.db.begin().unwrap();
    assert_eq!(txn.read_vec(w.x).unwrap(), val(1), "healed in place");
    txn.commit().unwrap();
    assert!(w.db.audit().unwrap().clean());
    drop(w.db);
    let (db, outcome) = DaliEngine::open(w.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::Normal);
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(w.x).unwrap(), val(1));
    txn.commit().unwrap();
}

#[test]
fn precheck_prevents_indirect() {
    let w = world("pre", ProtectionScheme::ReadPrecheck);
    assert!(corrupt_x(&w).landed());
    // The corrupt value never reaches a transaction.
    let txn = w.db.begin().unwrap();
    assert!(matches!(
        txn.read_vec(w.x),
        Err(DaliError::CorruptionDetected { .. })
    ));
    drop(txn);
    // Unaffected regions are still readable after recovery.
    let (db, outcome) = DaliEngine::open(w.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::CacheRecovery);
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(w.x).unwrap(), val(1));
    assert_eq!(txn.read_vec(w.y).unwrap(), val(2));
    txn.commit().unwrap();
}

#[test]
fn read_logging_corrects_indirect() {
    let w = world("rl", ProtectionScheme::ReadLogging);
    assert!(corrupt_x(&w).landed());
    // A carrier spreads the corruption before the audit fires.
    let carrier = w.db.begin().unwrap();
    let cid = carrier.id();
    let d = carrier.read_vec(w.x).unwrap();
    carrier.update(w.y, &d).unwrap();
    carrier.commit().unwrap();
    assert!(!w.db.audit().unwrap().clean());

    let (db, outcome) = DaliEngine::open(w.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    assert_eq!(outcome.deleted_txns, vec![cid]);
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(w.x).unwrap(), val(1), "direct corrected");
    assert_eq!(txn.read_vec(w.y).unwrap(), val(2), "indirect corrected");
    txn.commit().unwrap();
}

#[test]
fn memory_protection_prevents_direct() {
    let w = world("mp", ProtectionScheme::MemoryProtection);
    let eff = corrupt_x(&w);
    assert!(matches!(eff, dali::InjectionEffect::Trapped { .. }));
    let txn = w.db.begin().unwrap();
    assert_eq!(txn.read_vec(w.x).unwrap(), val(1), "write never landed");
    txn.commit().unwrap();
}

#[test]
fn memory_protection_window_is_vulnerable() {
    // The Ng & Chen point the paper cites (§4): hardware protection does
    // not stop corruption while a page is legitimately exposed. We hold
    // the page exposed by pausing inside an update window... which the
    // engine does not allow directly, so approximate it: disable, then
    // corrupt, as happens from a thread while another thread updates.
    let w = world("mpwin", ProtectionScheme::MemoryProtection);
    // Simulate another thread's begin_update window on x's page by using
    // the injector between expose/reprotect of a real update to y, which
    // shares the page with x (records are 128B; one 8K page holds both).
    let addr_x = w.db.record_addr(w.x).unwrap();
    let addr_y = w.db.record_addr(w.y).unwrap();
    let same_page = addr_x.0 / 8192 == addr_y.0 / 8192;
    assert!(same_page, "layout assumption");
    // No public hook exposes mid-update state; instead verify the weaker
    // property the scheme actually provides: once updates finish, the
    // page is protected again.
    let txn = w.db.begin().unwrap();
    txn.update(w.y, &val(9)).unwrap();
    txn.commit().unwrap();
    assert!(matches!(
        corrupt_x(&w),
        dali::InjectionEffect::Trapped { .. }
    ));
}

#[test]
fn space_overhead_matches_geometry() {
    for (region, expect) in [(64usize, 0.0625), (512, 0.0078125), (8192, 0.00048828125)] {
        let dir = tmpdir(&format!("space{region}"));
        let config = DaliConfig::small(dir.path())
            .with_scheme(ProtectionScheme::ReadPrecheck)
            .with_region_size(region);
        let (db, _) = DaliEngine::create(config).unwrap();
        assert!((db.codeword_space_overhead() - expect).abs() < 1e-12);
    }
    // Baseline has no codeword table at all.
    let dir = tmpdir("space-base");
    let config = DaliConfig::small(dir.path());
    let (db, _) = DaliEngine::create(config).unwrap();
    assert_eq!(db.codeword_space_overhead(), 0.0);
}
