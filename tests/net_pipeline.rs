//! Frame pipelining and backpressure on the event-driven server.
//!
//! Three families:
//!
//! * **Ordering under fragmentation** (proptest): K pipelined frames,
//!   written to the socket in arbitrary chunk sizes so the server's
//!   read-accumulate path sees torn headers and split payloads, come
//!   back as exactly K responses in receive order. This is the wire
//!   contract that lets a client match responses to requests by
//!   position alone.
//! * **Slow consumer**: a client that pipelines far more response bytes
//!   than it drains must *park* the server's read side (TCP
//!   backpressure), not balloon its buffers — the outbound watermark
//!   stays within `budget + depth × frame`, orders of magnitude below
//!   the response volume.
//! * **Budget sanity**: pipelined bursts still land correctly through a
//!   depth-1 pipeline budget (every extra frame parks), just slower.

use dali::net::protocol::{encode_request, frame, read_frame, Request, Response};
use dali::net::{DaliClient, DaliServer};
use dali::{DaliConfig, DaliEngine, ProtectionScheme};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn server_with(
    name: &str,
    tweak: impl FnOnce(DaliConfig) -> DaliConfig,
) -> (DaliServer, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(name);
    let config = tweak(DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::DataCodeword));
    let (engine, _) = DaliEngine::create(config).unwrap();
    let server = DaliServer::start(engine, "127.0.0.1:0").unwrap();
    (server, dir)
}

/// Write `bytes` to `stream` split at the given cut points, nudging the
/// scheduler between chunks so the server observes genuinely partial
/// frames (not one coalesced buffer).
fn write_fragmented(stream: &mut TcpStream, bytes: &[u8], cuts: &[usize]) {
    let mut pos = 0;
    let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % bytes.len().max(1)).collect();
    cuts.sort_unstable();
    for cut in cuts {
        if cut > pos {
            stream.write_all(&bytes[pos..cut]).unwrap();
            stream.flush().unwrap();
            std::thread::yield_now();
            pos = cut;
        }
    }
    stream.write_all(&bytes[pos..]).unwrap();
    stream.flush().unwrap();
}

fn read_n_responses(stream: &mut TcpStream, n: usize) -> Vec<Response> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let payload = read_frame(stream).unwrap().expect("response frame");
        out.push(Response::decode(&payload).unwrap());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// K pipelined frames, fragmented arbitrarily on the wire, produce
    /// exactly K responses in receive order.
    #[test]
    fn pipelined_frames_answered_in_order_under_fragmentation(
        k in 1usize..24,
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let (server, _dir) = server_with("net-pipe-order", |c| c);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();

        let mut dc = DaliClient::connect(server.addr()).unwrap();
        let table = dc.create_table("t", 8, 4096).unwrap();

        // A burst mixing txn verbs, inserts, and pings. The responses
        // are checked positionally, and the inserted slot ids must come
        // back ascending — on a fresh table slots allocate sequentially,
        // so any out-of-order answer reorders the ids.
        let mut burst = vec![Request::Begin];
        for i in 0..k {
            if i % 3 == 2 {
                burst.push(Request::Ping);
            } else {
                burst.push(Request::Insert { table, data: vec![i as u8; 8] });
            }
        }
        burst.push(Request::Commit);

        let mut wire = Vec::new();
        for req in &burst {
            wire.extend_from_slice(&frame(&encode_request(req)));
        }
        write_fragmented(&mut stream, &wire, &cuts);

        let resps = read_n_responses(&mut stream, burst.len());
        prop_assert_eq!(resps.len(), burst.len());
        for (i, (req, resp)) in burst.iter().zip(&resps).enumerate() {
            let ok = match req {
                Request::Begin => matches!(resp, Response::Began { .. }),
                Request::Insert { .. } => matches!(resp, Response::Inserted { .. }),
                Request::Ping | Request::Commit => matches!(resp, Response::Ok),
                _ => unreachable!(),
            };
            prop_assert!(ok, "response {} does not answer its request: {:?}", i, resp);
        }
        let slots: Vec<u32> = resps
            .iter()
            .filter_map(|r| match r {
                Response::Inserted { rec } => Some(rec.slot.0),
                _ => None,
            })
            .collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        prop_assert_eq!(slots, sorted, "pipelined inserts answered out of receive order");
        server.shutdown();
    }
}

/// A consumer that stops reading must park the server's read side. The
/// burst asks for ~32 MiB of responses; the kernel's socket buffers
/// absorb a few MiB at most, after which the outbound budget (64 KiB)
/// parks further decoding. The provable buffering bound is
/// `budget + pipeline_depth × frame` — in-flight requests admitted
/// before the budget tripped may still deliver their responses — which
/// here is ~³⁄₁₀₀ of the response volume. Once the consumer drains,
/// every response arrives in order and intact.
#[test]
fn slow_consumer_parks_reads_and_bounds_buffering() {
    const REC: usize = 4096;
    const FRAME_OVERHEAD: usize = 64;
    const BUDGET: usize = 64 * 1024;
    const DEPTH: usize = 64;
    const N: usize = 8192;
    let (server, _dir) = server_with("net-pipe-slow", |c| {
        c.with_net_pipeline_depth(DEPTH)
            .with_net_outbound_budget(BUDGET)
    });

    // Seed one fat record.
    let mut seeder = DaliClient::connect(server.addr()).unwrap();
    let table = seeder.create_table("fat", REC, 16).unwrap();
    seeder.begin().unwrap();
    let rec = seeder.insert(table, &vec![0xabu8; REC]).unwrap();
    seeder.commit().unwrap();

    // The slow consumer: one write of Begin + N reads of the fat
    // record, then no reading at all until the server has parked.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut wire = Vec::new();
    wire.extend_from_slice(&frame(&encode_request(&Request::Begin)));
    let read_frame_bytes = frame(&encode_request(&Request::Read { rec }));
    for _ in 0..N {
        wire.extend_from_slice(&read_frame_bytes);
    }
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();

    // Wait (without consuming) until responses have queued past the
    // budget and a park is recorded.
    let bound = (BUDGET + DEPTH * (REC + FRAME_OVERHEAD)) as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = seeder.stats().unwrap();
        if stats.read_parks > 0 && stats.outbound_buffered_max > BUDGET as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never parked the slow consumer (parks={}, watermark={})",
            stats.read_parks,
            stats.outbound_buffered_max
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Drain: all N+1 responses arrive, in order, intact.
    let resps = read_n_responses(&mut stream, N + 1);
    assert!(matches!(resps[0], Response::Began { .. }));
    for r in &resps[1..] {
        match r {
            Response::Data(d) => assert_eq!(d.as_slice(), &[0xabu8; REC][..]),
            other => panic!("expected Data, got {other:?}"),
        }
    }
    let stats = seeder.stats().unwrap();
    assert!(
        stats.outbound_buffered_max <= bound,
        "outbound watermark {} exceeds bound {} (budget {} + {}×frame); \
         buffering is not bounded by the budget",
        stats.outbound_buffered_max,
        bound,
        BUDGET,
        DEPTH
    );
    assert!(stats.frames_pipelined > 0, "burst never overlapped");
    server.shutdown();
}

/// With the pipeline budget clamped to 1 every frame beyond the first
/// parks the connection, but the burst still completes in order — the
/// degenerate budget degrades throughput, never correctness.
#[test]
fn depth_one_pipeline_still_serves_bursts() {
    let (server, _dir) = server_with("net-pipe-depth1", |c| c.with_net_pipeline_depth(1));
    let mut client = DaliClient::connect(server.addr()).unwrap();
    let reqs: Vec<Request> = std::iter::repeat_with(|| Request::Ping).take(32).collect();
    let resps = client.pipeline(&reqs).unwrap();
    assert_eq!(resps.len(), 32);
    assert!(resps.iter().all(|r| matches!(r, Response::Ok)));
    let stats = client.stats().unwrap();
    assert!(
        stats.read_parks > 0,
        "a depth-1 budget must park a 32-frame burst at least once"
    );
    server.shutdown();
}
