//! Model-based test of online parity repair: a repaired database is
//! byte-identical to one that was never corrupted.
//!
//! The property runs every scenario through the four corners of
//! {eager `DataCodeword`, `DeferredMaintenance`} × {`XorFold`,
//! `Residue`}: a random insert/update workload is applied to a
//! **primary** and an untouched **shadow** engine in lockstep, a single
//! protection region of the primary is corrupted behind the codeword's
//! back, and `repair` must bring the primary back so that
//!
//! * the outcome is `RepairedInPlace` (a single fault never needs the
//!   log),
//! * the repaired region's raw bytes equal the shadow's same region,
//! * every record reads back identical to the shadow, and
//! * a full audit is clean.
//!
//! Two deterministic scenarios pin the fallback ladder below that
//! property:
//!
//! * **double fault** — two corrupt regions in one parity group exceed
//!   one XOR stripe; repair must ride the certified checkpoint + WAL
//!   instead, and still restore the bytes;
//! * **stale parity** — the stripe itself is scribbled on through the
//!   unmaintained test hook, so the reconstruction cannot verify
//!   against the maintained codeword; repair must notice (never write
//!   back a wrong image) and fall back cleanly.
//!
//! CI raises the case count via `PROPTEST_CASES`, as with the lock-model
//! suite.

use dali::{
    CheckpointOutcome, CodewordAlgebraKind, DaliConfig, DaliEngine, FaultInjector,
    ProtectionScheme, RecId, RepairOutcome,
};
use proptest::prelude::*;

const REC: usize = 64;

const CORNERS: [(ProtectionScheme, CodewordAlgebraKind); 4] = [
    (ProtectionScheme::DataCodeword, CodewordAlgebraKind::XorFold),
    (ProtectionScheme::DataCodeword, CodewordAlgebraKind::Residue),
    (
        ProtectionScheme::DeferredMaintenance,
        CodewordAlgebraKind::XorFold,
    ),
    (
        ProtectionScheme::DeferredMaintenance,
        CodewordAlgebraKind::Residue,
    ),
];

fn payload(seed: u8) -> [u8; REC] {
    let mut p = [0u8; REC];
    for (i, b) in p.iter_mut().enumerate() {
        *b = seed ^ (i as u8).wrapping_mul(13).wrapping_add(seed >> 3);
    }
    p
}

fn make_engine(
    scheme: ProtectionScheme,
    kind: CodewordAlgebraKind,
    name: &str,
) -> (DaliEngine, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(name);
    let config = DaliConfig::small(dir.path())
        .with_scheme(scheme)
        .with_codeword_algebra(kind);
    let (db, _) = DaliEngine::create(config).unwrap();
    (db, dir)
}

/// Apply `(slot_sel, seed)` ops: a multiple-of-4 selector (or an empty
/// table) inserts, anything else updates an existing record. Returns
/// the records inserted, in order — identical on primary and shadow.
fn run_workload(db: &DaliEngine, table: dali::TableId, ops: &[(u8, u8)]) -> Vec<RecId> {
    let mut recs = Vec::new();
    for &(sel, seed) in ops {
        let txn = db.begin().unwrap();
        if recs.is_empty() || sel % 4 == 0 {
            recs.push(txn.insert(table, &payload(seed)).unwrap());
        } else {
            let rec = recs[sel as usize % recs.len()];
            txn.update(rec, &payload(seed)).unwrap();
        }
        txn.commit().unwrap();
    }
    recs
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok().and_then(|v| v.parse().ok()).unwrap_or(24),
        ..ProptestConfig::default()
    })]

    /// Random workload, single-region corruption, repair ⇒ the primary
    /// is byte-identical to an uncorrupted shadow run — on all four
    /// scheme × algebra corners.
    #[test]
    fn repaired_image_matches_uncorrupted_shadow_run(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..20),
        pick in any::<usize>(),
        rel in 0..REC,
        mask in 1..=255u8,
    ) {
        for (scheme, kind) in CORNERS {
            let (primary, _d1) = make_engine(scheme, kind, "repair-model-primary");
            let (shadow, _d2) = make_engine(scheme, kind, "repair-model-shadow");
            let tp = primary.create_table("t", REC, 64).unwrap();
            let ts = shadow.create_table("t", REC, 64).unwrap();
            let recs_p = run_workload(&primary, tp, &ops);
            let recs_s = run_workload(&shadow, ts, &ops);
            prop_assert_eq!(recs_p.len(), recs_s.len());

            // A certified checkpoint anchors the fallback rung; the
            // property expects repair never to need it here, but a
            // failed in-place attempt must not strand the database.
            prop_assert!(matches!(
                primary.checkpoint().unwrap(),
                CheckpointOutcome::Certified { .. }
            ), "{scheme:?}/{kind:?}");

            // Corrupt one region of one record, behind the codeword.
            let victim = recs_p[pick % recs_p.len()];
            let addr = primary.record_addr(victim).unwrap();
            let geom = primary.db().prot.geometry();
            let region = geom.region_of(addr);
            let base = geom.region_base(region);
            let inj = FaultInjector::new(&primary);
            let mut window = vec![0u8; REC];
            primary.db().image.read(base, &mut window).unwrap();
            let mut corrupt = window.clone();
            corrupt[rel] ^= mask;
            prop_assert!(inj.wild_write_bytes(base, &corrupt).unwrap().landed());

            let outcome = primary.repair(region).unwrap();
            prop_assert!(
                matches!(outcome, RepairOutcome::RepairedInPlace { regions_rebuilt: 1, .. }),
                "{scheme:?}/{kind:?}: single fault must rebuild in place, got {outcome:?}"
            );

            // Byte-identical to the shadow: the repaired region raw,
            // then every record through the read path.
            let mut healed = vec![0u8; REC];
            primary.db().image.read(base, &mut healed).unwrap();
            let mut shadow_bytes = vec![0u8; REC];
            shadow.db().image.read(base, &mut shadow_bytes).unwrap();
            prop_assert_eq!(&healed, &shadow_bytes, "{scheme:?}/{kind:?}: region bytes");
            for (rp, rs) in recs_p.iter().zip(&recs_s) {
                let txn = primary.begin().unwrap();
                let got = txn.read_vec(*rp).unwrap();
                txn.commit().unwrap();
                let txn = shadow.begin().unwrap();
                let want = txn.read_vec(*rs).unwrap();
                txn.commit().unwrap();
                prop_assert_eq!(got, want, "{scheme:?}/{kind:?}: record contents");
            }
            prop_assert!(primary.audit().unwrap().clean(), "{scheme:?}/{kind:?}");
        }
    }
}

/// Two corrupt regions in one parity group: the stripe has one equation
/// and two unknowns, so repair must fall back to the certified
/// checkpoint + WAL replay — and still restore every byte.
#[test]
fn double_fault_in_one_group_falls_back_cleanly() {
    for (scheme, kind) in CORNERS {
        let (db, _dir) = make_engine(scheme, kind, "repair-model-double");
        let table = db.create_table("t", REC, 64).unwrap();
        let recs = run_workload(&db, table, &[(0, 0x11), (4, 0x22), (8, 0x33)]);
        assert!(matches!(
            db.checkpoint().unwrap(),
            CheckpointOutcome::Certified { .. }
        ));
        let originals: Vec<Vec<u8>> = recs
            .iter()
            .map(|r| {
                let txn = db.begin().unwrap();
                let v = txn.read_vec(*r).unwrap();
                txn.commit().unwrap();
                v
            })
            .collect();

        let geom = db.db().prot.geometry();
        let stripe = db.db().prot.parity().expect("stripe enabled");
        let group = stripe.group_of(geom.region_of(db.record_addr(recs[0]).unwrap()));
        let (first, last) = stripe.members(group);
        assert!(last > first, "group must hold two regions");
        let inj = FaultInjector::new(&db);
        for region in [first, first + 1] {
            let base = geom.region_base(region);
            let mut b = [0u8; 1];
            db.db().image.read(base, &mut b).unwrap();
            b[0] ^= 0x08;
            assert!(inj.wild_write_bytes(base, &b).unwrap().landed());
        }

        let outcome = db.repair(first).unwrap();
        assert!(
            !outcome.in_place(),
            "{scheme:?}/{kind:?}: double fault must ride the log, got {outcome:?}"
        );

        assert!(db.audit().unwrap().clean(), "{scheme:?}/{kind:?}");
        for (r, want) in recs.iter().zip(&originals) {
            let txn = db.begin().unwrap();
            assert_eq!(&txn.read_vec(*r).unwrap(), want, "{scheme:?}/{kind:?}");
            txn.commit().unwrap();
        }
    }
}

/// A scribbled-on parity stripe (through the unmaintained test hook)
/// makes the reconstruction fail its codeword verification: repair must
/// refuse to write the wrong image back and fall back to the log — the
/// self-healing layer never trades detected corruption for silent
/// corruption.
#[test]
fn stale_parity_falls_back_instead_of_writing_garbage() {
    for (scheme, kind) in CORNERS {
        let (db, _dir) = make_engine(scheme, kind, "repair-model-stale");
        let table = db.create_table("t", REC, 64).unwrap();
        let recs = run_workload(&db, table, &[(0, 0x5A), (1, 0xC3)]);
        assert!(matches!(
            db.checkpoint().unwrap(),
            CheckpointOutcome::Certified { .. }
        ));
        let txn = db.begin().unwrap();
        let original = txn.read_vec(recs[0]).unwrap();
        txn.commit().unwrap();

        let addr = db.record_addr(recs[0]).unwrap();
        let geom = db.db().prot.geometry();
        let region = geom.region_of(addr);
        let base = geom.region_base(region);
        let stripe = db.db().prot.parity().expect("stripe enabled");
        // Scribble on the group's parity buffer, bypassing maintenance:
        // the stripe now disagrees with the image it claims to cover.
        stripe.wild_xor_group(stripe.group_of(region), 0, &[0xA5, 0x5A, 0xFF]);

        let inj = FaultInjector::new(&db);
        let mut b = [0u8; 1];
        db.db().image.read(base, &mut b).unwrap();
        b[0] ^= 0x08;
        assert!(inj.wild_write_bytes(base, &b).unwrap().landed());

        let outcome = db.repair(region).unwrap();
        assert!(
            !outcome.in_place(),
            "{scheme:?}/{kind:?}: a stale stripe must never be written back, got {outcome:?}"
        );

        assert!(db.audit().unwrap().clean(), "{scheme:?}/{kind:?}");
        let txn = db.begin().unwrap();
        assert_eq!(
            txn.read_vec(recs[0]).unwrap(),
            original,
            "{scheme:?}/{kind:?}"
        );
        txn.commit().unwrap();
    }
}
