//! Model-based test of the deferred-maintenance dirty set.
//!
//! Generates arbitrary scripts of prescribed updates, partial shard
//! drains, full drains and audits, and applies each script to one shared
//! database image through three protection instances at once:
//!
//! * an **eager** `DataCodeword` protection — the trivially-correct
//!   reference: every delta hits the codeword table at `endUpdate`;
//! * a **1-shard** deferred protection (the old global-queue geometry);
//! * an **8-shard** deferred protection (the sharded dirty set, where a
//!   `DrainRegion` really is partial).
//!
//! Checked invariants, after every op:
//!
//! * an audit of a deferred protection is always clean — the audit's
//!   latch-then-drain-shard catch-up must make queued deltas invisible,
//!   no matter how updates and partial drains interleaved;
//! * the 1-shard and 8-shard instances decide every audit identically
//!   (shard geometry must never change an outcome), mirroring the
//!   lock-model suite's 1-vs-8-shard comparison;
//! * a full audit leaves both dirty sets empty;
//! * the eager reference audits clean throughout (sanity on the harness
//!   itself).
//!
//! At the end of every script, after a full drain, the three codeword
//! tables must agree region by region: deferral may *lag* the eager
//! table, never diverge from it.
//!
//! CI raises the case count via `PROPTEST_CASES`, as with the lock-model
//! suite.

use dali::codeword::{CodewordProtection, DeferredConfig};
use dali::mem::DbImage;
use dali::{DbAddr, ProtectionScheme};
use proptest::prelude::*;

/// 4 pages x 4096 bytes, 64-byte regions => 256 regions.
const PAGES: usize = 4;
const PAGE: usize = 4096;
const REGION: usize = 64;
const NREGIONS: usize = PAGES * PAGE / REGION;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Prescribed update of `len` bytes at `addr`, filled with `fill`.
    Update {
        addr: usize,
        len: usize,
        fill: u8,
    },
    /// Incremental catch-up of one region's shard (partial on 8 shards,
    /// total on 1 — exactly the asymmetry audits must absorb).
    DrainRegion(usize),
    DrainAll,
    Audit,
}

fn op() -> impl Strategy<Value = Op> {
    // Updates dominate (the arm is repeated — the vendored prop_oneof!
    // has no weights); lengths up to 100 bytes cross region boundaries
    // (region size 64) and word-widen unaligned edges.
    let span = PAGES * PAGE;
    let update = move || {
        (0..span - 100, 1..100usize, any::<u8>()).prop_map(|(addr, len, fill)| Op::Update {
            addr,
            len,
            fill,
        })
    };
    prop_oneof![
        update(),
        update(),
        update(),
        update(),
        (0..NREGIONS).prop_map(Op::DrainRegion),
        Just(Op::DrainAll),
        Just(Op::Audit),
    ]
}

struct Harness {
    image: DbImage,
    eager: CodewordProtection,
    def1: CodewordProtection,
    def8: CodewordProtection,
}

impl Harness {
    fn new() -> Harness {
        let image = DbImage::new(PAGES, PAGE).unwrap();
        let deferred = |shards| {
            CodewordProtection::with_deferred(
                &image,
                ProtectionScheme::DeferredMaintenance,
                REGION,
                1,
                // Watermark 0 = unbounded: no inline drains, so the only
                // catch-up is the script's, keeping runs deterministic.
                DeferredConfig {
                    shards,
                    watermark: 0,
                },
            )
            .unwrap()
        };
        let eager =
            CodewordProtection::new(&image, ProtectionScheme::DataCodeword, REGION, 1).unwrap();
        let (def1, def8) = (deferred(1), deferred(8));
        Harness {
            image,
            eager,
            def1,
            def8,
        }
    }

    fn each(&self) -> [&CodewordProtection; 3] {
        [&self.eager, &self.def1, &self.def8]
    }

    /// One prescribed update: capture the widened before-image once,
    /// write the image once, publish the delta through all three
    /// protections (the delta math is pure, so sharing the image is
    /// exactly "the same writes" the model requires).
    fn update(&self, addr: usize, data: &[u8]) {
        let (ws, wl) = dali::common::align::widen_to_words(addr, data.len());
        let mut old = vec![0u8; wl];
        self.image.read(DbAddr(ws), &mut old).unwrap();
        self.image.write(DbAddr(addr), data).unwrap();
        for prot in self.each() {
            prot.apply_update(&self.image, DbAddr(ws), &old).unwrap();
        }
    }

    fn run(&self, script: &[Op]) -> Result<(), String> {
        for (i, &op) in script.iter().enumerate() {
            match op {
                Op::Update { addr, len, fill } => self.update(addr, &vec![fill; len]),
                Op::DrainRegion(r) => {
                    self.def1.drain_region(r);
                    self.def8.drain_region(r);
                }
                Op::DrainAll => {
                    self.def1.drain_deferred();
                    self.def8.drain_deferred();
                }
                Op::Audit => {
                    let a1 = self.def1.audit(&self.image).map_err(|e| e.to_string())?;
                    let a8 = self.def8.audit(&self.image).map_err(|e| e.to_string())?;
                    if a1.clean() != a8.clean() {
                        return Err(format!(
                            "op {i}: shard count changed the audit outcome \
                             (1 shard clean={}, 8 shards clean={})",
                            a1.clean(),
                            a8.clean()
                        ));
                    }
                    if !a1.clean() || !a8.clean() {
                        return Err(format!(
                            "op {i}: false corruption report from a deferred audit: \
                             1 shard {a1:?}, 8 shards {a8:?}"
                        ));
                    }
                    // A full audit drains every dirty region's shard.
                    for (name, p) in [("1 shard", &self.def1), ("8 shards", &self.def8)] {
                        if p.deferred_len() != 0 || p.deferred_pending_deltas() != 0 {
                            return Err(format!(
                                "op {i}: {name} still holds {} dirty regions / {} deltas \
                                 after a full audit",
                                p.deferred_len(),
                                p.deferred_pending_deltas()
                            ));
                        }
                    }
                }
            }
            // The eager reference is maintained at every endUpdate, so it
            // must audit clean after *every* op.
            let e = self.eager.audit(&self.image).map_err(|e| e.to_string())?;
            if !e.clean() {
                return Err(format!("op {i}: eager reference audit unclean: {e:?}"));
            }
        }

        // Fully drained, the deferred tables must equal the eager one —
        // deferral lags, never diverges.
        self.def1.drain_deferred();
        self.def8.drain_deferred();
        for r in 0..NREGIONS {
            let (e, d1, d8) = (
                self.eager.table().get(r),
                self.def1.table().get(r),
                self.def8.table().get(r),
            );
            if e != d1 || e != d8 {
                return Err(format!(
                    "region {r}: drained codewords diverge (eager {e:#010x}, \
                     1 shard {d1:#010x}, 8 shards {d8:#010x})"
                ));
            }
        }
        for (name, p) in [("1 shard", &self.def1), ("8 shards", &self.def8)] {
            let rep = p.audit(&self.image).map_err(|e| e.to_string())?;
            if !rep.clean() {
                return Err(format!("final audit on {name} unclean: {rep:?}"));
            }
        }
        Ok(())
    }
}

proptest! {
    #[test]
    fn deferred_tables_match_eager_reference(
        script in proptest::collection::vec(op(), 1..24),
    ) {
        Harness::new().run(&script).map_err(TestCaseError::fail)?;
    }
}

/// Pinned scripts for the interesting corners, kept deterministic so a
/// regression reproduces without the property runner.
#[test]
fn pinned_deferred_scripts() {
    use Op::{Audit, DrainAll, DrainRegion, Update};
    let scripts: &[&[Op]] = &[
        // Audit with everything still queued: catch-up is the audit's job.
        &[
            Update {
                addr: 5,
                len: 90,
                fill: 0xab,
            },
            Update {
                addr: 700,
                len: 3,
                fill: 0x11,
            },
            Audit,
        ],
        // Partial drain, then more updates to the same region, then audit.
        &[
            Update {
                addr: 0,
                len: 8,
                fill: 1,
            },
            DrainRegion(0),
            Update {
                addr: 4,
                len: 8,
                fill: 2,
            },
            Audit,
        ],
        // Same region updated repeatedly: pure coalescing, one drain.
        &[
            Update {
                addr: 64,
                len: 4,
                fill: 3,
            },
            Update {
                addr: 68,
                len: 4,
                fill: 4,
            },
            Update {
                addr: 64,
                len: 4,
                fill: 5,
            },
            DrainAll,
            Audit,
        ],
        // Drain of an untouched region is a no-op that must not disturb
        // queued deltas for others (on 8 shards it drains a different
        // shard; on 1 shard it drains everything — audit absorbs both).
        &[
            Update {
                addr: 128,
                len: 16,
                fill: 6,
            },
            DrainRegion(200),
            Audit,
        ],
        // Unaligned cross-region update: word widening at both edges.
        &[
            Update {
                addr: 101,
                len: 70,
                fill: 7,
            },
            Audit,
            DrainAll,
            Audit,
        ],
    ];
    for (i, script) in scripts.iter().enumerate() {
        if let Err(e) = Harness::new().run(script) {
            panic!("pinned script {i}: {e}");
        }
    }
}
