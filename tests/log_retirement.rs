//! Segment retirement: bounded log retention and crash safety.
//!
//! With `log_retire` on, every checkpoint retires sealed segments that
//! both ping-pong images' `CK_end` have passed — so the log directory
//! must stay bounded across checkpoint cycles while recovery from the
//! *retained* segments alone still reproduces every committed
//! transaction. A crash between a retirement unlink and the directory
//! fsync leaves the disk with the unlink either done or undone; both
//! states must recover.
//!
//! The crash-point registry is process-global, so this test binary keeps
//! its crash-point test in a `ScopedCrashpoints` guard.

use dali_common::{DaliConfig, ProtectionScheme, RecId};
use dali_engine::DaliEngine;
use dali_faultinject::crashpoint;
use std::collections::HashMap;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-retire-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn config_for(dir: &std::path::Path) -> DaliConfig {
    // Tiny segments so a few transactions span many segments and every
    // checkpoint has something to retire.
    let mut c = DaliConfig::small(dir)
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_log_segment_bytes(1024);
    c.db_pages = 64;
    c
}

fn assert_recovers(dir: &std::path::Path, expected: &HashMap<RecId, Vec<u8>>) {
    let (db, _outcome) = DaliEngine::open(config_for(dir)).unwrap();
    let txn = db.begin().unwrap();
    for (rec, val) in expected {
        assert_eq!(&txn.read_vec(*rec).unwrap(), val, "record {rec:?}");
    }
    txn.commit().unwrap();
    assert!(db.audit().unwrap().clean());
}

/// Run `cycles` rounds of updates + checkpoint against `db`, tracking
/// the expected state.
fn run_cycles(
    db: &DaliEngine,
    recs: &[RecId],
    expected: &mut HashMap<RecId, Vec<u8>>,
    cycles: std::ops::Range<u64>,
) {
    for cycle in cycles {
        for round in 0..4u64 {
            let txn = db.begin().unwrap();
            for (i, &rec) in recs.iter().enumerate() {
                let mut v = vec![0u8; 64];
                v[0..8].copy_from_slice(&cycle.to_le_bytes());
                v[8..16].copy_from_slice(&round.to_le_bytes());
                v[16] = i as u8;
                txn.update(rec, &v).unwrap();
                expected.insert(rec, v);
            }
            txn.commit().unwrap();
        }
        db.checkpoint().unwrap();
    }
}

#[test]
fn retirement_bounds_the_log_and_retained_segments_recover_everything() {
    let dir = tmpdir("bound");
    let (db, _) = DaliEngine::create(config_for(&dir)).unwrap();
    let t = db.create_table("t", 64, 16).unwrap();
    let setup = db.begin().unwrap();
    let mut expected: HashMap<RecId, Vec<u8>> = HashMap::new();
    let mut recs = Vec::new();
    for i in 0..8usize {
        let r = setup.insert(t, &[i as u8; 64]).unwrap();
        expected.insert(r, vec![i as u8; 64]);
        recs.push(r);
    }
    setup.commit().unwrap();

    let log_dir = dir.join("system.log");
    let mut sizes = Vec::new();
    for cycle in 0..4u64 {
        run_cycles(&db, &recs, &mut expected, cycle..cycle + 1);
        sizes.push(dali::wal::segment::bytes_on_disk(&log_dir).unwrap());
    }

    // Retirement happened and the directory is bounded: the first
    // retained segment moved past the origin, the retained bytes are a
    // fraction of everything ever logged, and the last cycles' footprint
    // stopped growing (steady-state retention, not monotonic growth).
    let segments = dali::wal::segment::list(&log_dir).unwrap();
    assert!(segments.first().unwrap().base.0 > 0, "nothing was retired");
    let total_logged = db.current_lsn().unwrap().0;
    let retained = *sizes.last().unwrap();
    assert!(
        retained < total_logged / 2,
        "retained {retained} bytes of {total_logged} ever logged — retirement is not bounding the directory"
    );
    // Steady-state: cycles log equal work, so the retained footprint may
    // jitter by a segment of slack but must not keep growing.
    assert!(
        sizes[3] <= sizes[1] + 1024,
        "log directory kept growing across steady-state checkpoint cycles: {sizes:?}"
    );
    let stats = db.stats();
    assert!(
        stats
            .log_segments_retired
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    assert_eq!(
        stats
            .log_bytes_on_disk
            .load(std::sync::atomic::Ordering::Relaxed),
        retained
    );

    // More work after the last checkpoint, then crash: recovery must
    // reproduce everything from the retained segments alone.
    let txn = db.begin().unwrap();
    let v = vec![0xEE; 64];
    txn.update(recs[0], &v).unwrap();
    expected.insert(recs[0], v);
    txn.commit().unwrap();
    db.crash();
    assert_recovers(&dir, &expected);
}

#[test]
fn retirement_off_keeps_every_segment() {
    let dir = tmpdir("keep");
    let config = config_for(&dir).with_log_retire(false);
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", 64, 16).unwrap();
    let setup = db.begin().unwrap();
    let mut expected: HashMap<RecId, Vec<u8>> = HashMap::new();
    let mut recs = Vec::new();
    for i in 0..8usize {
        let r = setup.insert(t, &[i as u8; 64]).unwrap();
        expected.insert(r, vec![i as u8; 64]);
        recs.push(r);
    }
    setup.commit().unwrap();
    run_cycles(&db, &recs, &mut expected, 0..3);

    let log_dir = dir.join("system.log");
    let segments = dali::wal::segment::list(&log_dir).unwrap();
    assert_eq!(
        segments.first().unwrap().base.0,
        0,
        "with retirement off the origin segment must survive"
    );
    // Everything ever logged is still on disk (the active tail may lag
    // the in-memory LSN by an unflushed byte or two, never the reverse).
    let retained = dali::wal::segment::bytes_on_disk(&log_dir).unwrap();
    let total_logged = db.current_lsn().unwrap().0;
    assert!(retained >= total_logged - 64, "{retained} < {total_logged}");
    db.crash();
    assert_recovers(&dir, &expected);
}

#[test]
fn crash_during_retirement_recovers_in_both_unlink_states() {
    let _guard = crashpoint::ScopedCrashpoints::new();
    let dir = tmpdir("crash");
    let (db, _) = DaliEngine::create(config_for(&dir)).unwrap();
    let t = db.create_table("t", 64, 16).unwrap();
    let setup = db.begin().unwrap();
    let mut expected: HashMap<RecId, Vec<u8>> = HashMap::new();
    let mut recs = Vec::new();
    for i in 0..8usize {
        let r = setup.insert(t, &[i as u8; 64]).unwrap();
        expected.insert(r, vec![i as u8; 64]);
        recs.push(r);
    }
    setup.commit().unwrap();
    // Two full cycles so both checkpoint metas exist and sealed segments
    // sit below the retirement horizon.
    run_cycles(&db, &recs, &mut expected, 0..2);

    run_cycles(&db, &recs, &mut expected, 2..3); // work for the tripping ckpt

    // Snapshot the directory immediately before the checkpoint whose
    // retirement trips: any segment that retirement can unlink is sealed
    // and fully durable by now, so its snapshot copy is byte-complete
    // and can be restored for the "unlink was lost" post-crash state.
    let pre = tmpdir("crash-pre");
    copy_dir(&dir, &pre);
    crashpoint::arm("segment.retire.post_unlink");
    let err = db.checkpoint().unwrap_err();
    assert!(
        err.to_string().contains("crash point tripped"),
        "unexpected error: {err}"
    );
    db.crash();
    assert!(!crashpoint::is_armed("segment.retire.post_unlink"));

    // Post-crash state A: the unlink persisted.
    let persisted = tmpdir("crash-persisted");
    copy_dir(&dir, &persisted);
    assert_recovers(&persisted, &expected);

    // Post-crash state B: the unlink was lost — the segment file
    // reappears. Recovery ignores it (it is wholly below the checkpoint
    // horizon) and the next checkpoint simply retires it again.
    let reverted = tmpdir("crash-reverted");
    copy_dir(&dir, &reverted);
    let rev_log = reverted.join("system.log");
    let pre_log = pre.join("system.log");
    let mut restored = 0;
    for entry in std::fs::read_dir(&pre_log).unwrap() {
        let entry = entry.unwrap();
        let dst = rev_log.join(entry.file_name());
        if !dst.exists() {
            std::fs::copy(entry.path(), &dst).unwrap();
            restored += 1;
        }
    }
    assert!(restored > 0, "the tripping checkpoint unlinked nothing");
    assert_recovers(&reverted, &expected);

    assert!(
        !crashpoint::any_armed(),
        "no crash point may outlive the test"
    );
}
