//! Networked TPC-B integration: N concurrent client *connections*
//! hammering one server over loopback TCP must leave the database in
//! exactly the state the in-process contended driver leaves it in —
//! invariant intact, audit clean, every lock released — including under
//! forced mid-transaction disconnects.

use dali::net::{DaliClient, DaliServer, NetTpcbDriver};
use dali::{DaliConfig, DaliEngine, DaliError, ProtectionScheme, TpcbConfig, TpcbDriver};
use std::time::{Duration, Instant};

/// Engine sized for `cfg`, with sharded locks so the cross-shard unlock
/// sweep is exercised even on a single-CPU host.
fn server_engine(
    name: &str,
    cfg: &TpcbConfig,
    window: Option<Duration>,
) -> (DaliServer, dali_testutil::TempDir) {
    let dir = dali_testutil::TempDir::new(&format!("net-tpcb-{name}"));
    let mut c = DaliConfig::small(dir.path())
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_lock_shards(8);
    if let Some(w) = window {
        c = c.with_commit_window(w);
    }
    c.db_pages = cfg.required_pages(c.page_size);
    let (db, _) = DaliEngine::create(c).unwrap();
    let server = DaliServer::start(db, "127.0.0.1:0").unwrap();
    (server, dir)
}

/// Poll the server until `pred(stats)` holds or the deadline passes.
fn wait_for(addr: std::net::SocketAddr, pred: impl Fn(&dali::ServerStats) -> bool) {
    let mut client = DaliClient::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().unwrap();
        if pred(&stats) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "server never reached expected state: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn networked_contended_tpcb_preserves_invariants() {
    let mut cfg = TpcbConfig::small();
    cfg.ops_per_txn = 5;
    let (server, _dir) = server_engine("contended", &cfg, None);
    let mut driver = NetTpcbDriver::setup(server.addr(), cfg.clone()).unwrap();

    let stats = driver.run_clients(4, 400).unwrap();
    assert_eq!(stats.ops, 400);
    assert_eq!(stats.clients, 4);
    driver.verify_invariant().unwrap();

    // Same checks the in-process contended test makes, through the wire.
    let mut client = DaliClient::connect(server.addr()).unwrap();
    let history = client.table("history").unwrap();
    assert_eq!(client.record_count(history).unwrap(), 400);
    let (clean, regions) = client.audit().unwrap();
    assert!(clean, "audit found corruption after a networked run");
    assert!(regions > 0);
    // Quiesced: every lock was released.
    assert_eq!(server.engine().db().locks.locked_records(), 0);
}

#[test]
fn networked_run_matches_in_process_run() {
    // The networked driver shares the in-process driver's per-worker RNG
    // streams, so the same (seed, workers, n_ops) triple must land on the
    // same balance sums whether the operations arrive by function call or
    // by TCP frame.
    let mut cfg = TpcbConfig::small();
    cfg.ops_per_txn = 5;

    let (server, _dir) = server_engine("match-net", &cfg, None);
    let mut net = NetTpcbDriver::setup(server.addr(), cfg.clone()).unwrap();
    net.run_clients(3, 300).unwrap();
    let net_sum = net.verify_invariant().unwrap();

    let dir = dali_testutil::TempDir::new("net-tpcb-match-local");
    let mut c = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::DataCodeword);
    c.db_pages = cfg.required_pages(c.page_size);
    let (db, _) = DaliEngine::create(c).unwrap();
    let mut local = TpcbDriver::setup(&db, cfg).unwrap();
    local.run_concurrent_contended(3, 300).unwrap();
    assert_eq!(net_sum, local.verify_invariant().unwrap());
}

#[test]
fn disconnect_mid_transaction_rolls_back_and_releases_locks() {
    let cfg = TpcbConfig::small();
    let (server, _dir) = server_engine("orphan", &cfg, None);
    let driver = NetTpcbDriver::setup(server.addr(), cfg.clone()).unwrap();
    let before = driver.verify_invariant().unwrap();

    // A client locks and dirties an account, then vanishes pre-commit.
    let mut victim = DaliClient::connect(server.addr()).unwrap();
    let accounts = victim.table("account").unwrap();
    let rec = dali::RecId::new(accounts, dali::SlotId(7));
    victim.begin().unwrap();
    victim.lock_exclusive(rec).unwrap();
    let original = victim.read(rec).unwrap();
    let mut dirty = original.clone();
    dirty[..8].copy_from_slice(&u64::MAX.to_le_bytes());
    victim.update(rec, &dirty).unwrap();
    victim.drop_connection();

    wait_for(server.addr(), |s| s.orphans_rolled_back >= 1);

    // The orphan's level-by-level rollback restored the record and
    // released its exclusive lock — a fresh transaction can take it
    // immediately and sees the pre-disconnect image.
    let mut check = DaliClient::connect(server.addr()).unwrap();
    check.begin().unwrap();
    check.lock_exclusive(rec).unwrap();
    assert_eq!(check.read(rec).unwrap(), original);
    check.commit().unwrap();
    assert_eq!(server.engine().db().locks.locked_records(), 0);
    assert_eq!(driver.verify_invariant().unwrap(), before);
}

#[test]
fn forced_disconnects_during_contended_run_leave_invariants_intact() {
    let mut cfg = TpcbConfig::small();
    cfg.ops_per_txn = 5;
    let (server, _dir) = server_engine("crashy", &cfg, None);
    let mut driver = NetTpcbDriver::setup(server.addr(), cfg.clone()).unwrap();
    let addr = server.addr();

    const CRASHES: u64 = 8;
    std::thread::scope(|s| {
        // A saboteur repeatedly opens a transaction, dirties rows, and
        // drops the connection mid-flight while the real run proceeds.
        s.spawn(|| {
            for i in 0..CRASHES {
                let mut c = DaliClient::connect(addr).unwrap();
                let accounts = c.table("account").unwrap();
                let rec = dali::RecId::new(accounts, dali::SlotId((i * 13 % 100) as u32));
                c.begin().unwrap();
                // Lock conflicts with the workers are expected; only a
                // clean lock grant leads to a dirty orphan.
                match c.lock_exclusive(rec) {
                    Ok(()) => {
                        let mut data = c.read(rec).unwrap();
                        data[..8].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
                        c.update(rec, &data).unwrap();
                    }
                    Err(DaliError::LockDenied { .. }) => {}
                    Err(e) => panic!("saboteur: {e}"),
                }
                c.drop_connection();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        driver.run_clients(3, 300).unwrap();
    });

    // Every saboteur connection left an open transaction behind.
    wait_for(addr, |s| s.orphans_rolled_back >= CRASHES);
    driver.verify_invariant().unwrap();
    let mut client = DaliClient::connect(addr).unwrap();
    let (clean, _) = client.audit().unwrap();
    assert!(clean, "audit found corruption after forced disconnects");
    let history = client.table("history").unwrap();
    assert_eq!(client.record_count(history).unwrap(), 300);
    assert_eq!(server.engine().db().locks.locked_records(), 0);
}

#[test]
fn group_commit_shares_fsyncs_across_connections() {
    let mut cfg = TpcbConfig::small();
    cfg.ops_per_txn = 2; // commit-heavy: the group-commit regime
    let (server, _dir) = server_engine("group", &cfg, Some(Duration::from_millis(2)));
    let mut driver = NetTpcbDriver::setup(server.addr(), cfg.clone()).unwrap();

    let mut client = DaliClient::connect(server.addr()).unwrap();
    let base = client.stats().unwrap();
    driver.run_clients(4, 160).unwrap();
    let stats = client.stats().unwrap();

    let durable = stats.durable_commits - base.durable_commits;
    let fsyncs = stats.fsyncs - base.fsyncs;
    assert!(
        durable >= 80,
        "expected >= 80 durable commits, got {durable}"
    );
    // The whole point: multiple durable commits per fsync. With four
    // connections committing into a 2 ms window, batches of >= 2 are the
    // steady state; requiring strictly fewer fsyncs than commits keeps
    // the assertion robust on slow machines while still failing if group
    // commit ever degrades to fsync-per-commit.
    assert!(
        fsyncs < durable,
        "group commit degraded to fsync-per-commit: {fsyncs} fsyncs for {durable} commits"
    );
    let shared =
        (stats.piggybacked - base.piggybacked) + (stats.group_followers - base.group_followers);
    assert!(shared > 0, "no commit ever shared another's fsync");
    driver.verify_invariant().unwrap();
}

#[test]
fn session_protocol_misuse_is_rejected_structurally() {
    let cfg = TpcbConfig::small();
    let (server, _dir) = server_engine("misuse", &cfg, None);
    let mut c = DaliClient::connect(server.addr()).unwrap();
    c.create_table("t", 8, 64).unwrap();
    let t = c.table("t").unwrap();

    // Data verb without a transaction.
    assert!(matches!(
        c.insert(t, &[0u8; 8]),
        Err(DaliError::InvalidArg(ref s)) if s.contains("no transaction")
    ));
    // Commit without a transaction.
    assert!(matches!(
        c.commit(),
        Err(DaliError::InvalidArg(ref s)) if s.contains("no transaction")
    ));
    // Double begin.
    c.begin().unwrap();
    assert!(matches!(
        c.begin(),
        Err(DaliError::InvalidArg(ref s)) if s.contains("already open")
    ));
    // The session survives all of that and keeps working.
    let rec = c.insert(t, &[7u8; 8]).unwrap();
    c.commit().unwrap();
    c.begin().unwrap();
    assert_eq!(c.read(rec).unwrap(), vec![7u8; 8]);
    c.commit().unwrap();

    // Unknown table is a structured NotFound, not a dropped connection.
    assert!(matches!(c.table("absent"), Err(DaliError::NotFound(_))));
    c.ping().unwrap();
}
