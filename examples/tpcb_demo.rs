//! TPC-B demo: the paper's workload (§5.2) at 1% scale, run under two
//! schemes, with the consistency invariant checked and throughput
//! compared.
//!
//! Run with: `cargo run --release --example tpcb_demo [ops]`

use dali::{DaliConfig, DaliEngine, ProtectionScheme, TpcbConfig, TpcbDriver};

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("ops must be a number"))
        .unwrap_or(5_000);

    println!("TPC-B style workload, {ops} operations per scheme\n");
    let mut baseline = None;
    for scheme in [
        ProtectionScheme::Baseline,
        ProtectionScheme::DataCodeword,
        ProtectionScheme::ReadPrecheck,
        ProtectionScheme::ReadLogging,
        ProtectionScheme::CwReadLogging,
        ProtectionScheme::MemoryProtection,
    ] {
        let dir = std::env::temp_dir().join(format!("dali-example-tpcb-{scheme:?}"));
        let _ = std::fs::remove_dir_all(&dir);
        let wl = TpcbConfig::small();
        let mut config = DaliConfig::small(&dir).with_scheme(scheme);
        config.db_pages = wl.required_pages(config.page_size);
        let (db, _) = DaliEngine::create(config).expect("create");
        let mut driver = TpcbDriver::setup(&db, wl).expect("setup");

        let stats = driver.run_ops(ops).expect("run");
        let sum = driver.verify_invariant().expect("invariant");
        let rate = stats.ops_per_sec();
        let base = *baseline.get_or_insert(rate);
        println!(
            "{:<22} {:>10.0} ops/s  ({:>5.1}% slower)   invariant sum {}",
            format!("{scheme:?}"),
            rate,
            (1.0 - rate / base) * 100.0,
            sum
        );
    }
    println!(
        "\nThe ordering should match Table 2 of the paper: detection (Data CW)\n\
         is cheap, read logging moderate, mprotect expensive."
    );
}
