//! Background auditing (paper §3.2: "the process of auditing is nothing
//! more than an asynchronous check of consistency between the contents of
//! a protection region and the codeword for that region").
//!
//! A writer thread runs TPC-B operations while an auditor thread sweeps
//! the database; a fault-injector thread eventually fires a wild write
//! and the audit catches it mid-workload.
//!
//! Run with: `cargo run --release --example audit_daemon`

use dali::{DaliConfig, DaliEngine, FaultInjector, ProtectionScheme, TpcbConfig, TpcbDriver};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let dir = std::env::temp_dir().join("dali-example-audit-daemon");
    let _ = std::fs::remove_dir_all(&dir);
    let wl = TpcbConfig::small();
    let mut config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::DataCodeword);
    config.db_pages = wl.required_pages(config.page_size);
    let (db, _) = DaliEngine::create(config).expect("create");
    let mut driver = TpcbDriver::setup(&db, wl).expect("setup");
    println!("database populated; starting writer + audit daemon");

    let stop = Arc::new(AtomicBool::new(false));

    // Audit daemon: sweep until corruption is found.
    let auditor = {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sweeps = 0u32;
            loop {
                match db.audit() {
                    Ok(report) if report.clean() => {
                        sweeps += 1;
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Ok(report) => {
                        println!(
                            "[auditor] sweep {} detected {} corrupt region(s) at {}",
                            sweeps + 1,
                            report.corrupt.len(),
                            report.corrupt[0].addr
                        );
                        stop.store(true, Ordering::Release);
                        return (sweeps + 1, report);
                    }
                    Err(_) => {
                        stop.store(true, Ordering::Release);
                        panic!("audit failed unexpectedly");
                    }
                }
            }
        })
    };

    // Fault injector: strike after a short delay.
    let injector = {
        let db = db.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let inj = FaultInjector::new(&db);
            // Aim at the middle of the account table's data area.
            let image = db.raw_image();
            let addr = dali::DbAddr(image.len() / 2);
            inj.wild_write(addr, 0xBE, 6).expect("inject");
            println!("[injector] wild write fired at {addr}");
        })
    };

    // Writer: keep the database busy until the audit fires.
    let mut ops = 0usize;
    while !stop.load(Ordering::Acquire) {
        match db.begin() {
            Ok(txn) => {
                for _ in 0..10 {
                    if driver.run_op(&txn).is_err() {
                        break;
                    }
                }
                if txn.commit().is_err() {
                    break;
                }
                ops += 10;
            }
            Err(_) => break, // engine poisoned by the failed audit
        }
    }

    injector.join().unwrap();
    let (sweeps, report) = auditor.join().unwrap();
    println!(
        "[writer] completed ~{ops} operations concurrently with {} clean audit sweep(s)",
        sweeps - 1
    );
    println!(
        "corruption was confined to {} region(s) of {} bytes each; \
         the engine is now down pending recovery",
        report.corrupt.len(),
        report.corrupt[0].len
    );
}
