//! Quickstart: create a protected database, run transactions, detect a
//! wild write, and recover.
//!
//! Run with: `cargo run --example quickstart`

use dali::{DaliConfig, DaliEngine, FaultInjector, ProtectionScheme, RecoveryMode};

fn main() {
    let dir = std::env::temp_dir().join("dali-example-quickstart");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Create a database with the ReadLogging scheme: codewords detect
    //    direct corruption, read logging lets recovery trace who was
    //    affected.
    let config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::ReadLogging);
    let (db, _) = DaliEngine::create(config.clone()).expect("create");
    println!(
        "created database under {:?} (scheme: ReadLogging, {:.2}% codeword space overhead)",
        dir,
        db.codeword_space_overhead() * 100.0
    );

    // 2. Normal transactional work through the prescribed interface.
    let inventory = db.create_table("inventory", 64, 1024).expect("ddl");
    let txn = db.begin().expect("begin");
    let mut widget = [0u8; 64];
    widget[..6].copy_from_slice(b"widget");
    widget[8] = 12; // quantity
    let rec = txn.insert(inventory, &widget).expect("insert");
    txn.commit().expect("commit");
    println!("inserted record {rec}");

    // Audits certify the database clean.
    assert!(db.audit().expect("audit").clean());
    println!("audit: clean");

    // 3. Disaster: buggy application code scribbles on database memory,
    //    bypassing beginUpdate/endUpdate (so no codeword is maintained).
    let injector = FaultInjector::new(&db);
    let addr = db.record_addr(rec).expect("addr");
    injector.wild_write(addr, 0xEE, 8).expect("inject");
    println!("injected a wild write at {addr}");

    // 4. The next audit notices: the region's codeword no longer matches.
    let report = db.audit().expect("audit runs");
    assert!(!report.clean());
    println!(
        "audit: corruption detected in {} region(s); database brought down for recovery",
        report.corrupt.len()
    );

    // 5. Reopen: corruption recovery rebuilds a clean image from the
    //    certified checkpoint and the log, deleting any transaction that
    //    read the corrupt data (here: none read it after the write).
    let (db, outcome) = DaliEngine::open(config).expect("recover");
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    println!(
        "recovered (mode {:?}); deleted transactions: {:?}",
        outcome.mode, outcome.deleted_txns
    );

    let txn = db.begin().expect("begin");
    let restored = txn.read_vec(rec).expect("read");
    assert_eq!(&restored[..6], b"widget");
    assert_eq!(restored[8], 12);
    txn.commit().expect("commit");
    println!("record {rec} restored: {:?}...", &restored[..9]);
}
