//! Delete-transaction corruption recovery walkthrough (paper §4.3).
//!
//! A bank database runs normally; a wild write corrupts an account; two
//! transactions *carry* the corruption onward before an audit notices.
//! Recovery deletes exactly the affected transactions from history and
//! reports their ids for manual compensation.
//!
//! Run with: `cargo run --example corruption_recovery`

use dali::workload::records::{balance_of, encode_account};
use dali::{DaliConfig, DaliEngine, FaultInjector, ProtectionScheme, RecoveryMode};

fn main() {
    let dir = std::env::temp_dir().join("dali-example-corruption");
    let _ = std::fs::remove_dir_all(&dir);
    let config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::ReadLogging);
    let (db, _) = DaliEngine::create(config.clone()).expect("create");

    // A tiny bank: three accounts with known balances.
    let accounts = db.create_table("accounts", 100, 64).expect("ddl");
    let txn = db.begin().expect("begin");
    let alice = txn.insert(accounts, &encode_account(1, 1_000)).unwrap();
    let bob = txn.insert(accounts, &encode_account(2, 2_000)).unwrap();
    let carol = txn.insert(accounts, &encode_account(3, 3_000)).unwrap();
    txn.commit().expect("commit");
    db.checkpoint().expect("checkpoint");
    assert!(db.audit().unwrap().clean());
    println!("bank open: alice=1000, bob=2000, carol=3000");

    // T1 is a legitimate transfer, committed before the trouble starts.
    let t1 = db.begin().unwrap();
    t1.update(alice, &encode_account(1, 900)).unwrap();
    t1.update(bob, &encode_account(2, 2_100)).unwrap();
    let t1_id = t1.id();
    t1.commit().unwrap();
    println!("T{} transfers 100 alice -> bob (legitimate)", t1_id.0);

    // A periodic audit runs clean after T1. Recovery conservatively
    // assumes corruption began right after the last clean audit
    // (Audit_SN, §4.3), so this audit is what keeps T1 out of the blast
    // radius.
    assert!(db.audit().unwrap().clean());
    println!("periodic audit: clean (Audit_SN now past T1)");

    // Disaster: a stray write flips bits in alice's balance field.
    let inj = FaultInjector::new(&db);
    let addr = db.record_addr(alice).unwrap();
    inj.wild_write(addr.add(8), 0xFF, 4).expect("inject");
    println!("!! wild write corrupts alice's balance in memory");

    // T2 computes interest from the corrupt balance and writes it to bob:
    // transaction-carried corruption.
    let t2 = db.begin().unwrap();
    let t2_id = t2.id();
    let a = t2.read_vec(alice).unwrap();
    let poisoned_interest = balance_of(&a) / 100;
    let b = t2.read_vec(bob).unwrap();
    t2.update(bob, &encode_account(2, balance_of(&b) + poisoned_interest))
        .unwrap();
    t2.commit().unwrap();
    println!(
        "T{} reads corrupt balance ({}) and credits bogus interest to bob",
        t2_id.0,
        balance_of(&a)
    );

    // T3 copies bob's (now indirectly corrupted) balance to carol.
    let t3 = db.begin().unwrap();
    let t3_id = t3.id();
    let b = t3.read_vec(bob).unwrap();
    t3.update(carol, &encode_account(3, balance_of(&b)))
        .unwrap();
    t3.commit().unwrap();
    println!(
        "T{} copies bob's balance onto carol (second carrier)",
        t3_id.0
    );

    // The periodic audit finally notices the codeword mismatch.
    let report = db.audit().expect("audit");
    assert!(!report.clean());
    println!(
        "audit: {} corrupt region(s) found; forcing restart",
        report.corrupt.len()
    );

    // Delete-transaction recovery: T2 and T3 vanish from history; T1 and
    // the direct corruption are handled for free.
    let (db, outcome) = DaliEngine::open(config).expect("recover");
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    println!(
        "recovery complete; transactions deleted from history: {:?}",
        outcome.deleted_txns.iter().map(|t| t.0).collect::<Vec<_>>()
    );
    assert!(outcome.deleted_txns.contains(&t2_id));
    assert!(outcome.deleted_txns.contains(&t3_id));
    assert!(!outcome.deleted_txns.contains(&t1_id));

    let txn = db.begin().unwrap();
    let a = balance_of(&txn.read_vec(alice).unwrap());
    let b = balance_of(&txn.read_vec(bob).unwrap());
    let c = balance_of(&txn.read_vec(carol).unwrap());
    txn.commit().unwrap();
    println!("after recovery: alice={a}, bob={b}, carol={c}");
    assert_eq!((a, b, c), (900, 2_100, 3_000), "T1 kept, T2/T3 erased");
    println!("T1's legitimate transfer survived; the carriers' effects are gone.");
    println!("(the bank now compensates T2/T3 out of band, as §4.1 prescribes)");
}
