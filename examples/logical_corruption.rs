//! Logical corruption: tracing and the two blunt/precise recovery tools
//! (paper §4.1 and §7).
//!
//! Physical corruption has codewords; *logical* corruption — a fat-finger
//! update through the perfectly legitimate interface — has nothing to
//! detect it. The paper's closing argument is that read logging still
//! helps: once a human identifies the bad transaction, the log yields the
//! taint closure, and the operator can choose between
//!
//! * **prior-state recovery**: wind the whole database back to before the
//!   incident (losing every later transaction), or
//! * targeted, manual compensation of exactly the traced transactions.
//!
//! Run with: `cargo run --example logical_corruption`

use dali::workload::records::{balance_of, encode_account};
use dali::{DaliConfig, DaliEngine, ProtectionScheme, RecoveryMode};

fn main() {
    let dir = std::env::temp_dir().join("dali-example-logical");
    let _ = std::fs::remove_dir_all(&dir);
    let config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::ReadLogging);
    let (db, _) = DaliEngine::create(config.clone()).expect("create");

    let accounts = db.create_table("accounts", 100, 64).expect("ddl");
    let txn = db.begin().unwrap();
    let alice = txn.insert(accounts, &encode_account(1, 1_000)).unwrap();
    let bob = txn.insert(accounts, &encode_account(2, 2_000)).unwrap();
    let carol = txn.insert(accounts, &encode_account(3, 3_000)).unwrap();
    txn.commit().unwrap();
    println!("bank open: alice=1000, bob=2000, carol=3000");

    // Capture a recovery point before the incident (e.g. nightly).
    let safe_point = db.current_lsn().unwrap();

    // The incident: a clerk fat-fingers alice's balance — a perfectly
    // legal update. No codeword, no audit, nothing will ever flag it.
    let fat_finger = db.begin().unwrap();
    let fat_finger_id = fat_finger.id();
    fat_finger
        .update(alice, &encode_account(1, 1_000_000))
        .unwrap();
    fat_finger.commit().unwrap();
    println!(
        "T{} fat-fingers alice's balance to 1,000,000 (legal interface, undetectable)",
        fat_finger_id.0
    );

    // Business continues: interest computed FROM the wrong balance lands
    // on bob; an unrelated transfer runs between bob... no, carol->carol.
    let t2 = db.begin().unwrap();
    let t2_id = t2.id();
    let a = t2.read_vec(alice).unwrap();
    let b = t2.read_vec(bob).unwrap();
    t2.update(
        bob,
        &encode_account(2, balance_of(&b) + balance_of(&a) / 100),
    )
    .unwrap();
    t2.commit().unwrap();

    let t3 = db.begin().unwrap();
    let t3_id = t3.id();
    let c = t3.read_vec(carol).unwrap();
    t3.update(carol, &encode_account(3, balance_of(&c) - 50))
        .unwrap();
    t3.commit().unwrap();
    println!(
        "T{} credits interest from the bad balance to bob; T{} is unrelated",
        t2_id.0, t3_id.0
    );

    // Audits see nothing wrong (codewords were maintained throughout).
    assert!(db.audit().unwrap().clean());
    println!("audit: clean — logical corruption is invisible to codewords");

    // A human notices alice's statement. Trace the taint closure.
    let report = db.trace_logical_corruption(&[fat_finger_id]).unwrap();
    println!(
        "taint trace from T{}: affected transactions {:?}, {} tainted byte-range(s)",
        fat_finger_id.0,
        report.tainted_txns.iter().map(|t| t.0).collect::<Vec<_>>(),
        report.tainted_data.len()
    );
    assert!(report.contains(t2_id), "interest txn is in the closure");
    assert!(!report.contains(t3_id), "unrelated txn is not");

    // Option A (blunt): prior-state recovery to the safe point. Everything
    // after it — including innocent T3 — is lost; the paper notes the user
    // must then compensate for ALL later transactions, which is why the
    // delete-transaction model exists for the physical case.
    db.crash();
    let (db, outcome) = DaliEngine::open_prior_state(config, safe_point).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::PriorState);
    let txn = db.begin().unwrap();
    let a = balance_of(&txn.read_vec(alice).unwrap());
    let b = balance_of(&txn.read_vec(bob).unwrap());
    let c = balance_of(&txn.read_vec(carol).unwrap());
    txn.commit().unwrap();
    println!("prior-state recovery: alice={a}, bob={b}, carol={c}");
    assert_eq!((a, b, c), (1_000, 2_000, 3_000));
    println!(
        "the incident is gone — and so is T{}'s innocent withdrawal, which\n\
         the trace report (option B) would have let the operator keep.",
        t3_id.0
    );
}
