//! Adversarial corruption campaigns: structured fault patterns against
//! the three places database bytes live — the in-memory arena, the
//! certified checkpoint image file, and the write-ahead log — with
//! per-algebra detection verdicts.
//!
//! The patterns are chosen to straddle the algebras' detection
//! boundaries:
//!
//! * **single flip** — any one-bit change moves both the XOR parity and
//!   the mod-(2^32-1) residue: both algebras detect it.
//! * **paired same-column flip** — two flips of the same bit column in
//!   two words, in the *same direction* (both 0→1 or both 1→0). The XOR
//!   parity cancels exactly; the residue moves by ±2·2^k (with 2^32 ≡ 1
//!   end-around for the sign column), so only the residue algebra
//!   detects it. This is the class the residue code exists for.
//! * **three flips** — odd column count: XOR detects; the residue moves
//!   by an odd multiple of 2^k, nonzero mod 2^32-1: detected by both.
//! * **burst** — a run of non-periodic noise bytes: detected by both.
//! * **torn page** — the tail half of the window zeroed, as a torn
//!   write leaves it. The residue always detects it (a nonzero tail has
//!   a nonzero sum); XOR detects it only when the zeroed words' XOR fold
//!   is nonzero — a *pure byte ramp's* power-of-two tail XOR-cancels
//!   (sixteen consecutive ramp words fold to zero), as does any
//!   even-count repeated-word tail. [`campaign_payload`] perturbs its
//!   ramp so the torn tail sits on the detected side for both algebras.
//!
//! Campaign drivers corrupt, take the verdict, and *repair* (write the
//! original bytes back), so one engine can host a whole campaign
//! matrix. Arena verdicts come from [`CodewordProtection::audit`]
//! directly — the engine-level `audit()` would poison the engine on the
//! first hit; checkpoint-image verdicts from
//! [`dali_engine::ckpt::scrub_anchored_image`]; WAL verdicts from
//! re-scanning the stable log and comparing against the pre-corruption
//! scan (the WAL frame checksum follows the configured codeword algebra
//! — see [`wal_expected_verdict`] for the per-algebra paired-flip line).
//! The *repair leg* ([`run_repair_round`] / [`run_repair_matrix`]) goes
//! one step further: instead of writing the original bytes back, it lets
//! the engine's parity-based online repair reconstruct them, and
//! classifies each round as repaired-in-place, recovered-via-log, or
//! missed ([`RepairVerdict`]).
//!
//! [`CodewordProtection::audit`]: dali_codeword::CodewordProtection::audit

use crate::{FaultInjector, InjectionEffect};
use dali_common::{CodewordAlgebraKind, DbAddr, Lsn, Result};
use dali_engine::db::Db;
use dali_engine::DaliEngine;

/// A structured corruption pattern applied to a small byte window.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CorruptionPattern {
    /// Flip one bit.
    SingleFlip,
    /// Flip the same bit column, same direction, in two words 4 bytes
    /// apart — the XOR parity blind spot.
    PairedSameColumn,
    /// Flip the same bit column in three words — odd parity again.
    ThreeFlip,
    /// Overwrite the window with a non-periodic noise run.
    Burst,
    /// Zero the tail half of the window (a torn write).
    TornPage,
}

impl CorruptionPattern {
    /// Every pattern, for matrix sweeps.
    pub const ALL: [CorruptionPattern; 5] = [
        CorruptionPattern::SingleFlip,
        CorruptionPattern::PairedSameColumn,
        CorruptionPattern::ThreeFlip,
        CorruptionPattern::Burst,
        CorruptionPattern::TornPage,
    ];

    /// Produce the corrupted image of `window`, or `None` if the pattern
    /// cannot land here (window too small, or — for the paired flip — no
    /// bit column holds equal values in any adjacent word pair, so a
    /// same-direction pair does not exist).
    pub fn apply(self, window: &[u8]) -> Option<Vec<u8>> {
        let mut out = window.to_vec();
        match self {
            CorruptionPattern::SingleFlip => {
                *out.first_mut()? ^= 0x08;
            }
            CorruptionPattern::PairedSameColumn => {
                let (i, bit) = find_same_direction_pair(window)?;
                out[i + (bit / 8) as usize] ^= 1 << (bit % 8);
                out[i + 4 + (bit / 8) as usize] ^= 1 << (bit % 8);
            }
            CorruptionPattern::ThreeFlip => {
                if out.len() < 12 {
                    return None;
                }
                for w in 0..3 {
                    out[w * 4] ^= 0x08;
                }
            }
            CorruptionPattern::Burst => {
                for (i, b) in out.iter_mut().enumerate() {
                    *b ^= (i as u8)
                        .wrapping_mul(0x9D)
                        .wrapping_add(0xE1 ^ (i as u8 >> 3))
                        | 1;
                }
            }
            CorruptionPattern::TornPage => {
                let mid = out.len() / 2;
                if out[mid..].iter().all(|&b| b == 0) {
                    return None; // the torn tail would be a no-op
                }
                out[mid..].fill(0);
            }
        }
        (out != window).then_some(out)
    }
}

/// Record contents that let every [`CorruptionPattern`] land *and* sit
/// on the documented side of [`algebra_expected_detected`]: a byte ramp
/// (adjacent words share bit columns for the paired flip; the torn tail
/// is nonzero) with the final byte perturbed, because a *pure* ramp's
/// power-of-two torn tail XOR-cancels — sixteen consecutive ramp words
/// fold to zero — which would put the torn page inside the XOR blind
/// spot as well (that cancellation is itself pinned in
/// `tests/parity_blind_spot.rs`).
pub fn campaign_payload(len: usize) -> Vec<u8> {
    let mut p: Vec<u8> = (0..len).map(|i| i as u8).collect();
    if let Some(last) = p.last_mut() {
        *last ^= 0xAB;
    }
    p
}

/// Find `(byte_offset, bit)` such that words at `byte_offset` and
/// `byte_offset + 4` hold the *same* value in `bit`'s column — flipping
/// both is then a same-direction pair. Word pairs `w1 = !w0` have no
/// such column; scan forward until one does.
fn find_same_direction_pair(window: &[u8]) -> Option<(usize, u32)> {
    for i in (0..window.len().saturating_sub(7)).step_by(4) {
        let w0 = u32::from_le_bytes(window[i..i + 4].try_into().unwrap());
        let w1 = u32::from_le_bytes(window[i + 4..i + 8].try_into().unwrap());
        let equal = !(w0 ^ w1); // 1-bits where the columns agree
        if equal != 0 {
            return Some((i, equal.trailing_zeros()));
        }
    }
    None
}

/// Which byte store a campaign corrupted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CampaignTarget {
    /// The live in-memory data arena.
    Arena,
    /// The anchored (certified) checkpoint image file on disk.
    CheckpointImage,
    /// The stable write-ahead log file on disk.
    WalFrame,
}

/// Outcome of one corruption + verdict round.
#[derive(Clone, Debug)]
pub struct CampaignVerdict {
    pub target: CampaignTarget,
    pub pattern: CorruptionPattern,
    pub algebra: CodewordAlgebraKind,
    /// The corruption changed at least one byte.
    pub landed: bool,
    /// The detection machinery for `target` flagged it.
    pub detected: bool,
}

/// Must `algebra` detect `pattern` on a codeword-protected target
/// (arena or checkpoint image)? This is the ground truth the campaign
/// tests assert against: `PairedSameColumn` is exactly the XOR blind
/// spot; everything else moves both folds — *given*
/// [`campaign_payload`]-style contents (a torn page over contents whose
/// zeroed tail XOR-cancels would be a second XOR miss).
pub fn algebra_expected_detected(algebra: CodewordAlgebraKind, pattern: CorruptionPattern) -> bool {
    match pattern {
        CorruptionPattern::PairedSameColumn => algebra == CodewordAlgebraKind::Residue,
        _ => true,
    }
}

/// What the WAL frame checksum — which now follows the configured
/// codeword algebra — does with `pattern` inside one frame's payload:
/// `Some(true)` = the scan must reject the frame, `Some(false)` = the
/// pattern cancels in the checksum and the corruption is a documented
/// residual exposure, `None` = depends on where the bytes land
/// (structural vs payload). The paired same-direction flip cancels only
/// in the XOR checksum; residue-framed logs catch it — the same blind
/// spot / coverage split as the data image's algebras.
pub fn wal_expected_verdict(
    algebra: CodewordAlgebraKind,
    pattern: CorruptionPattern,
) -> Option<bool> {
    match pattern {
        CorruptionPattern::PairedSameColumn => Some(algebra == CodewordAlgebraKind::Residue),
        CorruptionPattern::SingleFlip | CorruptionPattern::ThreeFlip => Some(true),
        _ => None,
    }
}

/// Corrupt `window_len` bytes of the live arena at `addr` with
/// `pattern`, audit, repair, and report. Returns `None` if the pattern
/// cannot land on the current contents.
///
/// The audit runs against [`Db::prot`] directly rather than
/// [`DaliEngine::audit`]: the engine call records a corruption marker
/// and poisons the engine on the first failed audit, which would end the
/// campaign after one round.
pub fn run_arena_round(
    db: &DaliEngine,
    inj: &FaultInjector,
    pattern: CorruptionPattern,
    addr: DbAddr,
    window_len: usize,
) -> Result<Option<CampaignVerdict>> {
    let inner: &Db = db.db();
    let mut original = vec![0u8; window_len];
    inner.image.read(addr, &mut original)?;
    let Some(corrupt) = pattern.apply(&original) else {
        return Ok(None);
    };
    let effect = inj.wild_write_bytes(addr, &corrupt)?;
    if matches!(effect, InjectionEffect::Trapped { .. }) {
        return Ok(Some(CampaignVerdict {
            target: CampaignTarget::Arena,
            pattern,
            algebra: inner.prot.kind(),
            landed: false,
            detected: true, // the mprotect trap *is* the detection
        }));
    }
    let report = inner.prot.audit(&inner.image)?;
    // Repair: the wild write maintained no codeword, so restoring the
    // original bytes restores image/codeword consistency exactly.
    inner.image.write(addr, &original)?;
    Ok(Some(CampaignVerdict {
        target: CampaignTarget::Arena,
        pattern,
        algebra: inner.prot.kind(),
        landed: effect.landed(),
        detected: !report.clean(),
    }))
}

/// Corrupt `window_len` bytes of the anchored checkpoint image *file*
/// at byte `offset` with `pattern`, scrub the file against the live
/// codeword table, repair the file, and report. Returns `None` if the
/// pattern cannot land on the current contents.
///
/// The caller must hold updates still between the certifying checkpoint
/// and this call (tests simply don't run transactions in that window):
/// the scrub compares the image file against the *live* table.
pub fn run_ckpt_image_round(
    db: &DaliEngine,
    pattern: CorruptionPattern,
    offset: usize,
    window_len: usize,
) -> Result<Option<CampaignVerdict>> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let inner: &Db = db.db();
    let dir = inner.config.dir.clone();
    let (image_idx, _) = dali_engine::ckpt::read_anchor(&dir)?;
    let path = Db::img_path(&dir, image_idx);

    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)?;
    let mut original = vec![0u8; window_len];
    f.seek(SeekFrom::Start(offset as u64))?;
    f.read_exact(&mut original)?;
    let Some(corrupt) = pattern.apply(&original) else {
        return Ok(None);
    };
    f.seek(SeekFrom::Start(offset as u64))?;
    f.write_all(&corrupt)?;
    f.sync_data()?;

    let report = dali_engine::ckpt::scrub_anchored_image(inner_arc(db))?;

    f.seek(SeekFrom::Start(offset as u64))?;
    f.write_all(&original)?;
    f.sync_data()?;

    Ok(Some(CampaignVerdict {
        target: CampaignTarget::CheckpointImage,
        pattern,
        algebra: inner.prot.kind(),
        landed: true,
        detected: !report.clean(),
    }))
}

fn inner_arc(db: &DaliEngine) -> &std::sync::Arc<Db> {
    db.db()
}

/// What re-scanning the stable log after a corruption showed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalScanOutcome {
    /// The scan errored or returned fewer records: the frame checksum
    /// (or framing) rejected the corruption.
    Rejected,
    /// The scan succeeded and returned a *different* record sequence:
    /// the corruption slid under the XOR frame checksum.
    SilentlyAltered,
    /// The scan returned the identical sequence: the corrupted bytes
    /// were not part of any stable frame (slack space).
    Unaffected,
}

/// Corrupt `window_len` bytes of the stable log file at byte `offset`
/// with `pattern`, re-scan, repair the file, and classify. Returns
/// `None` if the pattern cannot land on the current contents.
///
/// The WAL's per-frame checksum follows the configured codeword algebra,
/// so [`CorruptionPattern::PairedSameColumn`] landing inside one frame's
/// checksummed span is a *documented residual exposure* only under the
/// XOR algebra — residue-framed logs reject the altered frame. Campaign
/// tests pin both sides of that line via [`wal_expected_verdict`].
pub fn run_wal_round(
    db: &DaliEngine,
    pattern: CorruptionPattern,
    offset: usize,
    window_len: usize,
) -> Result<Option<WalScanOutcome>> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let inner: &Db = db.db();
    let kind = inner.config.codeword_algebra;
    inner.syslog.flush(false)?;
    let path = Db::log_path(&inner.config.dir);
    let baseline = dali_wal::SystemLog::scan_stable_with(&path, Lsn(0), kind)?;

    // `offset` is a global log position; map it into the containing
    // segment file and clamp the window at the segment's end.
    let seg = dali_wal::segment::locate(&path, Lsn(offset as u64))?;
    let local = offset as u64 - seg.base.0;
    let window = window_len.min(seg.len.saturating_sub(local) as usize);
    if window == 0 {
        return Ok(None);
    }
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(dali_wal::segment::path(&path, seg.base))?;
    let mut original = vec![0u8; window];
    f.seek(SeekFrom::Start(local))?;
    f.read_exact(&mut original)?;
    let Some(corrupt) = pattern.apply(&original) else {
        return Ok(None);
    };
    f.seek(SeekFrom::Start(local))?;
    f.write_all(&corrupt)?;
    f.sync_data()?;

    let outcome = match dali_wal::SystemLog::scan_stable_with(&path, Lsn(0), kind) {
        Err(_) => WalScanOutcome::Rejected,
        Ok(scanned) if scanned.len() < baseline.len() => WalScanOutcome::Rejected,
        Ok(scanned) => {
            let same = scanned.len() == baseline.len()
                && scanned
                    .iter()
                    .zip(baseline.iter())
                    .all(|((la, ra), (lb, rb))| la == lb && format!("{ra:?}") == format!("{rb:?}"));
            if same {
                WalScanOutcome::Unaffected
            } else {
                WalScanOutcome::SilentlyAltered
            }
        }
    };

    f.seek(SeekFrom::Start(local))?;
    f.write_all(&original)?;
    f.sync_data()?;
    Ok(Some(outcome))
}

/// How a detected corruption was (or wasn't) healed by the self-healing
/// layer — the repair leg of a campaign.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RepairVerdict {
    /// The audit flagged it and the parity stripe rebuilt the damaged
    /// regions in place; the post-repair audit came back clean.
    RepairedInPlace,
    /// The audit flagged it but the stripe could not certify the group
    /// (double fault, stale parity); online log-based cache recovery
    /// restored the bytes instead.
    RecoveredViaLog,
    /// The corruption slid under the configured algebra's audit — the
    /// repair layer never saw it (the round restores the original bytes
    /// so the campaign can continue).
    Missed,
}

/// One repair-leg round: pattern, algebra, and how the damage was healed.
#[derive(Clone, Debug)]
pub struct RepairRound {
    pub pattern: CorruptionPattern,
    pub algebra: CodewordAlgebraKind,
    pub verdict: RepairVerdict,
    /// Bytes the repair path rebuilt (0 when missed).
    pub bytes_rebuilt: usize,
    /// The image matches its pre-corruption contents after the round.
    pub image_restored: bool,
}

/// Corrupt `window_len` arena bytes at `addr` with `pattern`, audit, and
/// let the engine's online repair heal whatever the audit flagged.
/// Returns `None` if the pattern cannot land (or the write trapped).
///
/// Unlike [`run_arena_round`], the round does *not* write the original
/// bytes back when the audit detects the damage — the parity stripe (or
/// the log-based fallback) must reconstruct them, and `image_restored`
/// reports whether it did, byte for byte.
pub fn run_repair_round(
    db: &DaliEngine,
    inj: &FaultInjector,
    pattern: CorruptionPattern,
    addr: DbAddr,
    window_len: usize,
) -> Result<Option<RepairRound>> {
    let inner = inner_arc(db);
    let mut original = vec![0u8; window_len];
    inner.image.read(addr, &mut original)?;
    let Some(corrupt) = pattern.apply(&original) else {
        return Ok(None);
    };
    let effect = inj.wild_write_bytes(addr, &corrupt)?;
    if matches!(effect, InjectionEffect::Trapped { .. }) {
        return Ok(None);
    }
    let report = inner.prot.audit(&inner.image)?;
    if report.clean() {
        // Undetected: restore by hand so later rounds start clean.
        inner.image.write(addr, &original)?;
        return Ok(Some(RepairRound {
            pattern,
            algebra: inner.prot.kind(),
            verdict: RepairVerdict::Missed,
            bytes_rebuilt: 0,
            image_restored: true,
        }));
    }
    let mut regions: Vec<_> = report.corrupt.iter().map(|c| c.region).collect();
    regions.sort_unstable();
    regions.dedup();
    let outcome = dali_engine::repair::repair_regions(inner, &regions)?;
    let (verdict, bytes_rebuilt) = match outcome {
        dali_engine::RepairOutcome::RepairedInPlace { bytes_rebuilt, .. } => {
            (RepairVerdict::RepairedInPlace, bytes_rebuilt)
        }
        dali_engine::RepairOutcome::RecoveredViaLog { bytes_rebuilt, .. } => {
            (RepairVerdict::RecoveredViaLog, bytes_rebuilt)
        }
    };
    // Post-repair: those regions must audit clean and the window must
    // hold its pre-corruption bytes again.
    let recheck = inner.prot.audit_regions(&inner.image, &regions)?;
    if let Some(c) = recheck.corrupt.first() {
        return Err(dali_common::DaliError::CorruptionDetected {
            addr: c.addr,
            len: c.len,
            expected: c.expected,
            actual: c.actual,
        });
    }
    let mut now = vec![0u8; window_len];
    inner.image.read(addr, &mut now)?;
    Ok(Some(RepairRound {
        pattern,
        algebra: inner.prot.kind(),
        verdict,
        bytes_rebuilt,
        image_restored: now == original,
    }))
}

/// Corrupt *two* regions of one parity group (a double fault — more
/// damage than one parity word can solve), then repair. The stripe must
/// refuse and the engine must fall back to online log-based recovery;
/// the round reports how the bytes came back.
pub fn run_double_fault_round(
    db: &DaliEngine,
    inj: &FaultInjector,
    addr: DbAddr,
) -> Result<RepairRound> {
    let inner = inner_arc(db);
    let stripe = inner
        .prot
        .parity()
        .expect("double-fault round needs the parity stripe enabled");
    let geom = inner.prot.geometry();
    let region = geom.region_of(addr);
    let group = stripe.group_of(region);
    let (first, last) = stripe.members(group);
    assert!(last > first, "group too small for a double fault");
    // Corrupt two sibling regions with single-bit flips (detected under
    // both algebras).
    let victims = [first, first + 1];
    let mut originals = Vec::new();
    for &r in &victims {
        let base = geom.region_base(r);
        let mut cur = [0u8];
        inner.image.read(base, &mut cur)?;
        originals.push((base, cur[0]));
        let effect = inj.wild_write_bytes(base, &[cur[0] ^ 0x08])?;
        assert!(effect.landed(), "double-fault flip must land");
    }
    let outcome = dali_engine::repair::repair_regions(inner, &victims)?;
    let verdict = match &outcome {
        dali_engine::RepairOutcome::RepairedInPlace { .. } => RepairVerdict::RepairedInPlace,
        dali_engine::RepairOutcome::RecoveredViaLog { .. } => RepairVerdict::RecoveredViaLog,
    };
    let recheck = inner.prot.audit_regions(&inner.image, &victims)?;
    let mut image_restored = recheck.clean();
    for &(base, byte) in &originals {
        let mut cur = [0u8];
        inner.image.read(base, &mut cur)?;
        image_restored &= cur[0] == byte;
    }
    Ok(RepairRound {
        pattern: CorruptionPattern::SingleFlip,
        algebra: inner.prot.kind(),
        verdict,
        bytes_rebuilt: match outcome {
            dali_engine::RepairOutcome::RepairedInPlace { bytes_rebuilt, .. }
            | dali_engine::RepairOutcome::RecoveredViaLog { bytes_rebuilt, .. } => bytes_rebuilt,
        },
        image_restored,
    })
}

/// Run the repair leg across every pattern: corrupt, audit, heal,
/// verify. `addr` should hold [`campaign_payload`]`(window_len)` so each
/// pattern lands on its documented side of the detection table.
pub fn run_repair_matrix(
    db: &DaliEngine,
    inj: &FaultInjector,
    addr: DbAddr,
    window_len: usize,
) -> Result<Vec<RepairRound>> {
    let mut rounds = Vec::new();
    for pattern in CorruptionPattern::ALL {
        if let Some(r) = run_repair_round(db, inj, pattern, addr, window_len)? {
            rounds.push(r);
        }
    }
    Ok(rounds)
}

/// Assert the repair-leg ground truth: every pattern the algebra detects
/// is repaired *in place* with the image byte-identical afterwards; the
/// XOR paired-flip blind spot is the only permissible miss.
pub fn assert_repair_matrix(rounds: &[RepairRound]) {
    for r in rounds {
        let detected = algebra_expected_detected(r.algebra, r.pattern);
        let expected = if detected {
            RepairVerdict::RepairedInPlace
        } else {
            RepairVerdict::Missed
        };
        assert_eq!(
            r.verdict, expected,
            "{:?} under {:?}: got {:?}",
            r.pattern, r.algebra, r.verdict
        );
        assert!(
            r.image_restored,
            "{:?} under {:?}: image not byte-identical after repair",
            r.pattern, r.algebra
        );
        if detected {
            assert!(r.bytes_rebuilt > 0, "{:?}: nothing rebuilt", r.pattern);
        }
    }
}

/// Run the full pattern matrix against the arena and the checkpoint
/// image for one engine, returning every verdict that landed. `addr`
/// must point at bytes whose contents let every pattern land on its
/// documented side of the detection table — insert
/// [`campaign_payload`]`(window_len)` there.
pub fn run_matrix(
    db: &DaliEngine,
    inj: &FaultInjector,
    addr: DbAddr,
    window_len: usize,
) -> Result<Vec<CampaignVerdict>> {
    let mut verdicts = Vec::new();
    for pattern in CorruptionPattern::ALL {
        if let Some(v) = run_arena_round(db, inj, pattern, addr, window_len)? {
            verdicts.push(v);
        }
        if let Some(v) = run_ckpt_image_round(db, pattern, addr.0, window_len)? {
            verdicts.push(v);
        }
    }
    Ok(verdicts)
}

/// Assert that every verdict in `verdicts` matches
/// [`algebra_expected_detected`]. Panics with a full description on the
/// first mismatch.
pub fn assert_matrix(verdicts: &[CampaignVerdict]) {
    for v in verdicts {
        let expected = algebra_expected_detected(v.algebra, v.pattern);
        assert_eq!(
            v.detected,
            expected,
            "{:?} / {:?} under {:?}: detected={} but the algebra must{} detect it",
            v.target,
            v.pattern,
            v.algebra,
            v.detected,
            if expected { "" } else { " not" },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flip_changes_one_bit() {
        let w = vec![0u8; 16];
        let c = CorruptionPattern::SingleFlip.apply(&w).unwrap();
        let flipped: u32 = w.iter().zip(&c).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn paired_flip_is_same_direction_same_column() {
        for base in [vec![0u8; 16], vec![0x5Au8; 16], vec![0xFFu8; 16]] {
            let c = CorruptionPattern::PairedSameColumn.apply(&base).unwrap();
            let deltas: Vec<u32> = base
                .chunks(4)
                .zip(c.chunks(4))
                .map(|(a, b)| {
                    u32::from_le_bytes(a.try_into().unwrap())
                        ^ u32::from_le_bytes(b.try_into().unwrap())
                })
                .collect();
            let changed: Vec<&u32> = deltas.iter().filter(|&&d| d != 0).collect();
            assert_eq!(changed.len(), 2, "exactly two words touched");
            assert_eq!(changed[0], changed[1], "same bit column");
            assert_eq!(changed[0].count_ones(), 1, "one bit each");
            // XOR parity of the whole window is unchanged...
            let xor_delta = deltas.iter().fold(0u32, |a, d| a ^ d);
            assert_eq!(xor_delta, 0, "XOR blind");
            // ...but the residue moved (same direction: both 0->1 or both
            // 1->0, so the signed deltas add instead of cancelling).
            let r = CodewordAlgebraKind::Residue;
            let fold = |bytes: &[u8]| {
                bytes.chunks(4).fold(0u32, |acc, w| {
                    r.combine(acc, u32::from_le_bytes(w.try_into().unwrap()))
                })
            };
            assert_ne!(fold(&base), fold(&c), "residue sees it");
        }
    }

    #[test]
    fn paired_flip_refuses_windows_without_equal_columns() {
        // w1 = !w0 in every adjacent pair: no same-direction pair exists.
        let mut w = Vec::new();
        for i in 0..4u32 {
            let v = if i % 2 == 0 { 0u32 } else { !0u32 };
            w.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(find_same_direction_pair(&w), None);
        assert!(CorruptionPattern::PairedSameColumn.apply(&w).is_none());
    }

    #[test]
    fn torn_page_zeroes_tail_or_refuses() {
        let mut w = vec![7u8; 32];
        let c = CorruptionPattern::TornPage.apply(&w).unwrap();
        assert_eq!(&c[..16], &w[..16]);
        assert!(c[16..].iter().all(|&b| b == 0));
        w[16..].fill(0);
        assert!(CorruptionPattern::TornPage.apply(&w).is_none());
    }

    #[test]
    fn campaign_payload_keeps_every_pattern_on_its_documented_side() {
        for len in [16usize, 32, 64, 128, 256] {
            let p = campaign_payload(len);
            let xor_fold = |bytes: &[u8]| {
                bytes.chunks(4).fold(0u32, |acc, w| {
                    acc ^ u32::from_le_bytes(w.try_into().unwrap())
                })
            };
            for pattern in CorruptionPattern::ALL {
                let c = pattern
                    .apply(&p)
                    .unwrap_or_else(|| panic!("{pattern:?} must land on campaign_payload({len})"));
                // XOR must move for everything but the paired flip…
                let xor_moved = xor_fold(&p) != xor_fold(&c);
                assert_eq!(
                    xor_moved,
                    pattern != CorruptionPattern::PairedSameColumn,
                    "{pattern:?} on campaign_payload({len})"
                );
            }
        }
    }

    #[test]
    fn expected_detection_table() {
        use CodewordAlgebraKind::*;
        use CorruptionPattern::*;
        for pattern in CorruptionPattern::ALL {
            assert!(algebra_expected_detected(Residue, pattern));
        }
        assert!(!algebra_expected_detected(XorFold, PairedSameColumn));
        assert!(algebra_expected_detected(XorFold, SingleFlip));
        assert!(algebra_expected_detected(XorFold, ThreeFlip));
        assert_eq!(wal_expected_verdict(XorFold, PairedSameColumn), Some(false));
        assert_eq!(wal_expected_verdict(Residue, PairedSameColumn), Some(true));
        for kind in CodewordAlgebraKind::ALL {
            assert_eq!(wal_expected_verdict(kind, SingleFlip), Some(true));
            assert_eq!(wal_expected_verdict(kind, ThreeFlip), Some(true));
            assert_eq!(wal_expected_verdict(kind, Burst), None);
        }
    }
}
