//! Addressing-error fault injection (paper §1).
//!
//! The class of software error the paper defends against — "copy overruns
//! and wild writes through uninitialized pointers" — is simulated here by
//! writing into the database image through raw pointers, bypassing the
//! prescribed `beginUpdate`/`endUpdate` interface entirely. Codewords are
//! therefore *not* maintained for these writes, which is exactly the
//! signature an audit or precheck detects.
//!
//! For the Hardware Protection scheme the injector consults the page
//! protection bitmap first: a write to a protected page reports
//! [`InjectionEffect::Trapped`] instead of crashing the test process with
//! a real SIGSEGV, which models the trap semantics ("the offending write
//! is not completed").

use dali_common::{DbAddr, PageId, Result};
use dali_engine::DaliEngine;
use rand::Rng;

/// Named crash points (re-exported from `dali-common` so fault-injection
/// tests need only this crate): arm a point, drive the engine into it,
/// and the operation errors out mid-flight exactly where a crash would
/// have cut it.
pub use dali_common::crashpoint;

pub mod campaign;
pub use campaign::{
    algebra_expected_detected, assert_matrix, assert_repair_matrix, campaign_payload,
    run_arena_round, run_ckpt_image_round, run_double_fault_round, run_matrix, run_repair_matrix,
    run_repair_round, run_wal_round, wal_expected_verdict, CampaignTarget, CampaignVerdict,
    CorruptionPattern, RepairRound, RepairVerdict, WalScanOutcome,
};

/// What happened when a fault was injected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InjectionEffect {
    /// The stray write landed: `changed` bytes actually differ from the
    /// previous contents.
    Written {
        addr: DbAddr,
        len: usize,
        changed: usize,
    },
    /// The hardware-protection scheme would have trapped the write; the
    /// image is untouched.
    Trapped { addr: DbAddr },
}

impl InjectionEffect {
    /// Did the injection modify the image?
    pub fn landed(&self) -> bool {
        matches!(self, InjectionEffect::Written { changed, .. } if *changed > 0)
    }
}

/// Fault injector bound to an engine.
pub struct FaultInjector {
    engine: DaliEngine,
}

impl FaultInjector {
    /// Build an injector for `engine`.
    pub fn new(engine: &DaliEngine) -> FaultInjector {
        FaultInjector {
            engine: engine.clone(),
        }
    }

    fn inject(&self, addr: DbAddr, bytes: &[u8]) -> Result<InjectionEffect> {
        let image = self.engine.raw_image();
        // Hardware protection: writes to protected pages trap. Check every
        // page the write touches; a trap on the first page kills the whole
        // write (real hardware faults at the first protected byte; for
        // simplicity we model all-or-nothing).
        let pages = image.pages_overlapping(addr, bytes.len());
        for p in pages {
            let base = p.base(image.page_size());
            if !self.engine.page_writable(base) {
                return Ok(InjectionEffect::Trapped { addr });
            }
        }
        let mut old = vec![0u8; bytes.len()];
        image.read(addr, &mut old)?;
        // The actual wild write: a raw copy through the arena pointer,
        // exactly what a stray memcpy in application code would do.
        image.write(addr, bytes)?;
        let changed = old.iter().zip(bytes).filter(|(a, b)| a != b).count();
        Ok(InjectionEffect::Written {
            addr,
            len: bytes.len(),
            changed,
        })
    }

    /// A wild write: `len` bytes of `value` at an arbitrary address.
    ///
    /// Note for experiment design: a *uniform* pattern longer than one
    /// word can fall into the XOR codeword's parity blind spot when the
    /// overwritten data is itself word-periodic (the per-word deltas
    /// cancel). Use [`wild_write_noise`](Self::wild_write_noise) when the
    /// experiment requires guaranteed detectability.
    pub fn wild_write(&self, addr: DbAddr, value: u8, len: usize) -> Result<InjectionEffect> {
        self.inject(addr, &vec![value; len])
    }

    /// A wild write of a non-periodic byte pattern, guaranteed to change
    /// the XOR fold of the containing region(s) for any prior contents
    /// (each 32-bit word of the pattern is distinct, so the per-word
    /// deltas cannot all cancel).
    pub fn wild_write_noise(&self, addr: DbAddr, len: usize) -> Result<InjectionEffect> {
        let bytes: Vec<u8> = (0..len)
            .map(|i| {
                (i as u8)
                    .wrapping_mul(0x9D)
                    .wrapping_add(0xE1 ^ (i as u8 >> 3))
            })
            .collect();
        self.inject(addr, &bytes)
    }

    /// A wild write with the given bytes.
    pub fn wild_write_bytes(&self, addr: DbAddr, bytes: &[u8]) -> Result<InjectionEffect> {
        self.inject(addr, bytes)
    }

    /// A copy overrun: a legitimate-looking copy of `intended` bytes that
    /// keeps writing `overrun` additional garbage bytes past the end.
    pub fn copy_overrun(
        &self,
        addr: DbAddr,
        intended: &[u8],
        overrun: usize,
    ) -> Result<InjectionEffect> {
        let mut bytes = intended.to_vec();
        bytes.extend((0..overrun).map(|i| (i as u8).wrapping_mul(37).wrapping_add(11)));
        self.inject(addr, &bytes)
    }

    /// Flip a single bit.
    pub fn bit_flip(&self, addr: DbAddr, bit: u8) -> Result<InjectionEffect> {
        let image = self.engine.raw_image();
        let mut b = [0u8; 1];
        image.read(addr, &mut b)?;
        self.inject(addr, &[b[0] ^ (1 << (bit % 8))])
    }

    /// A wild write at a uniformly random in-bounds address.
    pub fn random_wild_write<R: Rng>(&self, rng: &mut R, len: usize) -> Result<InjectionEffect> {
        let image = self.engine.raw_image();
        let max = image.len().saturating_sub(len).max(1);
        let addr = DbAddr(rng.gen_range(0..max));
        let mut bytes = vec![0u8; len];
        rng.fill(&mut bytes[..]);
        self.inject(addr, &bytes)
    }

    /// Pages of the image (for targeting specific pages).
    pub fn pages(&self) -> usize {
        self.engine.raw_image().pages()
    }

    /// Address of the first byte of a page.
    pub fn page_base(&self, page: u32) -> DbAddr {
        PageId(page).base(self.engine.raw_image().page_size())
    }
}

/// Outcome summary of an injection campaign.
#[derive(Debug, Default, Clone)]
pub struct CampaignReport {
    pub injected: usize,
    pub landed: usize,
    pub trapped: usize,
}

/// Run a campaign of `n` random wild writes of `len` bytes each.
pub fn random_campaign<R: Rng>(
    inj: &FaultInjector,
    rng: &mut R,
    n: usize,
    len: usize,
) -> Result<CampaignReport> {
    let mut report = CampaignReport {
        injected: n,
        ..Default::default()
    };
    for _ in 0..n {
        match inj.random_wild_write(rng, len)? {
            e @ InjectionEffect::Written { .. } => {
                if e.landed() {
                    report.landed += 1;
                }
            }
            InjectionEffect::Trapped { .. } => report.trapped += 1,
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{DaliConfig, ProtectionScheme};
    use rand::SeedableRng;

    fn tmpdir(name: &str) -> dali_testutil::TempDir {
        dali_testutil::TempDir::new(&format!("fi-{name}"))
    }

    /// Engine plus the guard keeping its scratch directory alive.
    fn engine(scheme: ProtectionScheme, name: &str) -> (DaliEngine, dali_testutil::TempDir) {
        let dir = tmpdir(name);
        let (db, _) =
            DaliEngine::create(DaliConfig::small(dir.path()).with_scheme(scheme)).unwrap();
        (db, dir)
    }

    #[test]
    fn wild_write_lands_and_audit_catches_it() {
        let (db, _dir) = engine(ProtectionScheme::DataCodeword, "audit");
        let t = db.create_table("t", 100, 64).unwrap();
        let txn = db.begin().unwrap();
        let rec = txn.insert(t, &[3u8; 100]).unwrap();
        txn.commit().unwrap();

        let inj = FaultInjector::new(&db);
        let addr = db.record_addr(rec).unwrap();
        let effect = inj.wild_write(addr.add(10), 0xEE, 4).unwrap();
        assert!(effect.landed());

        let report = db.audit().unwrap();
        assert!(!report.clean());
    }

    #[test]
    fn hardware_protection_traps_wild_write() {
        let (db, _dir) = engine(ProtectionScheme::MemoryProtection, "trap");
        let t = db.create_table("t", 100, 64).unwrap();
        let txn = db.begin().unwrap();
        let rec = txn.insert(t, &[3u8; 100]).unwrap();
        txn.commit().unwrap();

        let inj = FaultInjector::new(&db);
        let addr = db.record_addr(rec).unwrap();
        let effect = inj.wild_write(addr, 0xEE, 4).unwrap();
        assert_eq!(effect, InjectionEffect::Trapped { addr });
        // Data unharmed.
        let txn = db.begin().unwrap();
        assert_eq!(txn.read_vec(rec).unwrap(), vec![3u8; 100]);
        txn.commit().unwrap();
    }

    #[test]
    fn baseline_scheme_lets_wild_writes_through_silently() {
        let (db, _dir) = engine(ProtectionScheme::Baseline, "silent");
        let t = db.create_table("t", 100, 64).unwrap();
        let txn = db.begin().unwrap();
        let rec = txn.insert(t, &[3u8; 100]).unwrap();
        txn.commit().unwrap();

        let inj = FaultInjector::new(&db);
        let addr = db.record_addr(rec).unwrap();
        assert!(inj.wild_write(addr, 0xEE, 4).unwrap().landed());
        // The corrupted value is served to readers with no complaint.
        let txn = db.begin().unwrap();
        let got = txn.read_vec(rec).unwrap();
        assert_eq!(&got[..4], &[0xEE; 4]);
        txn.commit().unwrap();
        // And the (codeword-less) audit has nothing to check.
        assert!(db.audit().unwrap().clean());
    }

    #[test]
    fn copy_overrun_spills_into_neighbor() {
        let (db, _dir) = engine(ProtectionScheme::DataCodeword, "overrun");
        let t = db.create_table("t", 8, 64).unwrap();
        let txn = db.begin().unwrap();
        let a = txn.insert(t, &[1u8; 8]).unwrap();
        let b = txn.insert(t, &[2u8; 8]).unwrap();
        txn.commit().unwrap();
        let inj = FaultInjector::new(&db);
        let addr = db.record_addr(a).unwrap();
        inj.copy_overrun(addr, &[9u8; 8], 4).unwrap();
        // Neighbor's first bytes clobbered.
        let baddr = db.record_addr(b).unwrap();
        let mut buf = [0u8; 4];
        db.raw_image().read(baddr, &mut buf).unwrap();
        assert_ne!(buf, [2u8; 4]);
        assert!(!db.audit().unwrap().clean());
    }

    #[test]
    fn bit_flip_detected() {
        let (db, _dir) = engine(ProtectionScheme::DataCodeword, "flip");
        let t = db.create_table("t", 8, 64).unwrap();
        let txn = db.begin().unwrap();
        let rec = txn.insert(t, &[0u8; 8]).unwrap();
        txn.commit().unwrap();
        let inj = FaultInjector::new(&db);
        inj.bit_flip(db.record_addr(rec).unwrap(), 3).unwrap();
        assert!(!db.audit().unwrap().clean());
    }

    #[test]
    fn random_campaign_against_mprotect_mostly_traps() {
        let (db, _dir) = engine(ProtectionScheme::MemoryProtection, "campaign");
        db.create_table("t", 100, 64).unwrap();
        let inj = FaultInjector::new(&db);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = random_campaign(&inj, &mut rng, 50, 8).unwrap();
        assert_eq!(report.injected, 50);
        // Everything is protected outside update windows, and no update is
        // running: every write must trap.
        assert_eq!(report.trapped, 50);
        assert_eq!(report.landed, 0);
    }

    #[test]
    fn precheck_prevents_reading_corrupt_data() {
        let (db, _dir) = engine(ProtectionScheme::ReadPrecheck, "precheck");
        let t = db.create_table("t", 100, 64).unwrap();
        let txn = db.begin().unwrap();
        let rec = txn.insert(t, &[7u8; 100]).unwrap();
        txn.commit().unwrap();

        let inj = FaultInjector::new(&db);
        inj.wild_write(db.record_addr(rec).unwrap(), 0xAB, 2)
            .unwrap();

        let txn = db.begin().unwrap();
        let err = txn.read_vec(rec).unwrap_err();
        assert!(matches!(
            err,
            dali_common::DaliError::CorruptionDetected { .. }
        ));
        // The engine is down pending recovery.
        assert!(matches!(db.begin(), Err(dali_common::DaliError::Crashed)));
    }
}
