//! Robustness of the log decoder: arbitrary bytes must never panic the
//! unframe/decode path — a corrupted log file must surface as an error,
//! not a crash, because log corruption is exactly the adjacent failure
//! mode this system exists to handle gracefully.

use bytes::BytesMut;
use dali_wal::record::{frame, unframe, Frame, LogRecord};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    #[test]
    fn unframe_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = unframe(&bytes); // must not panic
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = LogRecord::decode(&bytes); // must not panic
    }

    #[test]
    fn bitflip_in_frame_is_detected_or_identical(
        txn in any::<u64>(),
        addr in 0usize..1_000_000,
        data in proptest::collection::vec(any::<u8>(), 1..64),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let rec = LogRecord::PhysicalRedo {
            txn: dali_common::TxnId(txn),
            op: dali_common::OpSeq(1),
            addr: dali_common::DbAddr(addr),
            data,
        };
        let mut buf = BytesMut::new();
        frame(&rec, &mut buf);
        let mut bytes = buf.to_vec();
        let i = flip_byte % bytes.len();
        bytes[i] ^= 1 << flip_bit;
        match unframe(&bytes) {
            // The flip must be caught by the length prefix, the checksum,
            // or the decoder...
            Err(_) => {}
            // ...UNLESS the flip landed in the checksum field itself and
            // produced... no: flipping any single bit of len/checksum/payload
            // always breaks the XOR parity. A successful parse can only
            // happen if the frame was re-interpreted with a shorter length
            // that still checksums; in that case it must not equal the
            // original record.
            Ok((parsed, _)) => prop_assert_ne!(parsed, Frame::Record(rec)),
        }
    }

    #[test]
    fn truncations_are_errors_not_panics(
        txn in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..100,
    ) {
        let rec = LogRecord::PhysicalRedo {
            txn: dali_common::TxnId(txn),
            op: dali_common::OpSeq(0),
            addr: dali_common::DbAddr(0),
            data,
        };
        let mut buf = BytesMut::new();
        frame(&rec, &mut buf);
        let keep = cut.min(buf.len().saturating_sub(1));
        prop_assert!(unframe(&buf[..keep]).is_err());
    }
}
