//! The system log: in-memory tail plus stable log file (paper §2.1).
//!
//! Appends go to the tail under the *system log latch* (a mutex, as in
//! Dali). [`SystemLog::flush`] writes the tail to the stable file — on
//! transaction commit and during checkpoints. `end_of_stable_log` is the
//! LSN up to which records are known durable. While appending physical
//! redo records, the pages they touch are noted in the dirty page table
//! ([`crate::dpt::DualDirtySet`]).
//!
//! A *simulated crash* simply drops the `SystemLog` object: the unflushed
//! tail is lost, exactly as Dali loses its in-memory tail. Recovery scans
//! the stable file with [`SystemLog::scan_stable`]; [`SystemLog::open`]
//! truncates a torn trailing frame (a partially completed flush) before
//! resuming appends.

use crate::dpt::DualDirtySet;
use crate::record::{frame, unframe, LogRecord};
use bytes::BytesMut;
use dali_common::{DaliError, Lsn, PageId, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

struct Inner {
    /// Unflushed frames.
    tail: BytesMut,
    /// LSN of the first byte of the tail (== bytes written to the file).
    tail_base: Lsn,
    file: File,
}

/// fsync state, deliberately on its own mutex: syncing must not hold the
/// append latch, or every concurrent committer serializes behind each
/// fsync (~hundreds of microseconds each).
struct SyncState {
    /// Second handle to the stable file, used only for `sync_data`.
    file: File,
    /// Everything below this LSN is known to be on disk.
    durable: Lsn,
}

/// The system log.
pub struct SystemLog {
    path: PathBuf,
    page_size: usize,
    inner: Mutex<Inner>,
    sync: Mutex<SyncState>,
    dirty: DualDirtySet,
}

impl SystemLog {
    /// Create a fresh, empty log at `path` (truncating any existing file).
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> Result<SystemLog> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        let sync_file = file.try_clone()?;
        Ok(SystemLog {
            path,
            page_size,
            inner: Mutex::new(Inner {
                tail: BytesMut::with_capacity(1 << 20),
                tail_base: Lsn::ZERO,
                file,
            }),
            sync: Mutex::new(SyncState {
                file: sync_file,
                durable: Lsn::ZERO,
            }),
            dirty: DualDirtySet::new(),
        })
    }

    /// Open an existing log for appending. Scans the file to find the end
    /// of the last intact frame and truncates anything after it.
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> Result<SystemLog> {
        let path = path.as_ref().to_path_buf();
        let valid_end = {
            let bytes = std::fs::read(&path)?;
            valid_prefix_len(&bytes)
        };
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_end as u64)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        let sync_file = file.try_clone()?;
        Ok(SystemLog {
            path,
            page_size,
            inner: Mutex::new(Inner {
                tail: BytesMut::with_capacity(1 << 20),
                tail_base: Lsn(valid_end as u64),
                file,
            }),
            sync: Mutex::new(SyncState {
                file: sync_file,
                durable: Lsn(valid_end as u64),
            }),
            dirty: DualDirtySet::new(),
        })
    }

    /// Path of the stable log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Dirty page table fed by physical-redo appends.
    pub fn dirty(&self) -> &DualDirtySet {
        &self.dirty
    }

    /// Append one record; returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let mut inner = self.inner.lock();
        self.append_locked(&mut inner, rec)
    }

    /// Append a batch of records atomically with respect to other
    /// appenders (one lock acquisition — this is how an operation commit
    /// migrates its local redo log). Returns the LSN of the first record
    /// and of the next byte after the last.
    pub fn append_batch(&self, recs: &[LogRecord]) -> (Lsn, Lsn) {
        let mut inner = self.inner.lock();
        let first = Lsn(inner.tail_base.0 + inner.tail.len() as u64);
        for rec in recs {
            self.append_locked(&mut inner, rec);
        }
        let end = Lsn(inner.tail_base.0 + inner.tail.len() as u64);
        (first, end)
    }

    fn append_locked(&self, inner: &mut Inner, rec: &LogRecord) -> Lsn {
        let lsn = Lsn(inner.tail_base.0 + inner.tail.len() as u64);
        frame(rec, &mut inner.tail);
        if let LogRecord::PhysicalRedo { addr, data, .. } = rec {
            let pages = dali_common::align::split_by_chunks(addr.0, data.len(), self.page_size)
                .map(|(ci, _, _)| PageId(ci as u32));
            self.dirty.note_all(pages);
        }
        lsn
    }

    /// LSN one past the last appended record.
    pub fn current_lsn(&self) -> Lsn {
        let inner = self.inner.lock();
        Lsn(inner.tail_base.0 + inner.tail.len() as u64)
    }

    /// LSN up to which the log is on stable storage.
    pub fn end_of_stable(&self) -> Lsn {
        self.inner.lock().tail_base
    }

    /// Flush the tail to the stable file. The file write happens under
    /// the system log latch; with `sync`, the fsync happens *outside* it,
    /// so concurrent appenders and committers are not serialized behind
    /// the disk. A committer whose bytes a neighbour's fsync already
    /// covered skips its own (commit piggybacking). Returns the new end
    /// of stable log.
    pub fn flush(&self, sync: bool) -> Result<Lsn> {
        let end = {
            let mut inner = self.inner.lock();
            if !inner.tail.is_empty() {
                let tail = std::mem::take(&mut inner.tail);
                inner.file.write_all(&tail)?;
                inner.tail_base = Lsn(inner.tail_base.0 + tail.len() as u64);
                // Reuse the buffer's capacity.
                let mut tail = tail;
                tail.clear();
                inner.tail = tail;
            }
            inner.tail_base
        };
        if sync {
            let mut s = self.sync.lock();
            if s.durable < end {
                s.file.sync_data()?;
                s.durable = end;
            }
        }
        Ok(end)
    }

    /// Scan every intact record in the stable file from `from` onward.
    /// (The in-memory tail is *not* visible: after a crash it is gone.)
    pub fn scan_stable(path: impl AsRef<Path>, from: Lsn) -> Result<Vec<(Lsn, LogRecord)>> {
        let bytes = std::fs::read(path.as_ref())?;
        if from.0 as usize > bytes.len() {
            return Err(DaliError::RecoveryFailed(format!(
                "scan start {from} beyond stable log ({})",
                bytes.len()
            )));
        }
        let mut out = Vec::new();
        let mut pos = from.0 as usize;
        while pos < bytes.len() {
            match unframe(&bytes[pos..]) {
                Ok((rec, n)) => {
                    out.push((Lsn(pos as u64), rec));
                    pos += n;
                }
                Err(_) => break, // torn tail: stop at the last intact frame
            }
        }
        Ok(out)
    }
}

/// Length of the longest prefix of `bytes` consisting of intact frames.
fn valid_prefix_len(bytes: &[u8]) -> usize {
    let mut pos = 0;
    while pos < bytes.len() {
        match unframe(&bytes[pos..]) {
            Ok((_, n)) => pos += n,
            Err(_) => break,
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{DbAddr, OpSeq, TxnId};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dali-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    #[test]
    fn append_flush_scan_round_trip() {
        let path = tmp("round");
        let log = SystemLog::create(&path, 4096).unwrap();
        let l0 = log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        let l1 = log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        assert_eq!(l0, Lsn::ZERO);
        assert!(l1 > l0);
        assert_eq!(log.end_of_stable(), Lsn::ZERO);
        let stable = log.flush(false).unwrap();
        assert_eq!(stable, log.current_lsn());

        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, l0);
        assert_eq!(recs[1].0, l1);
        assert_eq!(recs[1].1, LogRecord::TxnCommit { txn: TxnId(1) });
    }

    #[test]
    fn unflushed_tail_is_lost_on_crash() {
        let path = tmp("crashtail");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        log.flush(false).unwrap();
        log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        drop(log); // crash: tail never flushed
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn physical_redo_dirties_pages() {
        let path = tmp("dirty");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::PhysicalRedo {
            txn: TxnId(1),
            op: OpSeq(0),
            addr: DbAddr(4090),
            data: vec![0; 12], // spans pages 0 and 1
        });
        let d = log.dirty().take(0);
        assert_eq!(d, vec![PageId(0), PageId(1)]);
    }

    #[test]
    fn batch_append_is_contiguous() {
        let path = tmp("batch");
        let log = SystemLog::create(&path, 4096).unwrap();
        let recs = vec![
            LogRecord::TxnBegin { txn: TxnId(1) },
            LogRecord::TxnCommit { txn: TxnId(1) },
        ];
        let (first, end) = log.append_batch(&recs);
        assert_eq!(first, Lsn::ZERO);
        assert_eq!(end, log.current_lsn());
        log.flush(false).unwrap();
        let scanned = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(scanned.len(), 2);
    }

    #[test]
    fn scan_from_mid_lsn() {
        let path = tmp("mid");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        let l1 = log.append(&LogRecord::TxnBegin { txn: TxnId(2) });
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, l1).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, LogRecord::TxnBegin { txn: TxnId(2) });
    }

    #[test]
    fn open_truncates_torn_frame_and_resumes() {
        let path = tmp("torn");
        {
            let log = SystemLog::create(&path, 4096).unwrap();
            log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
            log.flush(false).unwrap();
        }
        // Simulate a torn flush: append garbage bytes.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xff, 0x13, 0x22]).unwrap();
        }
        let log = SystemLog::open(&path, 4096).unwrap();
        let resume = log.current_lsn();
        log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].0, resume);
    }

    #[test]
    fn flush_with_sync() {
        let path = tmp("sync");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        log.flush(true).unwrap();
        assert_eq!(SystemLog::scan_stable(&path, Lsn::ZERO).unwrap().len(), 1);
    }

    #[test]
    fn concurrent_synced_flushes_keep_every_record() {
        // Many threads each append-then-flush(sync); the fsync runs
        // outside the append latch and piggybacks, but every record a
        // flush(true) returned for must be in the stable file.
        let path = tmp("concsync");
        let log = std::sync::Arc::new(SystemLog::create(&path, 4096).unwrap());
        let mut handles = vec![];
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let lsn = log.append(&LogRecord::TxnBegin {
                        txn: TxnId(t * 1000 + i),
                    });
                    let stable = log.flush(true).unwrap();
                    assert!(stable > lsn, "flush end {stable:?} <= appended {lsn:?}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 400);
    }

    #[test]
    fn concurrent_appends_do_not_interleave_frames() {
        let path = tmp("conc");
        let log = std::sync::Arc::new(SystemLog::create(&path, 4096).unwrap());
        let mut handles = vec![];
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    log.append(&LogRecord::TxnBegin {
                        txn: TxnId(t * 1000 + i),
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 2000);
    }
}
