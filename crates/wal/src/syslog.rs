//! The system log: in-memory tail plus stable log file (paper §2.1).
//!
//! Appends go to the tail under the *system log latch* (a mutex, as in
//! Dali). [`SystemLog::flush`] writes the tail to the stable file — on
//! transaction commit and during checkpoints. `end_of_stable_log` is the
//! LSN up to which records are known durable. While appending physical
//! redo records, the pages they touch are noted in the dirty page table
//! ([`crate::dpt::DualDirtySet`]).
//!
//! A *simulated crash* simply drops the `SystemLog` object: the unflushed
//! tail is lost, exactly as Dali loses its in-memory tail. Recovery scans
//! the stable file with [`SystemLog::scan_stable`]; [`SystemLog::open`]
//! truncates a torn trailing frame (a partially completed flush) before
//! resuming appends.

use crate::dpt::DualDirtySet;
use crate::record::{frame_with, unframe_with, LogRecord};
use bytes::BytesMut;
use dali_common::{CodewordAlgebraKind, DaliError, Lsn, PageId, Result};
use parking_lot::{Condvar, Mutex};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct Inner {
    /// Unflushed frames.
    tail: BytesMut,
    /// LSN of the first byte of the tail (== bytes written to the file).
    tail_base: Lsn,
    file: File,
}

/// fsync state, deliberately on its own mutex: syncing must not hold the
/// append latch, or every concurrent committer serializes behind each
/// fsync (~hundreds of microseconds each).
struct SyncState {
    /// Second handle to the stable file, used only for `sync_data`.
    file: File,
    /// Everything below this LSN is known to be on disk.
    durable: Lsn,
    /// A group-commit leader is currently collecting a batch (waiting
    /// out its commit window) or fsyncing on the batch's behalf.
    leader: bool,
    /// Committers blocked waiting for the current leader's fsync. The
    /// leader compares this against `pending` to close its batch early.
    waiters: u64,
}

/// Snapshot of the log's flush/fsync counters, the measurable side of
/// group-commit amortization: `fsyncs / durable_commits` is the metric
/// `net_scale` sweeps, and piggybacks count commits that rode a
/// neighbour's fsync without waiting for one of their own.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// `sync_data` calls actually issued.
    pub fsyncs: u64,
    /// Tail→file writes (buffered flushes, durable or not).
    pub flushes: u64,
    /// Durable-commit requests served (`flush(true)` / `commit_durable`).
    pub durable_commits: u64,
    /// Durable commits satisfied by an fsync some other committer issued.
    pub piggybacked: u64,
    /// Durable commits that waited out a group-commit window as batch
    /// followers (their records covered by the leader's single fsync).
    pub group_followers: u64,
}

#[derive(Default)]
struct Counters {
    fsyncs: AtomicU64,
    flushes: AtomicU64,
    durable_commits: AtomicU64,
    piggybacked: AtomicU64,
    group_followers: AtomicU64,
}

/// The system log.
pub struct SystemLog {
    path: PathBuf,
    page_size: usize,
    /// Algebra used for frame checksums — must match between writer and
    /// scanner (the engine derives both from `DaliConfig::codeword_algebra`
    /// and the checkpoint meta pins it across restarts).
    kind: CodewordAlgebraKind,
    inner: Mutex<Inner>,
    sync: Mutex<SyncState>,
    /// Signalled whenever `durable` advances, a leader steps down, or a
    /// follower joins a collecting leader's batch.
    sync_cv: Condvar,
    /// Threads currently inside a windowed `commit_durable` call. Every
    /// one of them has already appended the records it needs durable, so
    /// once a batch contains them all there is nothing to wait for.
    pending: AtomicU64,
    counters: Counters,
    dirty: DualDirtySet,
}

impl SystemLog {
    /// Create a fresh, empty log at `path` (truncating any existing
    /// file), with XOR-checksummed frames.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> Result<SystemLog> {
        Self::create_with(path, page_size, CodewordAlgebraKind::XorFold)
    }

    /// Create a fresh, empty log whose frame checksums use `kind`.
    pub fn create_with(
        path: impl AsRef<Path>,
        page_size: usize,
        kind: CodewordAlgebraKind,
    ) -> Result<SystemLog> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        let sync_file = file.try_clone()?;
        Ok(SystemLog {
            path,
            page_size,
            kind,
            inner: Mutex::new(Inner {
                tail: BytesMut::with_capacity(1 << 20),
                tail_base: Lsn::ZERO,
                file,
            }),
            sync: Mutex::new(SyncState {
                file: sync_file,
                durable: Lsn::ZERO,
                leader: false,
                waiters: 0,
            }),
            sync_cv: Condvar::new(),
            pending: AtomicU64::new(0),
            counters: Counters::default(),
            dirty: DualDirtySet::new(),
        })
    }

    /// Open an existing XOR-checksummed log for appending. Scans the file
    /// to find the end of the last intact frame and truncates anything
    /// after it.
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> Result<SystemLog> {
        Self::open_with(path, page_size, CodewordAlgebraKind::XorFold)
    }

    /// Open an existing log whose frame checksums use `kind`.
    pub fn open_with(
        path: impl AsRef<Path>,
        page_size: usize,
        kind: CodewordAlgebraKind,
    ) -> Result<SystemLog> {
        let path = path.as_ref().to_path_buf();
        let valid_end = {
            let bytes = std::fs::read(&path)?;
            valid_prefix_len(kind, &bytes)
        };
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_end as u64)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        let sync_file = file.try_clone()?;
        Ok(SystemLog {
            path,
            page_size,
            kind,
            inner: Mutex::new(Inner {
                tail: BytesMut::with_capacity(1 << 20),
                tail_base: Lsn(valid_end as u64),
                file,
            }),
            sync: Mutex::new(SyncState {
                file: sync_file,
                durable: Lsn(valid_end as u64),
                leader: false,
                waiters: 0,
            }),
            sync_cv: Condvar::new(),
            pending: AtomicU64::new(0),
            counters: Counters::default(),
            dirty: DualDirtySet::new(),
        })
    }

    /// Path of the stable log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Dirty page table fed by physical-redo appends.
    pub fn dirty(&self) -> &DualDirtySet {
        &self.dirty
    }

    /// Append one record; returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let mut inner = self.inner.lock();
        self.append_locked(&mut inner, rec)
    }

    /// Append a batch of records atomically with respect to other
    /// appenders (one lock acquisition — this is how an operation commit
    /// migrates its local redo log). Returns the LSN of the first record
    /// and of the next byte after the last.
    pub fn append_batch(&self, recs: &[LogRecord]) -> (Lsn, Lsn) {
        let mut inner = self.inner.lock();
        let first = Lsn(inner.tail_base.0 + inner.tail.len() as u64);
        for rec in recs {
            self.append_locked(&mut inner, rec);
        }
        let end = Lsn(inner.tail_base.0 + inner.tail.len() as u64);
        (first, end)
    }

    fn append_locked(&self, inner: &mut Inner, rec: &LogRecord) -> Lsn {
        let lsn = Lsn(inner.tail_base.0 + inner.tail.len() as u64);
        frame_with(self.kind, rec, &mut inner.tail);
        if let LogRecord::PhysicalRedo { addr, data, .. } = rec {
            let pages = dali_common::align::split_by_chunks(addr.0, data.len(), self.page_size)
                .map(|(ci, _, _)| PageId(ci as u32));
            self.dirty.note_all(pages);
        }
        lsn
    }

    /// LSN one past the last appended record.
    pub fn current_lsn(&self) -> Lsn {
        let inner = self.inner.lock();
        Lsn(inner.tail_base.0 + inner.tail.len() as u64)
    }

    /// LSN up to which the log is on stable storage.
    pub fn end_of_stable(&self) -> Lsn {
        self.inner.lock().tail_base
    }

    /// Flush the tail to the stable file. The file write happens under
    /// the system log latch; with `sync`, the fsync happens *outside* it,
    /// so concurrent appenders and committers are not serialized behind
    /// the disk. A committer whose bytes a neighbour's fsync already
    /// covered skips its own (commit piggybacking). Returns the new end
    /// of stable log.
    pub fn flush(&self, sync: bool) -> Result<Lsn> {
        let end = self.write_tail()?;
        if sync {
            self.counters
                .durable_commits
                .fetch_add(1, Ordering::Relaxed);
            self.sync_upto(end)?;
        }
        Ok(end)
    }

    /// Write the in-memory tail to the stable file (no fsync); returns
    /// the new end of the written log.
    fn write_tail(&self) -> Result<Lsn> {
        let mut inner = self.inner.lock();
        if !inner.tail.is_empty() {
            let tail = std::mem::take(&mut inner.tail);
            inner.file.write_all(&tail)?;
            inner.tail_base = Lsn(inner.tail_base.0 + tail.len() as u64);
            // Reuse the buffer's capacity.
            let mut tail = tail;
            tail.clear();
            inner.tail = tail;
            self.counters.flushes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(inner.tail_base)
    }

    /// fsync so that everything below `upto` is durable, unless a
    /// neighbour's fsync already covered it (commit piggybacking).
    fn sync_upto(&self, upto: Lsn) -> Result<Lsn> {
        let mut s = self.sync.lock();
        if s.durable < upto {
            s.file.sync_data()?;
            s.durable = upto;
            self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.sync_cv.notify_all();
        } else {
            self.counters.piggybacked.fetch_add(1, Ordering::Relaxed);
        }
        Ok(s.durable)
    }

    /// Make the log durable up to `upto`, batching with concurrent
    /// committers under a group-commit `window` (the ROADMAP group-commit
    /// item).
    ///
    /// * `window == 0` behaves exactly like `flush(true)`: write the
    ///   tail, fsync unless a neighbour's fsync already covered `upto`.
    /// * `window > 0`: the first committer to arrive becomes the batch
    ///   *leader*; committers arriving while it collects become
    ///   *followers* and block until the leader's single fsync covers
    ///   their LSN (or, if they appended after the leader's tail
    ///   snapshot, take over as the next leader). The window is a
    ///   *maximum* delay, not a fixed one: every thread inside a
    ///   windowed `commit_durable` has already appended what it needs
    ///   durable, so once the batch holds every in-flight committer the
    ///   leader fires immediately — waiting longer could only help
    ///   commits that have not started yet. An uncontended commit
    ///   therefore pays no window delay at all, and the full window is
    ///   waited only when stragglers are still on their way.
    ///
    /// Callers must have already appended the records they need durable
    /// (`upto` is typically the end LSN returned by
    /// [`append_batch`](Self::append_batch)).
    pub fn commit_durable(&self, upto: Lsn, window: Duration) -> Result<Lsn> {
        self.counters
            .durable_commits
            .fetch_add(1, Ordering::Relaxed);
        if window.is_zero() {
            let end = self.write_tail()?;
            return self.sync_upto(end.max(upto));
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        let res = self.commit_durable_windowed(upto, window);
        self.pending.fetch_sub(1, Ordering::SeqCst);
        res
    }

    fn commit_durable_windowed(&self, upto: Lsn, window: Duration) -> Result<Lsn> {
        let mut followed = false;
        {
            let mut s = self.sync.lock();
            loop {
                if s.durable >= upto {
                    self.counters.piggybacked.fetch_add(1, Ordering::Relaxed);
                    if followed {
                        self.counters
                            .group_followers
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(s.durable);
                }
                if !s.leader {
                    s.leader = true;
                    break;
                }
                // A leader is collecting a batch: join it (the notify
                // lets the leader close the batch early once everyone
                // in flight is aboard) and wait for its fsync. The
                // deadline is defensive only (a leader always steps
                // down, even on error): it bounds the wait if this
                // follower raced a leader whose fsync failed.
                followed = true;
                s.waiters += 1;
                self.sync_cv.notify_all();
                self.sync_cv
                    .wait_until(&mut s, Instant::now() + window + Duration::from_millis(100));
                s.waiters -= 1;
            }
        }
        // Leader: collect until the window closes or every in-flight
        // committer has joined, then flush the batch with one fsync.
        let deadline = Instant::now() + window;
        {
            let mut s = self.sync.lock();
            while s.waiters + 1 < self.pending.load(Ordering::SeqCst) {
                if self.sync_cv.wait_until(&mut s, deadline).timed_out() {
                    break;
                }
            }
        }
        let res = self.write_tail().and_then(|end| {
            let mut s = self.sync.lock();
            let r = if s.durable < end {
                match s.file.sync_data() {
                    Ok(()) => {
                        s.durable = end;
                        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
                        Ok(s.durable)
                    }
                    Err(e) => Err(DaliError::Io(e)),
                }
            } else {
                self.counters.piggybacked.fetch_add(1, Ordering::Relaxed);
                Ok(s.durable)
            };
            s.leader = false;
            self.sync_cv.notify_all();
            r
        });
        // On the error path the leader flag must still be cleared.
        if res.is_err() {
            let mut s = self.sync.lock();
            if s.leader {
                s.leader = false;
                self.sync_cv.notify_all();
            }
        }
        res
    }

    /// Snapshot of the flush/fsync counters.
    pub fn sync_stats(&self) -> SyncStats {
        SyncStats {
            fsyncs: self.counters.fsyncs.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            durable_commits: self.counters.durable_commits.load(Ordering::Relaxed),
            piggybacked: self.counters.piggybacked.load(Ordering::Relaxed),
            group_followers: self.counters.group_followers.load(Ordering::Relaxed),
        }
    }

    /// Scan every intact record in an XOR-checksummed stable file from
    /// `from` onward. (The in-memory tail is *not* visible: after a crash
    /// it is gone.)
    pub fn scan_stable(path: impl AsRef<Path>, from: Lsn) -> Result<Vec<(Lsn, LogRecord)>> {
        Self::scan_stable_with(path, from, CodewordAlgebraKind::XorFold)
    }

    /// Scan a stable file whose frame checksums use `kind`.
    pub fn scan_stable_with(
        path: impl AsRef<Path>,
        from: Lsn,
        kind: CodewordAlgebraKind,
    ) -> Result<Vec<(Lsn, LogRecord)>> {
        let bytes = std::fs::read(path.as_ref())?;
        if from.0 as usize > bytes.len() {
            return Err(DaliError::RecoveryFailed(format!(
                "scan start {from} beyond stable log ({})",
                bytes.len()
            )));
        }
        let mut out = Vec::new();
        let mut pos = from.0 as usize;
        while pos < bytes.len() {
            match unframe_with(kind, &bytes[pos..]) {
                Ok((rec, n)) => {
                    out.push((Lsn(pos as u64), rec));
                    pos += n;
                }
                Err(_) => break, // torn tail: stop at the last intact frame
            }
        }
        Ok(out)
    }
}

/// Length of the longest prefix of `bytes` consisting of intact frames.
fn valid_prefix_len(kind: CodewordAlgebraKind, bytes: &[u8]) -> usize {
    let mut pos = 0;
    while pos < bytes.len() {
        match unframe_with(kind, &bytes[pos..]) {
            Ok((_, n)) => pos += n,
            Err(_) => break,
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{DbAddr, OpSeq, TxnId};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dali-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    #[test]
    fn append_flush_scan_round_trip() {
        let path = tmp("round");
        let log = SystemLog::create(&path, 4096).unwrap();
        let l0 = log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        let l1 = log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        assert_eq!(l0, Lsn::ZERO);
        assert!(l1 > l0);
        assert_eq!(log.end_of_stable(), Lsn::ZERO);
        let stable = log.flush(false).unwrap();
        assert_eq!(stable, log.current_lsn());

        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, l0);
        assert_eq!(recs[1].0, l1);
        assert_eq!(recs[1].1, LogRecord::TxnCommit { txn: TxnId(1) });
    }

    #[test]
    fn unflushed_tail_is_lost_on_crash() {
        let path = tmp("crashtail");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        log.flush(false).unwrap();
        log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        drop(log); // crash: tail never flushed
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn physical_redo_dirties_pages() {
        let path = tmp("dirty");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::PhysicalRedo {
            txn: TxnId(1),
            op: OpSeq(0),
            addr: DbAddr(4090),
            data: vec![0; 12], // spans pages 0 and 1
        });
        let d = log.dirty().take(0);
        assert_eq!(d, vec![PageId(0), PageId(1)]);
    }

    #[test]
    fn batch_append_is_contiguous() {
        let path = tmp("batch");
        let log = SystemLog::create(&path, 4096).unwrap();
        let recs = vec![
            LogRecord::TxnBegin { txn: TxnId(1) },
            LogRecord::TxnCommit { txn: TxnId(1) },
        ];
        let (first, end) = log.append_batch(&recs);
        assert_eq!(first, Lsn::ZERO);
        assert_eq!(end, log.current_lsn());
        log.flush(false).unwrap();
        let scanned = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(scanned.len(), 2);
    }

    #[test]
    fn scan_from_mid_lsn() {
        let path = tmp("mid");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        let l1 = log.append(&LogRecord::TxnBegin { txn: TxnId(2) });
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, l1).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, LogRecord::TxnBegin { txn: TxnId(2) });
    }

    #[test]
    fn open_truncates_torn_frame_and_resumes() {
        let path = tmp("torn");
        {
            let log = SystemLog::create(&path, 4096).unwrap();
            log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
            log.flush(false).unwrap();
        }
        // Simulate a torn flush: append garbage bytes.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xff, 0x13, 0x22]).unwrap();
        }
        let log = SystemLog::open(&path, 4096).unwrap();
        let resume = log.current_lsn();
        log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].0, resume);
    }

    #[test]
    fn flush_with_sync() {
        let path = tmp("sync");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        log.flush(true).unwrap();
        assert_eq!(SystemLog::scan_stable(&path, Lsn::ZERO).unwrap().len(), 1);
    }

    #[test]
    fn concurrent_synced_flushes_keep_every_record() {
        // Many threads each append-then-flush(sync); the fsync runs
        // outside the append latch and piggybacks, but every record a
        // flush(true) returned for must be in the stable file.
        let path = tmp("concsync");
        let log = std::sync::Arc::new(SystemLog::create(&path, 4096).unwrap());
        let mut handles = vec![];
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let lsn = log.append(&LogRecord::TxnBegin {
                        txn: TxnId(t * 1000 + i),
                    });
                    let stable = log.flush(true).unwrap();
                    assert!(stable > lsn, "flush end {stable:?} <= appended {lsn:?}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 400);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        // 4 committers, 2 ms window: every record must be durable when
        // its commit_durable returns, and the fsync count must come in
        // under one-per-commit (the whole point of the window).
        let path = tmp("group");
        let log = std::sync::Arc::new(SystemLog::create(&path, 4096).unwrap());
        let window = Duration::from_millis(2);
        let mut handles = vec![];
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    let (_, end) = log.append_batch(&[LogRecord::TxnCommit {
                        txn: TxnId(t * 1000 + i),
                    }]);
                    let durable = log.commit_durable(end, window).unwrap();
                    assert!(durable >= end, "commit returned before durability");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 100);
        let stats = log.sync_stats();
        assert_eq!(stats.durable_commits, 100);
        assert!(
            stats.fsyncs < stats.durable_commits,
            "no amortization: {} fsyncs for {} commits",
            stats.fsyncs,
            stats.durable_commits
        );
        assert_eq!(stats.fsyncs + stats.piggybacked, stats.durable_commits);
    }

    #[test]
    fn zero_window_commit_matches_flush_true() {
        let path = tmp("zerowin");
        let log = SystemLog::create(&path, 4096).unwrap();
        let (_, end) = log.append_batch(&[LogRecord::TxnCommit { txn: TxnId(1) }]);
        let durable = log.commit_durable(end, Duration::ZERO).unwrap();
        assert_eq!(durable, end);
        assert_eq!(SystemLog::scan_stable(&path, Lsn::ZERO).unwrap().len(), 1);
        let stats = log.sync_stats();
        assert_eq!(stats.fsyncs, 1);
        assert_eq!(stats.durable_commits, 1);
    }

    #[test]
    fn sync_stats_count_flushes_and_piggybacks() {
        let path = tmp("stats");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        log.flush(true).unwrap();
        // Nothing new appended: a second durable flush piggybacks.
        log.flush(true).unwrap();
        let stats = log.sync_stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.fsyncs, 1);
        assert_eq!(stats.durable_commits, 2);
        assert_eq!(stats.piggybacked, 1);
    }

    #[test]
    fn residue_framed_log_round_trips_and_rejects_wrong_kind() {
        use dali_common::CodewordAlgebraKind;
        let path = tmp("residue");
        let r = CodewordAlgebraKind::Residue;
        {
            let log = SystemLog::create_with(&path, 4096, r).unwrap();
            // Overlapping bit columns so the XOR and residue folds differ.
            log.append(&LogRecord::TxnBegin {
                txn: TxnId(0x0000_FFFF_FFFF_FFFF),
            });
            log.append(&LogRecord::TxnCommit {
                txn: TxnId(0x0000_FFFF_FFFF_FFFF),
            });
            log.flush(false).unwrap();
        }
        let recs = SystemLog::scan_stable_with(&path, Lsn::ZERO, r).unwrap();
        assert_eq!(recs.len(), 2);
        // Scanned under the wrong algebra, the first frame fails its
        // checksum and the scan stops at LSN 0 — a mismatched scanner
        // sees a torn log, never silently different records.
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 0);
        // Reopening with the right kind resumes after the intact frames.
        let log = SystemLog::open_with(&path, 4096, r).unwrap();
        assert!(log.current_lsn() > Lsn::ZERO);
        log.append(&LogRecord::TxnAbort { txn: TxnId(3) });
        log.flush(false).unwrap();
        assert_eq!(
            SystemLog::scan_stable_with(&path, Lsn::ZERO, r)
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn concurrent_appends_do_not_interleave_frames() {
        let path = tmp("conc");
        let log = std::sync::Arc::new(SystemLog::create(&path, 4096).unwrap());
        let mut handles = vec![];
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    log.append(&LogRecord::TxnBegin {
                        txn: TxnId(t * 1000 + i),
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 2000);
    }
}
