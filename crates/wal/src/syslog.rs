//! The system log: in-memory tail plus a directory of stable segment
//! files (paper §2.1).
//!
//! Appends go to the tail under the *system log latch* (a mutex, as in
//! Dali). [`SystemLog::flush`] writes the tail to the stable segments —
//! on transaction commit and during checkpoints. `end_of_stable_log` is
//! the LSN up to which records are known durable. While appending
//! physical redo records, the pages they touch are noted in the dirty
//! page table ([`crate::dpt::DualDirtySet`]).
//!
//! The stable log is *segmented* (see [`crate::segment`]): a directory
//! of fixed-capacity files, each named by the global LSN of its first
//! byte. When an append would overflow the active segment, a
//! [`crate::record::FRAME_SEAL`] frame is written in its place and the
//! record goes to a fresh segment; the roll itself happens in
//! [`SystemLog::flush`]'s tail write, which fsyncs the sealed file,
//! creates the successor, and fsyncs the directory before any byte lands
//! in it. Sealed segments are immutable, which is what lets a certified
//! checkpoint *retire* them ([`SystemLog::retire_covered`]) and bound
//! the log directory by checkpoint cadence. Records never span segments,
//! and LSNs stay global byte offsets, so no caller of the log had to
//! renumber anything.
//!
//! A *simulated crash* simply drops the `SystemLog` object: the unflushed
//! tail is lost, exactly as Dali loses its in-memory tail. Recovery scans
//! the stable segments with [`SystemLog::scan_stable`];
//! [`SystemLog::open`] truncates a torn trailing frame (a partially
//! completed flush) in the last segment before resuming appends.

use crate::dpt::DualDirtySet;
use crate::record::{frame_payload_with, frame_seal, unframe_with, Frame, LogRecord, FRAME_HDR};
use crate::segment;
use bytes::BytesMut;
use dali_common::{CodewordAlgebraKind, DaliError, Lsn, PageId, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Segment capacity used by the algebra-less convenience constructors
/// ([`SystemLog::create`] / [`SystemLog::open`]); large enough that unit
/// tests exercising only the append/flush protocol never roll.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 << 20;

struct Inner {
    /// Unflushed frames.
    tail: BytesMut,
    /// LSN of the first byte of the tail (== bytes written to segments).
    tail_base: Lsn,
    /// The active (last, unsealed) segment file.
    file: File,
    /// Base LSN of the active segment *file*.
    seg_base: Lsn,
    /// Start LSN of the segment the next appended byte belongs to. Runs
    /// ahead of `seg_base` while sealed-but-unflushed bytes sit in the
    /// tail.
    cur_seg_start: Lsn,
    /// LSNs at which the tail must be split into a new segment (the LSN
    /// just past each seal frame in the tail), oldest first. Fully
    /// drained by every tail write.
    seg_splits: VecDeque<Lsn>,
}

/// fsync state, deliberately on its own mutex: syncing must not hold the
/// append latch, or every concurrent committer serializes behind each
/// fsync (~hundreds of microseconds each).
struct SyncState {
    /// Second handle to the active segment, used only for `sync_data`.
    /// Swapped on every roll — by then the sealed predecessor has
    /// already been fsynced and `durable` advanced past it, so this
    /// handle only ever needs to cover the active segment's bytes.
    file: File,
    /// Everything below this LSN is known to be on disk.
    durable: Lsn,
    /// A group-commit leader is currently collecting a batch (waiting
    /// out its commit window) or fsyncing on the batch's behalf.
    leader: bool,
    /// Committers blocked waiting for the current leader's fsync. The
    /// leader compares this against `pending` to close its batch early.
    waiters: u64,
}

/// Snapshot of the log's flush/fsync counters, the measurable side of
/// group-commit amortization: `fsyncs / durable_commits` is the metric
/// `net_scale` sweeps, and piggybacks count commits that rode a
/// neighbour's fsync without waiting for one of their own.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// `sync_data` calls actually issued (including one per segment
    /// roll, which makes the seal durable before its successor exists).
    pub fsyncs: u64,
    /// Tail→file writes (buffered flushes, durable or not).
    pub flushes: u64,
    /// Durable-commit requests served (`flush(true)` / `commit_durable`).
    pub durable_commits: u64,
    /// Durable commits satisfied by an fsync some other committer issued.
    pub piggybacked: u64,
    /// Durable commits that waited out a group-commit window as batch
    /// followers (their records covered by the leader's single fsync).
    pub group_followers: u64,
}

/// Gauges for the segmented layout: what is on disk right now, plus how
/// much retirement has reclaimed over this process's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment files currently retained in the log directory.
    pub segments: u64,
    /// Segments unlinked by [`SystemLog::retire_covered`] since open.
    pub retired: u64,
    /// Total bytes across the retained segment files.
    pub bytes_on_disk: u64,
}

#[derive(Default)]
struct Counters {
    fsyncs: AtomicU64,
    flushes: AtomicU64,
    durable_commits: AtomicU64,
    piggybacked: AtomicU64,
    group_followers: AtomicU64,
    segments_retired: AtomicU64,
}

/// The system log.
pub struct SystemLog {
    /// The log *directory* (segments live inside it).
    dir: PathBuf,
    page_size: usize,
    /// Algebra used for frame checksums — must match between writer and
    /// scanner (the engine derives both from `DaliConfig::codeword_algebra`
    /// and the checkpoint meta pins it across restarts).
    kind: CodewordAlgebraKind,
    /// Capacity at which the active segment is sealed and rolled.
    segment_bytes: u64,
    inner: Mutex<Inner>,
    sync: Mutex<SyncState>,
    /// Signalled whenever `durable` advances, a leader steps down, or a
    /// follower joins a collecting leader's batch.
    sync_cv: Condvar,
    /// Threads currently inside a windowed `commit_durable` call. Every
    /// one of them has already appended the records it needs durable, so
    /// once a batch contains them all there is nothing to wait for.
    pending: AtomicU64,
    counters: Counters,
    dirty: DualDirtySet,
}

impl SystemLog {
    /// Create a fresh, empty log directory at `path` (removing any
    /// existing segments), with XOR-checksummed frames and the default
    /// segment capacity.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> Result<SystemLog> {
        Self::create_with(
            path,
            page_size,
            CodewordAlgebraKind::XorFold,
            DEFAULT_SEGMENT_BYTES,
        )
    }

    /// Create a fresh, empty log whose frame checksums use `kind` and
    /// whose segments roll at `segment_bytes`.
    pub fn create_with(
        path: impl AsRef<Path>,
        page_size: usize,
        kind: CodewordAlgebraKind,
        segment_bytes: u64,
    ) -> Result<SystemLog> {
        let dir = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        for s in segment::list(&dir)? {
            std::fs::remove_file(segment::path(&dir, s.base))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(segment::path(&dir, Lsn::ZERO))?;
        segment::sync_dir(&dir)?;
        let sync_file = file.try_clone()?;
        Ok(Self::assemble(
            dir,
            page_size,
            kind,
            segment_bytes,
            file,
            sync_file,
            Lsn::ZERO,
            Lsn::ZERO,
        ))
    }

    /// Open an existing XOR-checksummed log for appending, with the
    /// default segment capacity.
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> Result<SystemLog> {
        Self::open_with(
            path,
            page_size,
            CodewordAlgebraKind::XorFold,
            DEFAULT_SEGMENT_BYTES,
        )
    }

    /// Open an existing log whose frame checksums use `kind`. Scans the
    /// last segment to find the end of its last intact frame and
    /// truncates anything after it (a torn flush); if the last segment
    /// ends with a seal (the crash hit between sealing and creating the
    /// successor), a fresh segment is created at the sealed end.
    pub fn open_with(
        path: impl AsRef<Path>,
        page_size: usize,
        kind: CodewordAlgebraKind,
        segment_bytes: u64,
    ) -> Result<SystemLog> {
        let dir = path.as_ref().to_path_buf();
        let segments = segment::list(&dir)?;
        let Some(&last) = segments.last() else {
            return Err(DaliError::RecoveryFailed(format!(
                "no log segments in {}",
                dir.display()
            )));
        };
        segment::validate_chain(&segments)?;
        let bytes = std::fs::read(segment::path(&dir, last.base))?;
        let (valid, sealed) = valid_prefix(kind, &bytes);
        let end = Lsn(last.base.0 + valid as u64);
        let (file, seg_base) = if sealed {
            // The sealed file is immutable from here on; truncate any
            // torn bytes after the seal and start its successor.
            if valid != bytes.len() {
                let f = OpenOptions::new()
                    .write(true)
                    .open(segment::path(&dir, last.base))?;
                f.set_len(valid as u64)?;
                f.sync_data()?;
            }
            let file = OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(segment::path(&dir, end))?;
            segment::sync_dir(&dir)?;
            (file, end)
        } else {
            let mut file = OpenOptions::new()
                .write(true)
                .open(segment::path(&dir, last.base))?;
            file.set_len(valid as u64)?;
            file.seek(SeekFrom::End(0))?;
            (file, last.base)
        };
        let sync_file = file.try_clone()?;
        Ok(Self::assemble(
            dir,
            page_size,
            kind,
            segment_bytes,
            file,
            sync_file,
            seg_base,
            end,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        dir: PathBuf,
        page_size: usize,
        kind: CodewordAlgebraKind,
        segment_bytes: u64,
        file: File,
        sync_file: File,
        seg_base: Lsn,
        end: Lsn,
    ) -> SystemLog {
        SystemLog {
            dir,
            page_size,
            kind,
            // A segment must hold at least one seal and one small frame.
            segment_bytes: segment_bytes.max(4 * FRAME_HDR as u64),
            inner: Mutex::new(Inner {
                tail: BytesMut::with_capacity(1 << 20),
                tail_base: end,
                file,
                seg_base,
                cur_seg_start: seg_base,
                seg_splits: VecDeque::new(),
            }),
            sync: Mutex::new(SyncState {
                file: sync_file,
                durable: end,
                leader: false,
                waiters: 0,
            }),
            sync_cv: Condvar::new(),
            pending: AtomicU64::new(0),
            counters: Counters::default(),
            dirty: DualDirtySet::new(),
        }
    }

    /// Path of the stable log directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Dirty page table fed by physical-redo appends.
    pub fn dirty(&self) -> &DualDirtySet {
        &self.dirty
    }

    /// Append one record; returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let mut inner = self.inner.lock();
        self.append_locked(&mut inner, rec)
    }

    /// Append a batch of records atomically with respect to other
    /// appenders (one lock acquisition — this is how an operation commit
    /// migrates its local redo log). Returns the LSN of the first record
    /// and of the next byte after the last.
    pub fn append_batch(&self, recs: &[LogRecord]) -> (Lsn, Lsn) {
        let mut inner = self.inner.lock();
        let mut first = None;
        for rec in recs {
            let lsn = self.append_locked(&mut inner, rec);
            first.get_or_insert(lsn);
        }
        let end = Lsn(inner.tail_base.0 + inner.tail.len() as u64);
        (first.unwrap_or(end), end)
    }

    fn append_locked(&self, inner: &mut Inner, rec: &LogRecord) -> Lsn {
        let mut payload = BytesMut::with_capacity(64);
        rec.encode(&mut payload);
        let frame_len = (FRAME_HDR + payload.len()) as u64;
        let mut lsn = Lsn(inner.tail_base.0 + inner.tail.len() as u64);
        // Roll decision, made while the record's bytes are still in
        // hand: if this frame would push the active segment past its
        // capacity (reserving room for the seal that must always fit),
        // seal here and let the record open the next segment. A frame
        // larger than a whole segment gets a segment to itself — records
        // never span segments.
        let seg_used = lsn.0 - inner.cur_seg_start.0;
        if seg_used > 0 && seg_used + frame_len > self.segment_bytes - FRAME_HDR as u64 {
            frame_seal(self.kind, &mut inner.tail);
            let split = Lsn(lsn.0 + FRAME_HDR as u64);
            inner.cur_seg_start = split;
            inner.seg_splits.push_back(split);
            lsn = split;
        }
        frame_payload_with(self.kind, &payload, &mut inner.tail);
        if let LogRecord::PhysicalRedo { addr, data, .. } = rec {
            let pages = dali_common::align::split_by_chunks(addr.0, data.len(), self.page_size)
                .map(|(ci, _, _)| PageId(ci as u32));
            self.dirty.note_all(pages);
        }
        lsn
    }

    /// LSN one past the last appended record.
    pub fn current_lsn(&self) -> Lsn {
        let inner = self.inner.lock();
        Lsn(inner.tail_base.0 + inner.tail.len() as u64)
    }

    /// LSN up to which the log is on stable storage.
    pub fn end_of_stable(&self) -> Lsn {
        self.inner.lock().tail_base
    }

    /// Flush the tail to the stable segments. The file writes happen
    /// under the system log latch; with `sync`, the fsync happens
    /// *outside* it, so concurrent appenders and committers are not
    /// serialized behind the disk. A committer whose bytes a neighbour's
    /// fsync already covered skips its own (commit piggybacking).
    /// Returns the new end of stable log.
    pub fn flush(&self, sync: bool) -> Result<Lsn> {
        let end = self.write_tail()?;
        if sync {
            self.counters
                .durable_commits
                .fetch_add(1, Ordering::Relaxed);
            self.sync_upto(end)?;
        }
        Ok(end)
    }

    /// Write the in-memory tail to the stable segments (no fsync of the
    /// active segment); returns the new end of the written log. Rolls
    /// happen here: the tail is cut at each pending seal, the sealed
    /// file is fsynced (so the seal cannot be torn by a later crash
    /// while its successor already exists), the successor is created and
    /// the directory fsynced before any byte lands in it.
    fn write_tail(&self) -> Result<Lsn> {
        let mut inner = self.inner.lock();
        if inner.tail.is_empty() {
            return Ok(inner.tail_base);
        }
        let tail = std::mem::take(&mut inner.tail);
        let base = inner.tail_base;
        let mut cursor = 0usize;
        while let Some(&split) = inner.seg_splits.front() {
            let off = (split.0 - base.0) as usize;
            debug_assert!(cursor < off && off <= tail.len());
            inner.file.write_all(&tail[cursor..off])?;
            cursor = off;
            inner.seg_splits.pop_front();
            self.roll_locked(&mut inner, split)?;
        }
        inner.file.write_all(&tail[cursor..])?;
        inner.tail_base = Lsn(base.0 + tail.len() as u64);
        // Reuse the buffer's capacity.
        let mut tail = tail;
        tail.clear();
        inner.tail = tail;
        self.counters.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(inner.tail_base)
    }

    /// Seal the active segment at `split` (its bytes, ending in a seal
    /// frame, are already written) and open its successor. Called with
    /// the append latch held; takes the sync lock briefly twice, which
    /// is safe because no path acquires the append latch while holding
    /// the sync lock.
    fn roll_locked(&self, inner: &mut Inner, split: Lsn) -> Result<()> {
        // 1. Make the sealed segment durable and publish that fact —
        // durable must cover the seal *before* the sync handle is
        // swapped, so a concurrent `sync_upto` for old-segment bytes
        // piggybacks instead of fsyncing the wrong file.
        inner.file.sync_data()?;
        {
            let mut s = self.sync.lock();
            if s.durable < split {
                s.durable = split;
                self.sync_cv.notify_all();
            }
        }
        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        // 2. Create the successor and make its directory entry durable
        // before anything is written to it.
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment::path(&self.dir, split))?;
        segment::sync_dir(&self.dir)?;
        let sync_file = file.try_clone()?;
        inner.file = file;
        inner.seg_base = split;
        self.sync.lock().file = sync_file;
        Ok(())
    }

    /// fsync so that everything below `upto` is durable, unless a
    /// neighbour's fsync already covered it (commit piggybacking).
    fn sync_upto(&self, upto: Lsn) -> Result<Lsn> {
        let mut s = self.sync.lock();
        if s.durable < upto {
            s.file.sync_data()?;
            s.durable = upto;
            self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.sync_cv.notify_all();
        } else {
            self.counters.piggybacked.fetch_add(1, Ordering::Relaxed);
        }
        Ok(s.durable)
    }

    /// Make the log durable up to `upto`, batching with concurrent
    /// committers under a group-commit `window` (the ROADMAP group-commit
    /// item).
    ///
    /// * `window == 0` behaves exactly like `flush(true)`: write the
    ///   tail, fsync unless a neighbour's fsync already covered `upto`.
    /// * `window > 0`: the first committer to arrive becomes the batch
    ///   *leader*; committers arriving while it collects become
    ///   *followers* and block until the leader's single fsync covers
    ///   their LSN (or, if they appended after the leader's tail
    ///   snapshot, take over as the next leader). The window is a
    ///   *maximum* delay, not a fixed one: every thread inside a
    ///   windowed `commit_durable` has already appended what it needs
    ///   durable, so once the batch holds every in-flight committer the
    ///   leader fires immediately — waiting longer could only help
    ///   commits that have not started yet. An uncontended commit
    ///   therefore pays no window delay at all, and the full window is
    ///   waited only when stragglers are still on their way.
    ///
    /// Callers must have already appended the records they need durable
    /// (`upto` is typically the end LSN returned by
    /// [`append_batch`](Self::append_batch)).
    pub fn commit_durable(&self, upto: Lsn, window: Duration) -> Result<Lsn> {
        self.counters
            .durable_commits
            .fetch_add(1, Ordering::Relaxed);
        if window.is_zero() {
            let end = self.write_tail()?;
            return self.sync_upto(end.max(upto));
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        let res = self.commit_durable_windowed(upto, window);
        self.pending.fetch_sub(1, Ordering::SeqCst);
        res
    }

    fn commit_durable_windowed(&self, upto: Lsn, window: Duration) -> Result<Lsn> {
        let mut followed = false;
        {
            let mut s = self.sync.lock();
            loop {
                if s.durable >= upto {
                    self.counters.piggybacked.fetch_add(1, Ordering::Relaxed);
                    if followed {
                        self.counters
                            .group_followers
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(s.durable);
                }
                if !s.leader {
                    s.leader = true;
                    break;
                }
                // A leader is collecting a batch: join it (the notify
                // lets the leader close the batch early once everyone
                // in flight is aboard) and wait for its fsync. The
                // deadline is defensive only (a leader always steps
                // down, even on error): it bounds the wait if this
                // follower raced a leader whose fsync failed.
                followed = true;
                s.waiters += 1;
                self.sync_cv.notify_all();
                self.sync_cv
                    .wait_until(&mut s, Instant::now() + window + Duration::from_millis(100));
                s.waiters -= 1;
            }
        }
        // Leader: collect until the window closes or every in-flight
        // committer has joined, then flush the batch with one fsync.
        let deadline = Instant::now() + window;
        {
            let mut s = self.sync.lock();
            while s.waiters + 1 < self.pending.load(Ordering::SeqCst) {
                if self.sync_cv.wait_until(&mut s, deadline).timed_out() {
                    break;
                }
            }
        }
        let res = self.write_tail().and_then(|end| {
            let mut s = self.sync.lock();
            let r = if s.durable < end {
                match s.file.sync_data() {
                    Ok(()) => {
                        s.durable = end;
                        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
                        Ok(s.durable)
                    }
                    Err(e) => Err(DaliError::Io(e)),
                }
            } else {
                self.counters.piggybacked.fetch_add(1, Ordering::Relaxed);
                Ok(s.durable)
            };
            s.leader = false;
            self.sync_cv.notify_all();
            r
        });
        // On the error path the leader flag must still be cleared.
        if res.is_err() {
            let mut s = self.sync.lock();
            if s.leader {
                s.leader = false;
                self.sync_cv.notify_all();
            }
        }
        res
    }

    /// Retire (unlink) sealed segments every byte of which is below
    /// `horizon` — called by the checkpointer with the oldest `CK_end`
    /// that any retained checkpoint image might replay from. The active
    /// segment is never retired. Returns how many segments were
    /// unlinked. Holding the append latch across the unlinks pins the
    /// active segment and keeps rolls out of the race window.
    pub fn retire_covered(&self, horizon: Lsn) -> Result<u64> {
        let inner = self.inner.lock();
        let keep_from = inner.seg_base;
        let retired = segment::retire_covered(&self.dir, horizon, keep_from)?;
        self.counters
            .segments_retired
            .fetch_add(retired, Ordering::Relaxed);
        Ok(retired)
    }

    /// Gauges for the segmented layout (directory listing + lifetime
    /// retirement counter).
    pub fn segment_stats(&self) -> Result<SegmentStats> {
        let segments = segment::list(&self.dir)?;
        Ok(SegmentStats {
            segments: segments.len() as u64,
            retired: self.counters.segments_retired.load(Ordering::Relaxed),
            bytes_on_disk: segments.iter().map(|s| s.len).sum(),
        })
    }

    /// Snapshot of the flush/fsync counters.
    pub fn sync_stats(&self) -> SyncStats {
        SyncStats {
            fsyncs: self.counters.fsyncs.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            durable_commits: self.counters.durable_commits.load(Ordering::Relaxed),
            piggybacked: self.counters.piggybacked.load(Ordering::Relaxed),
            group_followers: self.counters.group_followers.load(Ordering::Relaxed),
        }
    }

    /// Scan every intact record in an XOR-checksummed stable log
    /// directory from `from` onward. (The in-memory tail is *not*
    /// visible: after a crash it is gone.)
    pub fn scan_stable(path: impl AsRef<Path>, from: Lsn) -> Result<Vec<(Lsn, LogRecord)>> {
        Self::scan_stable_with(path, from, CodewordAlgebraKind::XorFold)
    }

    /// Scan a stable log directory whose frame checksums use `kind`.
    /// Seal frames are consumed (they carry no record); the scan crosses
    /// segment boundaries transparently and stops at the first torn
    /// frame. Errors if `from` predates the first retained segment
    /// (history the caller wants was retired) or lies past the end of
    /// the log.
    pub fn scan_stable_with(
        path: impl AsRef<Path>,
        from: Lsn,
        kind: CodewordAlgebraKind,
    ) -> Result<Vec<(Lsn, LogRecord)>> {
        let dir = path.as_ref();
        let segments = segment::list(dir)?;
        let Some(&first) = segments.first() else {
            return Err(DaliError::RecoveryFailed(format!(
                "no log segments in {}",
                dir.display()
            )));
        };
        segment::validate_chain(&segments)?;
        let end = segments.last().expect("non-empty").end();
        if from < first.base {
            return Err(DaliError::RecoveryFailed(format!(
                "scan start {from} predates first retained segment {}",
                segment::file_name(first.base)
            )));
        }
        if from > end {
            return Err(DaliError::RecoveryFailed(format!(
                "scan start {from} beyond stable log ({end})"
            )));
        }
        let mut out = Vec::new();
        for s in segments.iter().filter(|s| s.end() > from || s.len == 0) {
            let bytes = std::fs::read(segment::path(dir, s.base))?;
            let mut pos = from.0.saturating_sub(s.base.0) as usize;
            let mut clean_end = pos == bytes.len();
            while pos < bytes.len() {
                match unframe_with(kind, &bytes[pos..]) {
                    Ok((Frame::Record(rec), n)) => {
                        out.push((Lsn(s.base.0 + pos as u64), rec));
                        pos += n;
                        clean_end = pos == bytes.len();
                    }
                    Ok((Frame::Seal, n)) => {
                        pos += n;
                        // A seal is only valid as the segment's last
                        // frame; bytes after it are torn garbage.
                        clean_end = pos == bytes.len();
                        break;
                    }
                    Err(_) => {
                        clean_end = false;
                        break;
                    }
                }
            }
            if !clean_end {
                // Torn tail (or mid-segment damage): nothing after this
                // point can be trusted to be in sequence.
                break;
            }
        }
        Ok(out)
    }
}

/// Length of the longest prefix of `bytes` consisting of intact frames,
/// and whether that prefix ends with a seal (bytes after a seal in the
/// same segment are torn garbage and excluded).
fn valid_prefix(kind: CodewordAlgebraKind, bytes: &[u8]) -> (usize, bool) {
    let mut pos = 0;
    while pos < bytes.len() {
        match unframe_with(kind, &bytes[pos..]) {
            Ok((Frame::Record(_), n)) => pos += n,
            Ok((Frame::Seal, n)) => return (pos + n, true),
            Err(_) => break,
        }
    }
    (pos, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{DbAddr, OpSeq, TxnId};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dali-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    fn last_segment_path(dir: &Path) -> PathBuf {
        let segs = segment::list(dir).unwrap();
        segment::path(dir, segs.last().unwrap().base)
    }

    #[test]
    fn append_flush_scan_round_trip() {
        let path = tmp("round");
        let log = SystemLog::create(&path, 4096).unwrap();
        let l0 = log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        let l1 = log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        assert_eq!(l0, Lsn::ZERO);
        assert!(l1 > l0);
        assert_eq!(log.end_of_stable(), Lsn::ZERO);
        let stable = log.flush(false).unwrap();
        assert_eq!(stable, log.current_lsn());

        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, l0);
        assert_eq!(recs[1].0, l1);
        assert_eq!(recs[1].1, LogRecord::TxnCommit { txn: TxnId(1) });
    }

    #[test]
    fn unflushed_tail_is_lost_on_crash() {
        let path = tmp("crashtail");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        log.flush(false).unwrap();
        log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        drop(log); // crash: tail never flushed
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn physical_redo_dirties_pages() {
        let path = tmp("dirty");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::PhysicalRedo {
            txn: TxnId(1),
            op: OpSeq(0),
            addr: DbAddr(4090),
            data: vec![0; 12], // spans pages 0 and 1
        });
        let d = log.dirty().take(0);
        assert_eq!(d, vec![PageId(0), PageId(1)]);
    }

    #[test]
    fn batch_append_is_contiguous() {
        let path = tmp("batch");
        let log = SystemLog::create(&path, 4096).unwrap();
        let recs = vec![
            LogRecord::TxnBegin { txn: TxnId(1) },
            LogRecord::TxnCommit { txn: TxnId(1) },
        ];
        let (first, end) = log.append_batch(&recs);
        assert_eq!(first, Lsn::ZERO);
        assert_eq!(end, log.current_lsn());
        log.flush(false).unwrap();
        let scanned = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(scanned.len(), 2);
    }

    #[test]
    fn scan_from_mid_lsn() {
        let path = tmp("mid");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        let l1 = log.append(&LogRecord::TxnBegin { txn: TxnId(2) });
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, l1).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, LogRecord::TxnBegin { txn: TxnId(2) });
    }

    #[test]
    fn open_truncates_torn_frame_and_resumes() {
        let path = tmp("torn");
        {
            let log = SystemLog::create(&path, 4096).unwrap();
            log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
            log.flush(false).unwrap();
        }
        // Simulate a torn flush: append garbage bytes to the active
        // segment.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(last_segment_path(&path))
                .unwrap();
            f.write_all(&[0xff, 0x13, 0x22]).unwrap();
        }
        let log = SystemLog::open(&path, 4096).unwrap();
        let resume = log.current_lsn();
        log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].0, resume);
    }

    #[test]
    fn flush_with_sync() {
        let path = tmp("sync");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        log.flush(true).unwrap();
        assert_eq!(SystemLog::scan_stable(&path, Lsn::ZERO).unwrap().len(), 1);
    }

    #[test]
    fn concurrent_synced_flushes_keep_every_record() {
        // Many threads each append-then-flush(sync); the fsync runs
        // outside the append latch and piggybacks, but every record a
        // flush(true) returned for must be in the stable file.
        let path = tmp("concsync");
        let log = std::sync::Arc::new(SystemLog::create(&path, 4096).unwrap());
        let mut handles = vec![];
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let lsn = log.append(&LogRecord::TxnBegin {
                        txn: TxnId(t * 1000 + i),
                    });
                    let stable = log.flush(true).unwrap();
                    assert!(stable > lsn, "flush end {stable:?} <= appended {lsn:?}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 400);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        // 4 committers, 2 ms window: every record must be durable when
        // its commit_durable returns, and the fsync count must come in
        // under one-per-commit (the whole point of the window).
        let path = tmp("group");
        let log = std::sync::Arc::new(SystemLog::create(&path, 4096).unwrap());
        let window = Duration::from_millis(2);
        let mut handles = vec![];
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    let (_, end) = log.append_batch(&[LogRecord::TxnCommit {
                        txn: TxnId(t * 1000 + i),
                    }]);
                    let durable = log.commit_durable(end, window).unwrap();
                    assert!(durable >= end, "commit returned before durability");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 100);
        let stats = log.sync_stats();
        assert_eq!(stats.durable_commits, 100);
        assert!(
            stats.fsyncs < stats.durable_commits,
            "no amortization: {} fsyncs for {} commits",
            stats.fsyncs,
            stats.durable_commits
        );
        assert_eq!(stats.fsyncs + stats.piggybacked, stats.durable_commits);
    }

    #[test]
    fn zero_window_commit_matches_flush_true() {
        let path = tmp("zerowin");
        let log = SystemLog::create(&path, 4096).unwrap();
        let (_, end) = log.append_batch(&[LogRecord::TxnCommit { txn: TxnId(1) }]);
        let durable = log.commit_durable(end, Duration::ZERO).unwrap();
        assert_eq!(durable, end);
        assert_eq!(SystemLog::scan_stable(&path, Lsn::ZERO).unwrap().len(), 1);
        let stats = log.sync_stats();
        assert_eq!(stats.fsyncs, 1);
        assert_eq!(stats.durable_commits, 1);
    }

    #[test]
    fn sync_stats_count_flushes_and_piggybacks() {
        let path = tmp("stats");
        let log = SystemLog::create(&path, 4096).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        log.flush(true).unwrap();
        // Nothing new appended: a second durable flush piggybacks.
        log.flush(true).unwrap();
        let stats = log.sync_stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.fsyncs, 1);
        assert_eq!(stats.durable_commits, 2);
        assert_eq!(stats.piggybacked, 1);
    }

    #[test]
    fn residue_framed_log_round_trips_and_rejects_wrong_kind() {
        use dali_common::CodewordAlgebraKind;
        let path = tmp("residue");
        let r = CodewordAlgebraKind::Residue;
        {
            let log = SystemLog::create_with(&path, 4096, r, DEFAULT_SEGMENT_BYTES).unwrap();
            // Overlapping bit columns so the XOR and residue folds differ.
            log.append(&LogRecord::TxnBegin {
                txn: TxnId(0x0000_FFFF_FFFF_FFFF),
            });
            log.append(&LogRecord::TxnCommit {
                txn: TxnId(0x0000_FFFF_FFFF_FFFF),
            });
            log.flush(false).unwrap();
        }
        let recs = SystemLog::scan_stable_with(&path, Lsn::ZERO, r).unwrap();
        assert_eq!(recs.len(), 2);
        // Scanned under the wrong algebra, the first frame fails its
        // checksum and the scan stops at LSN 0 — a mismatched scanner
        // sees a torn log, never silently different records.
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 0);
        // Reopening with the right kind resumes after the intact frames.
        let log = SystemLog::open_with(&path, 4096, r, DEFAULT_SEGMENT_BYTES).unwrap();
        assert!(log.current_lsn() > Lsn::ZERO);
        log.append(&LogRecord::TxnAbort { txn: TxnId(3) });
        log.flush(false).unwrap();
        assert_eq!(
            SystemLog::scan_stable_with(&path, Lsn::ZERO, r)
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn concurrent_appends_do_not_interleave_frames() {
        let path = tmp("conc");
        let log = std::sync::Arc::new(SystemLog::create(&path, 4096).unwrap());
        let mut handles = vec![];
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    log.append(&LogRecord::TxnBegin {
                        txn: TxnId(t * 1000 + i),
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 2000);
    }

    // ---- segmented-layout tests ----

    /// Tiny capacity so a handful of records rolls several segments.
    const TINY_SEG: u64 = 128;

    fn fill(log: &SystemLog, n: u64) -> Vec<Lsn> {
        (0..n)
            .map(|i| {
                log.append(&LogRecord::PhysicalRedo {
                    txn: TxnId(i),
                    op: OpSeq(0),
                    addr: DbAddr(64 * i as usize),
                    data: vec![i as u8; 40],
                })
            })
            .collect()
    }

    #[test]
    fn appends_roll_into_multiple_sealed_segments() {
        let path = tmp("roll");
        let log =
            SystemLog::create_with(&path, 4096, CodewordAlgebraKind::XorFold, TINY_SEG).unwrap();
        let lsns = fill(&log, 12);
        log.flush(true).unwrap();
        let segs = segment::list(&path).unwrap();
        assert!(segs.len() > 2, "expected rolls, got {segs:?}");
        segment::validate_chain(&segs).unwrap();
        // Every sealed (non-last) segment stays within capacity and ends
        // with a seal frame.
        for s in &segs[..segs.len() - 1] {
            assert!(s.len <= TINY_SEG, "{s:?} over capacity");
            let bytes = std::fs::read(segment::path(&path, s.base)).unwrap();
            let (valid, sealed) = valid_prefix(CodewordAlgebraKind::XorFold, &bytes);
            assert_eq!(valid, bytes.len());
            assert!(sealed, "{s:?} not sealed");
        }
        // The scan sees every record at its append LSN, across segments.
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 12);
        for (got, want) in recs.iter().map(|(l, _)| *l).zip(lsns) {
            assert_eq!(got, want);
        }
        // And a scan from a mid-log record LSN works too.
        let recs = SystemLog::scan_stable(&path, recs[7].0).unwrap();
        assert_eq!(recs.len(), 5);
    }

    #[test]
    fn reopen_after_rolls_resumes_at_end() {
        let path = tmp("rollreopen");
        let end = {
            let log = SystemLog::create_with(&path, 4096, CodewordAlgebraKind::XorFold, TINY_SEG)
                .unwrap();
            fill(&log, 9);
            log.flush(true).unwrap()
        };
        let log =
            SystemLog::open_with(&path, 4096, CodewordAlgebraKind::XorFold, TINY_SEG).unwrap();
        assert_eq!(log.current_lsn(), end);
        let l = log.append(&LogRecord::TxnCommit { txn: TxnId(99) });
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs.last().unwrap().0, l);
    }

    #[test]
    fn oversized_record_gets_its_own_segment() {
        let path = tmp("oversz");
        let log =
            SystemLog::create_with(&path, 4096, CodewordAlgebraKind::XorFold, TINY_SEG).unwrap();
        log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
        let big = log.append(&LogRecord::PhysicalRedo {
            txn: TxnId(1),
            op: OpSeq(0),
            addr: DbAddr(0),
            data: vec![7u8; 3 * TINY_SEG as usize],
        });
        let after = log.append(&LogRecord::TxnCommit { txn: TxnId(1) });
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable(&path, Lsn::ZERO).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1].0, big);
        assert_eq!(recs[2].0, after);
        // The oversized frame must not span segments: one segment holds
        // the whole frame.
        let segs = segment::list(&path).unwrap();
        let holder = segs.iter().find(|s| s.base == big).unwrap();
        assert!(holder.len > 3 * TINY_SEG);
    }

    #[test]
    fn torn_seal_at_segment_boundary_is_truncated() {
        // A flush tears mid-seal: the segment's records survive, the
        // partial seal is cut, and appends resume *in that segment*.
        let path = tmp("tornseal");
        let kind = CodewordAlgebraKind::XorFold;
        let (lsns, seal_lsn) = {
            let log = SystemLog::create_with(&path, 4096, kind, TINY_SEG).unwrap();
            let lsns = fill(&log, 3);
            log.flush(true).unwrap();
            let segs = segment::list(&path).unwrap();
            assert!(segs.len() >= 2, "{segs:?}");
            (lsns, segs[1].base)
        };
        // Records that landed before the first seal.
        let seal_start = seal_lsn.0 - FRAME_HDR as u64;
        let survivors: Vec<Lsn> = lsns.iter().copied().filter(|l| l.0 < seal_start).collect();
        assert!(!survivors.is_empty());
        // Reconstruct the pre-roll torn state: successor segments gone,
        // first segment cut mid-seal (header half written).
        let segs = segment::list(&path).unwrap();
        for s in &segs[1..] {
            std::fs::remove_file(segment::path(&path, s.base)).unwrap();
        }
        let first = segment::path(&path, Lsn::ZERO);
        let f = OpenOptions::new().write(true).open(&first).unwrap();
        f.set_len(seal_start + 4).unwrap();
        drop(f);

        let log = SystemLog::open_with(&path, 4096, kind, TINY_SEG).unwrap();
        assert_eq!(log.current_lsn(), Lsn(seal_start));
        let recs = SystemLog::scan_stable_with(&path, Lsn::ZERO, kind).unwrap();
        assert_eq!(recs.len(), survivors.len());
        assert_eq!(recs.last().unwrap().0, *survivors.last().unwrap());
        // Appends resume and roll normally afterwards.
        fill(&log, 3);
        log.flush(true).unwrap();
        assert_eq!(
            SystemLog::scan_stable_with(&path, Lsn::ZERO, kind)
                .unwrap()
                .len(),
            survivors.len() + 3
        );
    }

    #[test]
    fn sealed_last_segment_reopens_with_fresh_successor() {
        // The other half of the boundary tear: the seal made it to disk
        // but the crash hit before (or during) the successor's first
        // flush. Reopen must start a fresh segment at the sealed end.
        let path = tmp("sealedlast");
        let kind = CodewordAlgebraKind::XorFold;
        let end = {
            let log = SystemLog::create_with(&path, 4096, kind, TINY_SEG).unwrap();
            fill(&log, 3);
            log.flush(true).unwrap()
        };
        let segs = segment::list(&path).unwrap();
        let last = *segs.last().unwrap();
        // Simulate a torn first flush of the successor: garbage bytes.
        std::fs::write(
            segment::path(&path, last.base),
            [
                &std::fs::read(segment::path(&path, last.base)).unwrap()[..],
                &[0xde, 0xad],
            ]
            .concat(),
        )
        .unwrap();
        let log = SystemLog::open_with(&path, 4096, kind, TINY_SEG).unwrap();
        // Garbage cut; resume exactly at the stable end.
        let segs2 = segment::list(&path).unwrap();
        segment::validate_chain(&segs2).unwrap();
        assert!(log.current_lsn() <= end);
        let l = log.append(&LogRecord::TxnCommit { txn: TxnId(5) });
        log.flush(false).unwrap();
        let recs = SystemLog::scan_stable_with(&path, Lsn::ZERO, kind).unwrap();
        assert_eq!(recs.last().unwrap().0, l);
    }

    #[test]
    fn retire_covered_unlinks_only_below_horizon_and_scan_still_works() {
        let path = tmp("retirelog");
        let log =
            SystemLog::create_with(&path, 4096, CodewordAlgebraKind::XorFold, TINY_SEG).unwrap();
        let lsns = fill(&log, 12);
        log.flush(true).unwrap();
        let before = segment::list(&path).unwrap();
        assert!(before.len() > 2);
        let horizon = lsns[7];
        let retired = log.retire_covered(horizon).unwrap();
        assert!(retired > 0);
        let after = segment::list(&path).unwrap();
        assert_eq!(before.len() as u64 - retired, after.len() as u64);
        segment::validate_chain(&after).unwrap();
        // Every surviving segment still has bytes at or after the horizon.
        assert!(after
            .iter()
            .all(|s| s.end() > horizon || s == after.last().unwrap()));
        // A scan from the horizon (what recovery would do) still works...
        let recs = SystemLog::scan_stable(&path, horizon).unwrap();
        assert_eq!(recs.len(), 5);
        // ...while a scan from before the first retained segment errors.
        let err = SystemLog::scan_stable(&path, Lsn::ZERO)
            .unwrap_err()
            .to_string();
        assert!(err.contains("predates"), "{err}");
        let stats = log.segment_stats().unwrap();
        assert_eq!(stats.segments, after.len() as u64);
        assert_eq!(stats.retired, retired);
        assert_eq!(
            stats.bytes_on_disk,
            after.iter().map(|s| s.len).sum::<u64>()
        );
    }
}
