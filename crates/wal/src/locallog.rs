//! Per-transaction local logs (paper §2: "undo and redo logs in Dali are
//! stored on a per-transaction basis").
//!
//! * [`LocalRedoLog`] — redo (and read) records accumulated by the
//!   transaction's current operation; migrated to the system log when the
//!   operation commits.
//! * [`LocalUndoLog`] — the transaction's undo stack: physical undo
//!   entries for updates of in-flight operations, replaced by one logical
//!   entry when the operation commits. The physical entry carries the
//!   paper's *codeword-applied* flag (§3.1): while an update is between
//!   `beginUpdate` and `endUpdate` the codeword has not yet absorbed the
//!   change, so a rollback in that window must restore the bytes *without*
//!   touching the codeword.
//!
//! The undo log is serializable because checkpoints persist the ATT
//! including each transaction's local undo log (§2.1). The checkpointer
//! quiesces physical updates first, so serialized physical entries always
//! have the codeword-applied flag in its quiescent state.

use crate::record::{LogRecord, LogicalUndo};
use bytes::{Buf, BufMut, BytesMut};
use dali_common::{DaliError, DbAddr, OpSeq, RecId, Result};

/// What a single undo entry restores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UndoKind {
    /// Restore `before` at `addr` (both widened to word alignment so the
    /// codeword delta is computable).
    Physical {
        addr: DbAddr,
        before: Vec<u8>,
        /// Paper §3.1 "codeword-applied" flag. `true` means the update is
        /// still inside its beginUpdate/endUpdate window: the codeword has
        /// *not* yet been updated for it, so undoing must skip the
        /// codeword adjustment.
        codeword_pending: bool,
    },
    /// Execute a logical (level-1) compensation.
    Logical(LogicalUndo),
}

/// One entry of a transaction's undo stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UndoEntry {
    /// The operation that generated the entry.
    pub op: OpSeq,
    pub kind: UndoKind,
}

/// The transaction-local undo stack.
#[derive(Clone, Debug, Default)]
pub struct LocalUndoLog {
    entries: Vec<UndoEntry>,
}

impl LocalUndoLog {
    /// Empty undo log.
    pub fn new() -> LocalUndoLog {
        LocalUndoLog::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Push a physical undo entry (at `beginUpdate`).
    pub fn push_physical(&mut self, op: OpSeq, addr: DbAddr, before: Vec<u8>) {
        self.entries.push(UndoEntry {
            op,
            kind: UndoKind::Physical {
                addr,
                before,
                codeword_pending: true,
            },
        });
    }

    /// Clear the codeword-applied flag of the most recent physical entry
    /// (at `endUpdate`). Errors if the top entry is not a pending physical
    /// update of `op`.
    pub fn seal_top_physical(&mut self, op: OpSeq) -> Result<()> {
        match self.entries.last_mut() {
            Some(UndoEntry {
                op: eop,
                kind:
                    UndoKind::Physical {
                        codeword_pending, ..
                    },
            }) if *eop == op && *codeword_pending => {
                *codeword_pending = false;
                Ok(())
            }
            _ => Err(DaliError::InvalidArg(
                "endUpdate without matching beginUpdate".into(),
            )),
        }
    }

    /// Operation commit: drop the operation's physical entries and push a
    /// single logical entry in their place (paper §2: "the undo
    /// information for that operation is replaced with a logical undo
    /// record").
    pub fn commit_op(&mut self, op: OpSeq, undo: LogicalUndo) {
        self.entries
            .retain(|e| !(e.op == op && matches!(e.kind, UndoKind::Physical { .. })));
        self.entries.push(UndoEntry {
            op,
            kind: UndoKind::Logical(undo),
        });
    }

    /// Pop the most recent entry (rollback order).
    pub fn pop(&mut self) -> Option<UndoEntry> {
        self.entries.pop()
    }

    /// Peek at the most recent entry.
    pub fn last(&self) -> Option<&UndoEntry> {
        self.entries.last()
    }

    /// Records targeted by the logical (committed-operation) entries —
    /// the conflict granules checked by delete-transaction recovery
    /// (§4.3).
    pub fn logical_targets(&self) -> impl Iterator<Item = RecId> + '_ {
        self.entries.iter().filter_map(|e| match &e.kind {
            UndoKind::Logical(u) => Some(u.target()),
            UndoKind::Physical { .. } => None,
        })
    }

    /// Iterate entries bottom (oldest) to top.
    pub fn iter(&self) -> impl Iterator<Item = &UndoEntry> {
        self.entries.iter()
    }

    /// Serialize for the checkpointed ATT.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u32_le(e.op.0);
            match &e.kind {
                UndoKind::Physical {
                    addr,
                    before,
                    codeword_pending,
                } => {
                    debug_assert!(
                        !codeword_pending,
                        "checkpointing an undo log with an update in flight"
                    );
                    buf.put_u8(0);
                    buf.put_u64_le(addr.0 as u64);
                    buf.put_u32_le(before.len() as u32);
                    buf.extend_from_slice(before);
                }
                UndoKind::Logical(u) => {
                    buf.put_u8(1);
                    let mut tmp = BytesMut::new();
                    // Reuse LogRecord encoding for the logical undo by
                    // wrapping it in an OpCommit payload shape.
                    LogRecord::OpCommit {
                        txn: dali_common::TxnId(0),
                        op: e.op,
                        undo: u.clone(),
                    }
                    .encode(&mut tmp);
                    buf.put_u32_le(tmp.len() as u32);
                    buf.extend_from_slice(&tmp);
                }
            }
        }
    }

    /// Deserialize from a checkpointed ATT.
    pub fn decode(buf: &mut &[u8]) -> Result<LocalUndoLog> {
        let n = get_u32(buf)? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let op = OpSeq(get_u32(buf)?);
            let tag = get_u8(buf)?;
            let kind = match tag {
                0 => {
                    let addr = DbAddr(get_u64(buf)? as usize);
                    let len = get_u32(buf)? as usize;
                    if buf.len() < len {
                        return Err(DaliError::RecoveryFailed("undo image truncated".into()));
                    }
                    let before = buf[..len].to_vec();
                    buf.advance(len);
                    UndoKind::Physical {
                        addr,
                        before,
                        codeword_pending: false,
                    }
                }
                1 => {
                    let len = get_u32(buf)? as usize;
                    if buf.len() < len {
                        return Err(DaliError::RecoveryFailed("undo record truncated".into()));
                    }
                    let rec = LogRecord::decode(&buf[..len])?;
                    buf.advance(len);
                    match rec {
                        LogRecord::OpCommit { undo, .. } => UndoKind::Logical(undo),
                        _ => {
                            return Err(DaliError::RecoveryFailed(
                                "expected logical undo in ATT".into(),
                            ))
                        }
                    }
                }
                _ => {
                    return Err(DaliError::RecoveryFailed(format!(
                        "unknown undo entry tag {tag}"
                    )))
                }
            };
            entries.push(UndoEntry { op, kind });
        }
        Ok(LocalUndoLog { entries })
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.is_empty() {
        return Err(DaliError::RecoveryFailed("unexpected end of ATT".into()));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.len() < 4 {
        return Err(DaliError::RecoveryFailed("unexpected end of ATT".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.len() < 8 {
        return Err(DaliError::RecoveryFailed("unexpected end of ATT".into()));
    }
    Ok(buf.get_u64_le())
}

/// Redo (and read) records of the transaction's current operation,
/// awaiting migration to the system log at operation commit.
#[derive(Clone, Debug, Default)]
pub struct LocalRedoLog {
    recs: Vec<LogRecord>,
}

impl LocalRedoLog {
    /// Empty redo log.
    pub fn new() -> LocalRedoLog {
        LocalRedoLog::default()
    }

    /// Append a record.
    pub fn push(&mut self, rec: LogRecord) {
        self.recs.push(rec);
    }

    /// Number of pending records.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True if nothing pending.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Take all pending records (operation commit migrates them).
    pub fn drain(&mut self) -> Vec<LogRecord> {
        std::mem::take(&mut self.recs)
    }

    /// Discard pending records (operation rollback: the operation never
    /// committed, so its redo never reaches the system log).
    pub fn discard(&mut self) {
        self.recs.clear();
    }

    /// Iterate pending records.
    pub fn iter(&self) -> impl Iterator<Item = &LogRecord> {
        self.recs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{SlotId, TableId, TxnId};

    fn rec(t: u32, s: u32) -> RecId {
        RecId::new(TableId(t), SlotId(s))
    }

    #[test]
    fn begin_end_update_flag_protocol() {
        let mut log = LocalUndoLog::new();
        log.push_physical(OpSeq(1), DbAddr(0), vec![0; 4]);
        match &log.last().unwrap().kind {
            UndoKind::Physical {
                codeword_pending, ..
            } => assert!(*codeword_pending),
            _ => panic!(),
        }
        log.seal_top_physical(OpSeq(1)).unwrap();
        match &log.last().unwrap().kind {
            UndoKind::Physical {
                codeword_pending, ..
            } => assert!(!*codeword_pending),
            _ => panic!(),
        }
        // Sealing twice is a protocol error.
        assert!(log.seal_top_physical(OpSeq(1)).is_err());
    }

    #[test]
    fn commit_op_replaces_physical_with_logical() {
        let mut log = LocalUndoLog::new();
        log.push_physical(OpSeq(1), DbAddr(0), vec![0; 4]);
        log.seal_top_physical(OpSeq(1)).unwrap();
        log.push_physical(OpSeq(1), DbAddr(8), vec![0; 4]);
        log.seal_top_physical(OpSeq(1)).unwrap();
        log.commit_op(
            OpSeq(1),
            LogicalUndo::HeapUpdate {
                rec: rec(1, 2),
                before: vec![1, 2, 3],
            },
        );
        assert_eq!(log.len(), 1);
        assert!(matches!(
            log.last().unwrap().kind,
            UndoKind::Logical(LogicalUndo::HeapUpdate { .. })
        ));
    }

    #[test]
    fn commit_op_keeps_other_ops_entries() {
        let mut log = LocalUndoLog::new();
        log.commit_op(OpSeq(1), LogicalUndo::HeapInsert { rec: rec(1, 1) });
        log.push_physical(OpSeq(2), DbAddr(0), vec![0; 4]);
        log.seal_top_physical(OpSeq(2)).unwrap();
        log.commit_op(OpSeq(2), LogicalUndo::HeapInsert { rec: rec(1, 2) });
        assert_eq!(log.len(), 2);
        let targets: Vec<_> = log.logical_targets().collect();
        assert_eq!(targets, vec![rec(1, 1), rec(1, 2)]);
    }

    #[test]
    fn pop_is_lifo() {
        let mut log = LocalUndoLog::new();
        log.commit_op(OpSeq(1), LogicalUndo::HeapInsert { rec: rec(1, 1) });
        log.commit_op(OpSeq(2), LogicalUndo::HeapInsert { rec: rec(1, 2) });
        assert_eq!(log.pop().unwrap().op, OpSeq(2));
        assert_eq!(log.pop().unwrap().op, OpSeq(1));
        assert!(log.pop().is_none());
    }

    #[test]
    fn undo_log_encode_decode_round_trip() {
        let mut log = LocalUndoLog::new();
        log.commit_op(
            OpSeq(1),
            LogicalUndo::HeapDelete {
                rec: rec(2, 3),
                image: vec![7; 16],
            },
        );
        log.push_physical(OpSeq(2), DbAddr(400), vec![1, 2, 3, 4]);
        log.seal_top_physical(OpSeq(2)).unwrap();

        let mut buf = BytesMut::new();
        log.encode(&mut buf);
        let mut slice = &buf[..];
        let back = LocalUndoLog::decode(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back.entries, log.entries);
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut log = LocalUndoLog::new();
        log.push_physical(OpSeq(1), DbAddr(0), vec![9; 8]);
        log.seal_top_physical(OpSeq(1)).unwrap();
        let mut buf = BytesMut::new();
        log.encode(&mut buf);
        let mut short = &buf[..buf.len() - 2];
        assert!(LocalUndoLog::decode(&mut short).is_err());
    }

    #[test]
    fn redo_log_drain_and_discard() {
        let mut r = LocalRedoLog::new();
        r.push(LogRecord::TxnBegin { txn: TxnId(1) });
        r.push(LogRecord::TxnCommit { txn: TxnId(1) });
        assert_eq!(r.len(), 2);
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(r.is_empty());

        r.push(LogRecord::TxnAbort { txn: TxnId(1) });
        r.discard();
        assert!(r.is_empty());
    }
}
