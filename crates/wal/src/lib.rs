//! Write-ahead logging in the Dali style (paper §2, §2.1).
//!
//! Dali uses *local logging*: each transaction accumulates undo and redo
//! records privately; when a lower-level operation commits, its redo
//! records move to the *system log tail* in memory and its physical undo
//! records are replaced by one logical undo record. The tail is flushed to
//! the *stable system log* on transaction commit and at checkpoints.
//! Because redo only reaches the system log at operation commit, every
//! physical record on the stable log belongs to a committed operation —
//! restart rollback is purely logical (plus physical undo from the
//! checkpointed ATT for operations in flight at checkpoint time).
//!
//! This crate provides:
//!
//! * [`record`] — every log record type, including the paper's *read log
//!   records* (§4.2, with optional region codewords per the §4.3
//!   extension), with a checksummed binary encoding.
//! * [`locallog`] — per-transaction undo and redo logs.
//! * [`dpt`] — the dual dirty-page sets backing ping-pong checkpointing.
//! * [`segment`] — the stable log's segment files: naming, chain
//!   validation, byte-level truncation and bitcask-style retirement.
//! * [`syslog`] — the system log: in-memory tail + stable segment
//!   directory, append, flush under the system-log latch, segment rolls
//!   and recovery scans.

pub mod dpt;
pub mod locallog;
pub mod record;
pub mod segment;
pub mod syslog;

pub use dpt::{pages_to_regions, DualDirtySet};
pub use locallog::{LocalRedoLog, LocalUndoLog, UndoEntry, UndoKind};
pub use record::{Frame, LogRecord, LogicalUndo, OpKind};
pub use syslog::{SegmentStats, SyncStats, SystemLog, DEFAULT_SEGMENT_BYTES};
