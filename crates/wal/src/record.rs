//! Log record types and their checksummed binary encoding.
//!
//! Framing on the system log is `[len: u32][checksum: u32][type: u8][payload]`
//! where `checksum` folds the payload under the *configured codeword
//! algebra* (in the same spirit as the paper's codewords — cheap parity
//! that catches torn or overwritten log frames) and then folds the frame
//! *type* byte in as one more word. Checksumming the type matters: the
//! type is what sequences the segmented log (a [`FRAME_SEAL`] marks the
//! clean end of a segment), so a flipped type byte must fail the
//! checksum rather than silently resequence the stream. Historically the
//! frame checksum was hardwired to the XOR fold even when the data image
//! used the residue algebra, which left paired same-direction bit-column
//! flips inside one frame as a silent residual; [`checksum_with`] closes
//! that gap by giving residue configurations residue-checked frames. An
//! LSN is the *global* byte offset of a frame's first byte — segment
//! files partition the offset space without renumbering it.

use bytes::{Buf, BufMut, BytesMut};
use dali_common::{
    CodewordAlgebraKind, DaliError, DbAddr, Lsn, OpSeq, RecId, Result, SlotId, TableId, TxnId,
};

/// Kinds of level-1 (heap) operations, recorded in `OpBegin` so that
/// delete-transaction recovery can test operation conflicts (§4.3: a begin
/// operation record is "checked against the operations in the undo logs of
/// all transactions currently in CorruptTransTable").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Insert a record.
    Insert,
    /// Delete a record.
    Delete,
    /// Update a record in place.
    Update,
}

impl OpKind {
    fn to_u8(self) -> u8 {
        match self {
            OpKind::Insert => 0,
            OpKind::Delete => 1,
            OpKind::Update => 2,
        }
    }

    fn from_u8(b: u8) -> Result<OpKind> {
        Ok(match b {
            0 => OpKind::Insert,
            1 => OpKind::Delete,
            2 => OpKind::Update,
            _ => return Err(bad(format!("unknown op kind {b}"))),
        })
    }
}

/// Logical undo description, carried in operation commit log records and
/// in the checkpointed ATT (paper §2.1: "a copy of the logical undo
/// description is included in the operation commit log record for use in
/// restart recovery").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogicalUndo {
    /// Undo an insert by deleting the slot.
    HeapInsert { rec: RecId },
    /// Undo a delete by re-inserting the saved image into the slot.
    HeapDelete { rec: RecId, image: Vec<u8> },
    /// Undo an in-place update by writing back the before-image.
    HeapUpdate { rec: RecId, before: Vec<u8> },
}

impl LogicalUndo {
    /// The record this operation targeted (conflict granule for §4.3).
    pub fn target(&self) -> RecId {
        match self {
            LogicalUndo::HeapInsert { rec }
            | LogicalUndo::HeapDelete { rec, .. }
            | LogicalUndo::HeapUpdate { rec, .. } => *rec,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LogicalUndo::HeapInsert { rec } => {
                buf.put_u8(0);
                put_rec(buf, *rec);
            }
            LogicalUndo::HeapDelete { rec, image } => {
                buf.put_u8(1);
                put_rec(buf, *rec);
                put_blob(buf, image);
            }
            LogicalUndo::HeapUpdate { rec, before } => {
                buf.put_u8(2);
                put_rec(buf, *rec);
                put_blob(buf, before);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<LogicalUndo> {
        let tag = get_u8(buf)?;
        Ok(match tag {
            0 => LogicalUndo::HeapInsert { rec: get_rec(buf)? },
            1 => LogicalUndo::HeapDelete {
                rec: get_rec(buf)?,
                image: get_blob(buf)?,
            },
            2 => LogicalUndo::HeapUpdate {
                rec: get_rec(buf)?,
                before: get_blob(buf)?,
            },
            _ => return Err(bad(format!("unknown logical undo tag {tag}"))),
        })
    }
}

/// A record on the system log (or in a local redo log awaiting migration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start.
    TxnBegin { txn: TxnId },
    /// A level-1 operation started. Carried to the system log with the
    /// operation's redo records at operation commit.
    OpBegin {
        txn: TxnId,
        op: OpSeq,
        kind: OpKind,
        rec: RecId,
    },
    /// Physical after-image of an in-place update (redo is always physical
    /// in Dali, §2.1).
    PhysicalRedo {
        txn: TxnId,
        op: OpSeq,
        addr: DbAddr,
        data: Vec<u8>,
    },
    /// Read log record (§4.2): the identity of data read — a start point
    /// and a number of bytes, *not the value* — plus, in the CW ReadLog
    /// scheme, the maintained codewords of the overlapped protection
    /// regions (§4.3 extension).
    ReadLog {
        txn: TxnId,
        addr: DbAddr,
        len: u32,
        codewords: Vec<u32>,
    },
    /// Operation commit: the operation's logical undo description.
    OpCommit {
        txn: TxnId,
        op: OpSeq,
        undo: LogicalUndo,
    },
    /// Transaction commit.
    TxnCommit { txn: TxnId },
    /// Transaction abort (all undo already applied and logged as
    /// compensation redo).
    TxnAbort { txn: TxnId },
    /// An audit pass began. `Audit_SN` in §4.3 is the LSN of the last
    /// AuditBegin whose matching AuditEnd reported clean.
    AuditBegin { audit_id: u64 },
    /// An audit pass ended; `clean` is false when corruption was found.
    AuditEnd { audit_id: u64, clean: bool },
    /// A checkpoint completed and was certified; recovery scans start at
    /// the `redo_start` recorded in the checkpoint header, this record is
    /// informational.
    CkptComplete { ckpt_lsn: Lsn },
    /// DDL: a table was created (auto-committed). Recovery replays this to
    /// rebuild catalog entries added after the checkpoint.
    CreateTable {
        table: TableId,
        name: String,
        rec_size: u32,
        capacity: u64,
        bitmap_base: DbAddr,
        data_base: DbAddr,
    },
}

impl LogRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::TxnBegin { txn }
            | LogRecord::OpBegin { txn, .. }
            | LogRecord::PhysicalRedo { txn, .. }
            | LogRecord::ReadLog { txn, .. }
            | LogRecord::OpCommit { txn, .. }
            | LogRecord::TxnCommit { txn }
            | LogRecord::TxnAbort { txn } => Some(*txn),
            _ => None,
        }
    }

    /// Encode the payload (without framing) into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            LogRecord::TxnBegin { txn } => {
                buf.put_u8(0);
                buf.put_u64_le(txn.0);
            }
            LogRecord::OpBegin { txn, op, kind, rec } => {
                buf.put_u8(1);
                buf.put_u64_le(txn.0);
                buf.put_u32_le(op.0);
                buf.put_u8(kind.to_u8());
                put_rec(buf, *rec);
            }
            LogRecord::PhysicalRedo {
                txn,
                op,
                addr,
                data,
            } => {
                buf.put_u8(2);
                buf.put_u64_le(txn.0);
                buf.put_u32_le(op.0);
                buf.put_u64_le(addr.0 as u64);
                put_blob(buf, data);
            }
            LogRecord::ReadLog {
                txn,
                addr,
                len,
                codewords,
            } => {
                buf.put_u8(3);
                buf.put_u64_le(txn.0);
                buf.put_u64_le(addr.0 as u64);
                buf.put_u32_le(*len);
                buf.put_u16_le(codewords.len() as u16);
                for cw in codewords {
                    buf.put_u32_le(*cw);
                }
            }
            LogRecord::OpCommit { txn, op, undo } => {
                buf.put_u8(4);
                buf.put_u64_le(txn.0);
                buf.put_u32_le(op.0);
                undo.encode(buf);
            }
            LogRecord::TxnCommit { txn } => {
                buf.put_u8(5);
                buf.put_u64_le(txn.0);
            }
            LogRecord::TxnAbort { txn } => {
                buf.put_u8(6);
                buf.put_u64_le(txn.0);
            }
            LogRecord::AuditBegin { audit_id } => {
                buf.put_u8(7);
                buf.put_u64_le(*audit_id);
            }
            LogRecord::AuditEnd { audit_id, clean } => {
                buf.put_u8(8);
                buf.put_u64_le(*audit_id);
                buf.put_u8(*clean as u8);
            }
            LogRecord::CkptComplete { ckpt_lsn } => {
                buf.put_u8(9);
                buf.put_u64_le(ckpt_lsn.0);
            }
            LogRecord::CreateTable {
                table,
                name,
                rec_size,
                capacity,
                bitmap_base,
                data_base,
            } => {
                buf.put_u8(10);
                buf.put_u32_le(table.0);
                put_blob(buf, name.as_bytes());
                buf.put_u32_le(*rec_size);
                buf.put_u64_le(*capacity);
                buf.put_u64_le(bitmap_base.0 as u64);
                buf.put_u64_le(data_base.0 as u64);
            }
        }
    }

    /// Decode a payload produced by [`encode`](Self::encode).
    pub fn decode(mut buf: &[u8]) -> Result<LogRecord> {
        let rec = Self::decode_inner(&mut buf)?;
        if !buf.is_empty() {
            return Err(bad(format!("{} trailing bytes after record", buf.len())));
        }
        Ok(rec)
    }

    fn decode_inner(buf: &mut &[u8]) -> Result<LogRecord> {
        let tag = get_u8(buf)?;
        Ok(match tag {
            0 => LogRecord::TxnBegin {
                txn: TxnId(get_u64(buf)?),
            },
            1 => LogRecord::OpBegin {
                txn: TxnId(get_u64(buf)?),
                op: OpSeq(get_u32(buf)?),
                kind: OpKind::from_u8(get_u8(buf)?)?,
                rec: get_rec(buf)?,
            },
            2 => LogRecord::PhysicalRedo {
                txn: TxnId(get_u64(buf)?),
                op: OpSeq(get_u32(buf)?),
                addr: DbAddr(get_u64(buf)? as usize),
                data: get_blob(buf)?,
            },
            3 => {
                let txn = TxnId(get_u64(buf)?);
                let addr = DbAddr(get_u64(buf)? as usize);
                let len = get_u32(buf)?;
                let n = get_u16(buf)? as usize;
                let mut codewords = Vec::with_capacity(n);
                for _ in 0..n {
                    codewords.push(get_u32(buf)?);
                }
                LogRecord::ReadLog {
                    txn,
                    addr,
                    len,
                    codewords,
                }
            }
            4 => LogRecord::OpCommit {
                txn: TxnId(get_u64(buf)?),
                op: OpSeq(get_u32(buf)?),
                undo: LogicalUndo::decode(buf)?,
            },
            5 => LogRecord::TxnCommit {
                txn: TxnId(get_u64(buf)?),
            },
            6 => LogRecord::TxnAbort {
                txn: TxnId(get_u64(buf)?),
            },
            7 => LogRecord::AuditBegin {
                audit_id: get_u64(buf)?,
            },
            8 => LogRecord::AuditEnd {
                audit_id: get_u64(buf)?,
                clean: get_u8(buf)? != 0,
            },
            9 => LogRecord::CkptComplete {
                ckpt_lsn: Lsn(get_u64(buf)?),
            },
            10 => LogRecord::CreateTable {
                table: TableId(get_u32(buf)?),
                name: String::from_utf8(get_blob(buf)?)
                    .map_err(|_| bad("table name not utf-8".into()))?,
                rec_size: get_u32(buf)?,
                capacity: get_u64(buf)?,
                bitmap_base: DbAddr(get_u64(buf)? as usize),
                data_base: DbAddr(get_u64(buf)? as usize),
            },
            _ => return Err(bad(format!("unknown log record tag {tag}"))),
        })
    }
}

/// XOR-fold checksum over a payload (zero-padded trailing word).
///
/// Same wide kernel as `dali-codeword`'s fold (the crates are
/// deliberately independent): 32-byte blocks into four `u64` lanes — a
/// little-endian `u64` is just two 32-bit words side by side, and XOR
/// works per bit column, so folding the combined lane `lo ^ hi` at the
/// end equals the word-at-a-time XOR — then a `u64`/`u32`/padded-word
/// mop-up. The independent lanes let LLVM vectorize; group commit folds
/// every framed record through here.
pub fn checksum(payload: &[u8]) -> u32 {
    let mut lanes = [0u64; 4];
    let mut blocks = payload.chunks_exact(32);
    let load = |b: &[u8]| u64::from_le_bytes(b.try_into().unwrap());
    for b in &mut blocks {
        lanes[0] ^= load(&b[0..8]);
        lanes[1] ^= load(&b[8..16]);
        lanes[2] ^= load(&b[16..24]);
        lanes[3] ^= load(&b[24..32]);
    }
    let mut acc64 = (lanes[0] ^ lanes[1]) ^ (lanes[2] ^ lanes[3]);
    let mut words2 = blocks.remainder().chunks_exact(8);
    for w in &mut words2 {
        acc64 ^= load(w);
    }
    let mut acc = (acc64 as u32) ^ ((acc64 >> 32) as u32);
    let mut words = words2.remainder().chunks_exact(4);
    for c in &mut words {
        acc ^= u32::from_le_bytes(c.try_into().unwrap());
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 4];
        w[..rem.len()].copy_from_slice(rem);
        acc ^= u32::from_le_bytes(w);
    }
    acc
}

/// Payload checksum under the configured codeword algebra: the XOR wide
/// kernel for [`CodewordAlgebraKind::XorFold`], a mod-(2^32-1) residue
/// sum of the zero-padded little-endian words for
/// [`CodewordAlgebraKind::Residue`]. The residue variant is what lets a
/// residue-configured database catch a paired same-direction bit-column
/// flip *inside a log frame* — the XOR checksum's blind spot.
pub fn checksum_with(kind: CodewordAlgebraKind, payload: &[u8]) -> u32 {
    match kind {
        CodewordAlgebraKind::XorFold => checksum(payload),
        CodewordAlgebraKind::Residue => {
            // Defer end-around carries: sum words into a u64 and fold the
            // high half back with `2^32 ≡ 1 (mod 2^32-1)` once per 2^32
            // additions' worth of headroom (frames are far smaller).
            let mut acc = 0u64;
            let mut words = payload.chunks_exact(4);
            for w in &mut words {
                acc += u64::from(u32::from_le_bytes(w.try_into().unwrap()));
            }
            let rem = words.remainder();
            if !rem.is_empty() {
                let mut w = [0u8; 4];
                w[..rem.len()].copy_from_slice(rem);
                acc += u64::from(u32::from_le_bytes(w));
            }
            while acc >> 32 != 0 {
                acc = (acc & 0xFFFF_FFFF) + (acc >> 32);
            }
            // Canonicalize the double representation of zero.
            if acc == 0xFFFF_FFFF {
                0
            } else {
                acc as u32
            }
        }
    }
}

/// Size of a frame header: `[len: u32][checksum: u32][type: u8]`.
pub const FRAME_HDR: usize = 9;

/// Frame type of an ordinary log record.
pub const FRAME_RECORD: u8 = 1;

/// Frame type of a segment seal: an empty-payload marker that says "this
/// segment ended cleanly here; the stream continues in the next segment".
/// A seal mid-file (bytes after it in the same segment) is corruption.
pub const FRAME_SEAL: u8 = 2;

/// One parsed frame off the stable log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// An ordinary log record.
    Record(LogRecord),
    /// A segment seal (clean end-of-segment marker).
    Seal,
}

/// Fold the frame type into the payload checksum. One extra `combine`
/// under the configured algebra: cheap, and it makes a flipped type byte
/// (Record↔Seal) a checksum failure instead of a stream resequencing.
fn frame_checksum(kind: CodewordAlgebraKind, frame_type: u8, payload: &[u8]) -> u32 {
    kind.combine(checksum_with(kind, payload), frame_type as u32)
}

/// Frame a record: `[len][checksum][type][payload]`. Returns bytes
/// appended. XOR-checksummed — the historical default, kept for callers
/// without an algebra in hand; algebra-aware paths use [`frame_with`].
pub fn frame(rec: &LogRecord, out: &mut BytesMut) -> usize {
    frame_with(CodewordAlgebraKind::XorFold, rec, out)
}

/// Frame a record with the payload checksummed under `kind`.
pub fn frame_with(kind: CodewordAlgebraKind, rec: &LogRecord, out: &mut BytesMut) -> usize {
    let mut payload = BytesMut::with_capacity(64);
    rec.encode(&mut payload);
    frame_payload_with(kind, &payload, out)
}

/// Frame an already-encoded record payload. Split out from
/// [`frame_with`] so the segmented append path can measure the frame
/// (`FRAME_HDR + payload.len()`) for its roll decision before writing it.
pub fn frame_payload_with(kind: CodewordAlgebraKind, payload: &[u8], out: &mut BytesMut) -> usize {
    out.put_u32_le(payload.len() as u32);
    out.put_u32_le(frame_checksum(kind, FRAME_RECORD, payload));
    out.put_u8(FRAME_RECORD);
    out.extend_from_slice(payload);
    FRAME_HDR + payload.len()
}

/// Frame a segment seal (empty payload). Returns bytes appended
/// (always [`FRAME_HDR`]).
pub fn frame_seal(kind: CodewordAlgebraKind, out: &mut BytesMut) -> usize {
    out.put_u32_le(0);
    out.put_u32_le(frame_checksum(kind, FRAME_SEAL, &[]));
    out.put_u8(FRAME_SEAL);
    FRAME_HDR
}

/// Parse one XOR-checksummed frame starting at `buf[0]`; returns the
/// frame and its encoded length. Errors on truncation or checksum
/// mismatch. Algebra-aware paths use [`unframe_with`].
pub fn unframe(buf: &[u8]) -> Result<(Frame, usize)> {
    unframe_with(CodewordAlgebraKind::XorFold, buf)
}

/// Parse one frame whose checksum was computed under `kind`.
pub fn unframe_with(kind: CodewordAlgebraKind, buf: &[u8]) -> Result<(Frame, usize)> {
    if buf.len() < FRAME_HDR {
        return Err(bad("truncated frame header".into()));
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let sum = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let frame_type = buf[8];
    if buf.len() < FRAME_HDR + len {
        return Err(bad(format!(
            "truncated frame: need {} bytes, have {}",
            FRAME_HDR + len,
            buf.len()
        )));
    }
    let payload = &buf[FRAME_HDR..FRAME_HDR + len];
    if frame_checksum(kind, frame_type, payload) != sum {
        return Err(bad("log frame checksum mismatch".into()));
    }
    let frame = match frame_type {
        FRAME_RECORD => Frame::Record(LogRecord::decode(payload)?),
        FRAME_SEAL => {
            if len != 0 {
                return Err(bad(format!("seal frame with {len}-byte payload")));
            }
            Frame::Seal
        }
        other => return Err(bad(format!("unknown frame type {other}"))),
    };
    Ok((frame, FRAME_HDR + len))
}

// ---- primitive helpers ----

fn bad(msg: String) -> DaliError {
    DaliError::RecoveryFailed(msg)
}

fn put_rec(buf: &mut BytesMut, rec: RecId) {
    buf.put_u32_le(rec.table.0);
    buf.put_u32_le(rec.slot.0);
}

fn get_rec(buf: &mut &[u8]) -> Result<RecId> {
    Ok(RecId::new(TableId(get_u32(buf)?), SlotId(get_u32(buf)?)))
}

fn put_blob(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32_le(data.len() as u32);
    buf.extend_from_slice(data);
}

fn get_blob(buf: &mut &[u8]) -> Result<Vec<u8>> {
    let n = get_u32(buf)? as usize;
    if buf.len() < n {
        return Err(bad(format!("blob truncated: need {n}, have {}", buf.len())));
    }
    let v = buf[..n].to_vec();
    buf.advance(n);
    Ok(v)
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.is_empty() {
        return Err(bad("unexpected end of record".into()));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16> {
    if buf.len() < 2 {
        return Err(bad("unexpected end of record".into()));
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.len() < 4 {
        return Err(bad("unexpected end of record".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.len() < 8 {
        return Err(bad("unexpected end of record".into()));
    }
    Ok(buf.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec_samples() -> Vec<LogRecord> {
        vec![
            LogRecord::TxnBegin { txn: TxnId(1) },
            LogRecord::OpBegin {
                txn: TxnId(1),
                op: OpSeq(2),
                kind: OpKind::Update,
                rec: RecId::new(TableId(3), SlotId(4)),
            },
            LogRecord::PhysicalRedo {
                txn: TxnId(1),
                op: OpSeq(2),
                addr: DbAddr(0xdead),
                data: vec![1, 2, 3, 4, 5],
            },
            LogRecord::ReadLog {
                txn: TxnId(1),
                addr: DbAddr(64),
                len: 100,
                codewords: vec![],
            },
            LogRecord::ReadLog {
                txn: TxnId(1),
                addr: DbAddr(64),
                len: 100,
                codewords: vec![0xabcd, 0x1234],
            },
            LogRecord::OpCommit {
                txn: TxnId(1),
                op: OpSeq(2),
                undo: LogicalUndo::HeapUpdate {
                    rec: RecId::new(TableId(3), SlotId(4)),
                    before: vec![9; 100],
                },
            },
            LogRecord::OpCommit {
                txn: TxnId(1),
                op: OpSeq(3),
                undo: LogicalUndo::HeapInsert {
                    rec: RecId::new(TableId(1), SlotId(0)),
                },
            },
            LogRecord::OpCommit {
                txn: TxnId(1),
                op: OpSeq(4),
                undo: LogicalUndo::HeapDelete {
                    rec: RecId::new(TableId(1), SlotId(7)),
                    image: vec![0xaa; 32],
                },
            },
            LogRecord::TxnCommit { txn: TxnId(1) },
            LogRecord::TxnAbort { txn: TxnId(9) },
            LogRecord::AuditBegin { audit_id: 77 },
            LogRecord::AuditEnd {
                audit_id: 77,
                clean: false,
            },
            LogRecord::CkptComplete { ckpt_lsn: Lsn(123) },
            LogRecord::CreateTable {
                table: TableId(2),
                name: "accounts".to_string(),
                rec_size: 100,
                capacity: 100_000,
                bitmap_base: DbAddr(8192),
                data_base: DbAddr(16384),
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for rec in rec_samples() {
            let mut buf = BytesMut::new();
            rec.encode(&mut buf);
            let back = LogRecord::decode(&buf).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn frame_round_trip_sequence() {
        let mut out = BytesMut::new();
        let recs = rec_samples();
        for r in &recs {
            frame(r, &mut out);
        }
        let mut cursor = &out[..];
        let mut got = vec![];
        while !cursor.is_empty() {
            let (f, n) = unframe(cursor).unwrap();
            match f {
                Frame::Record(r) => got.push(r),
                Frame::Seal => panic!("unexpected seal"),
            }
            cursor = &cursor[n..];
        }
        assert_eq!(got, recs);
    }

    #[test]
    fn seal_frame_round_trips_under_both_algebras() {
        for kind in CodewordAlgebraKind::ALL {
            let mut out = BytesMut::new();
            let n = frame_seal(kind, &mut out);
            assert_eq!(n, FRAME_HDR);
            assert_eq!(out.len(), FRAME_HDR);
            let (f, m) = unframe_with(kind, &out).unwrap();
            assert_eq!(f, Frame::Seal, "{kind:?}");
            assert_eq!(m, FRAME_HDR);
        }
    }

    /// A flipped frame-type byte (Record↔Seal, or to garbage) must fail
    /// the checksum under both algebras — the type participates in the
    /// fold precisely so corruption cannot resequence the segment stream.
    #[test]
    fn flipped_type_byte_fails_checksum() {
        for kind in CodewordAlgebraKind::ALL {
            let rec = LogRecord::TxnCommit { txn: TxnId(42) };
            let mut out = BytesMut::new();
            frame_with(kind, &rec, &mut out);
            for forged in [FRAME_SEAL, 0u8, 7u8] {
                let mut bytes = out.to_vec();
                bytes[8] = forged;
                assert!(
                    unframe_with(kind, &bytes).is_err(),
                    "{kind:?} accepted forged type {forged}"
                );
            }
            // And a seal forged into a record type.
            let mut out = BytesMut::new();
            frame_seal(kind, &mut out);
            let mut bytes = out.to_vec();
            bytes[8] = FRAME_RECORD;
            assert!(unframe_with(kind, &bytes).is_err(), "{kind:?}");
        }
    }

    /// The wide checksum kernel must equal the one-word-at-a-time
    /// zero-padded fold for every length through several 32-byte blocks
    /// (log frames written by older builds must keep verifying).
    #[test]
    fn wide_checksum_matches_scalar_reference_every_length() {
        let reference = |payload: &[u8]| -> u32 {
            let mut acc = 0u32;
            for (i, &b) in payload.iter().enumerate() {
                acc ^= (b as u32) << (8 * (i & 3));
            }
            acc
        };
        let backing: Vec<u8> = (0..130u32)
            .map(|i| (i.wrapping_mul(167).wrapping_add(13)) as u8)
            .collect();
        for len in 0..=backing.len() {
            let p = &backing[..len];
            assert_eq!(checksum(p), reference(p), "len {len}");
        }
    }

    /// The residue frame checksum must agree with `dali-common`'s residue
    /// `combine` folded word-at-a-time over the zero-padded payload.
    #[test]
    fn residue_checksum_matches_combine_reference_every_length() {
        let r = CodewordAlgebraKind::Residue;
        let reference = |payload: &[u8]| -> u32 {
            let mut acc = 0u32;
            let mut chunks = payload.chunks_exact(4);
            for w in &mut chunks {
                acc = r.combine(acc, u32::from_le_bytes(w.try_into().unwrap()));
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let mut w = [0u8; 4];
                w[..rem.len()].copy_from_slice(rem);
                acc = r.combine(acc, u32::from_le_bytes(w));
            }
            acc
        };
        let backing: Vec<u8> = (0..130u32)
            .map(|i| (i.wrapping_mul(251).wrapping_add(7)) as u8)
            .collect();
        for len in 0..=backing.len() {
            let p = &backing[..len];
            assert_eq!(checksum_with(r, p), reference(p), "len {len}");
        }
        // All-ones payloads walk the end-around carry / canonical-zero path.
        for len in [4usize, 8, 32, 36] {
            let p = vec![0xFFu8; len];
            assert_eq!(checksum_with(r, &p), reference(&p), "ones len {len}");
        }
    }

    /// A paired same-direction bit-column flip cancels in the XOR frame
    /// checksum but moves the residue one — the exact gap the algebra
    /// threading closes.
    #[test]
    fn paired_same_column_flip_slides_under_xor_but_not_residue() {
        let payload: Vec<u8> = (0..32u8).collect();
        let mut flipped = payload.clone();
        flipped[0] ^= 0x08; // same bit column, two words apart,
        flipped[4] ^= 0x08; // both 0 -> 1: same direction
        assert_eq!(
            checksum_with(CodewordAlgebraKind::XorFold, &payload),
            checksum_with(CodewordAlgebraKind::XorFold, &flipped),
            "XOR blind spot"
        );
        assert_ne!(
            checksum_with(CodewordAlgebraKind::Residue, &payload),
            checksum_with(CodewordAlgebraKind::Residue, &flipped),
            "residue sees it"
        );
    }

    #[test]
    fn residue_frames_round_trip_and_reject_cross_kind() {
        for kind in CodewordAlgebraKind::ALL {
            let mut out = BytesMut::new();
            let recs = rec_samples();
            for r in &recs {
                frame_with(kind, r, &mut out);
            }
            let mut cursor = &out[..];
            let mut got = vec![];
            while !cursor.is_empty() {
                let (f, n) = unframe_with(kind, cursor).unwrap();
                match f {
                    Frame::Record(r) => got.push(r),
                    Frame::Seal => panic!("unexpected seal"),
                }
                cursor = &cursor[n..];
            }
            assert_eq!(got, recs, "{kind:?}");
        }
        // A frame whose payload folds differently under the two algebras
        // must not verify under the wrong one. The folds coincide when no
        // addition carries fire (disjoint bit columns), so pick a txn id
        // whose words overlap in every column.
        let rec = LogRecord::TxnCommit {
            txn: TxnId(0x0000_FFFF_FFFF_FFFF),
        };
        let mut out = BytesMut::new();
        frame_with(CodewordAlgebraKind::Residue, &rec, &mut out);
        assert!(unframe_with(CodewordAlgebraKind::XorFold, &out).is_err());
    }

    #[test]
    fn checksum_detects_flip() {
        let rec = LogRecord::TxnCommit { txn: TxnId(42) };
        let mut out = BytesMut::new();
        frame(&rec, &mut out);
        let mut bytes = out.to_vec();
        bytes[10] ^= 0x10; // flip a payload bit
        assert!(unframe(&bytes).is_err());
    }

    #[test]
    fn truncated_frame_is_error() {
        let rec = LogRecord::TxnCommit { txn: TxnId(42) };
        let mut out = BytesMut::new();
        frame(&rec, &mut out);
        assert!(unframe(&out[..out.len() - 1]).is_err());
        assert!(unframe(&out[..4]).is_err());
    }

    #[test]
    fn trailing_garbage_in_payload_rejected() {
        let rec = LogRecord::TxnCommit { txn: TxnId(1) };
        let mut buf = BytesMut::new();
        rec.encode(&mut buf);
        buf.put_u8(0);
        assert!(LogRecord::decode(&buf).is_err());
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::TxnBegin { txn: TxnId(5) }.txn(), Some(TxnId(5)));
        assert_eq!(LogRecord::AuditBegin { audit_id: 1 }.txn(), None);
    }

    #[test]
    fn logical_undo_target() {
        let r = RecId::new(TableId(1), SlotId(2));
        assert_eq!(LogicalUndo::HeapInsert { rec: r }.target(), r);
        assert_eq!(
            LogicalUndo::HeapDelete {
                rec: r,
                image: vec![]
            }
            .target(),
            r
        );
    }

    proptest! {
        #[test]
        fn prop_round_trip_physical_redo(
            txn in any::<u64>(),
            op in any::<u32>(),
            addr in 0usize..1_000_000_000,
            data in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let rec = LogRecord::PhysicalRedo {
                txn: TxnId(txn),
                op: OpSeq(op),
                addr: DbAddr(addr),
                data,
            };
            let mut buf = BytesMut::new();
            rec.encode(&mut buf);
            prop_assert_eq!(LogRecord::decode(&buf).unwrap(), rec);
        }

        #[test]
        fn prop_round_trip_readlog(
            txn in any::<u64>(),
            addr in 0usize..1_000_000_000,
            len in any::<u32>(),
            cws in proptest::collection::vec(any::<u32>(), 0..8),
        ) {
            let rec = LogRecord::ReadLog {
                txn: TxnId(txn),
                addr: DbAddr(addr),
                len,
                codewords: cws,
            };
            let mut buf = BytesMut::new();
            rec.encode(&mut buf);
            prop_assert_eq!(LogRecord::decode(&buf).unwrap(), rec);
        }

        #[test]
        fn prop_frame_survives_arbitrary_records(
            which in 0usize..14,
        ) {
            let rec = rec_samples()[which].clone();
            let mut out = BytesMut::new();
            frame(&rec, &mut out);
            let (back, n) = unframe(&out).unwrap();
            prop_assert_eq!(n, out.len());
            prop_assert_eq!(back, Frame::Record(rec));
        }
    }
}
