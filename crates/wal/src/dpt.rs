//! Dirty page tracking for ping-pong checkpointing.
//!
//! Dali notes pages dirtied by logged physical updates in a dirty page
//! table (paper §2.1). With ping-pong checkpointing the two checkpoint
//! images alternate, so a page dirtied once must be written to *both*
//! images before it is clean everywhere: we keep one dirty set per image
//! and add every dirtied page to both; the checkpointer drains the set of
//! the image it is about to write.

use dali_common::PageId;
use parking_lot::Mutex;
use std::collections::HashSet;

/// A pair of dirty-page sets, one per checkpoint image.
#[derive(Default)]
pub struct DualDirtySet {
    sets: Mutex<[HashSet<PageId>; 2]>,
}

impl DualDirtySet {
    /// Empty tracker.
    pub fn new() -> DualDirtySet {
        DualDirtySet::default()
    }

    /// Note that `page` was dirtied (adds to both images' sets).
    pub fn note(&self, page: PageId) {
        let mut sets = self.sets.lock();
        sets[0].insert(page);
        sets[1].insert(page);
    }

    /// Note several pages at once.
    pub fn note_all(&self, pages: impl IntoIterator<Item = PageId>) {
        let mut sets = self.sets.lock();
        for p in pages {
            sets[0].insert(p);
            sets[1].insert(p);
        }
    }

    /// Drain the dirty set for checkpoint image `image` (0 or 1), returning
    /// the pages that must be written to that image.
    pub fn take(&self, image: usize) -> Vec<PageId> {
        assert!(image < 2);
        let mut sets = self.sets.lock();
        let mut pages: Vec<PageId> = sets[image].drain().collect();
        pages.sort_unstable();
        pages
    }

    /// Peek at the number of dirty pages for an image.
    pub fn len(&self, image: usize) -> usize {
        self.sets.lock()[image].len()
    }

    /// True if no page is dirty for `image`.
    pub fn is_empty(&self, image: usize) -> bool {
        self.len(image) == 0
    }

    /// Mark every page up to `pages` dirty (used when a fresh database is
    /// created, so the first checkpoints capture the initial image).
    pub fn note_range(&self, pages: usize) {
        self.note_all((0..pages).map(|p| PageId(p as u32)));
    }
}

/// Map a **sorted** dirty-page list (the form [`DualDirtySet::take`]
/// returns) to the sorted, deduplicated ids of the protection regions
/// those pages overlap.
///
/// This is the dirty-footprint half of delta certification: the dual
/// dirty set drains a safe superset of the pages changed since the image
/// was last certified (pages are noted to both images, so a page stays
/// dirty for an image across the *other* image's checkpoint), and the
/// regions of that superset are exactly the regions whose codewords a
/// wild-free store can have changed since then. Both sizes are powers of
/// two, so one side tiles the other: each page covers
/// `page_size / region_size` regions (≥ 1), or several pages share one
/// region when regions are larger than pages.
pub fn pages_to_regions(pages: &[PageId], page_size: usize, region_size: usize) -> Vec<usize> {
    debug_assert!(page_size.is_power_of_two() && region_size.is_power_of_two());
    debug_assert!(pages.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
    let mut regions = Vec::new();
    for &page in pages {
        let base = page.0 as usize * page_size;
        let first = base / region_size;
        let last = (base + page_size - 1) / region_size;
        for r in first..=last {
            if regions.last() != Some(&r) {
                regions.push(r);
            }
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_marks_both_images() {
        let d = DualDirtySet::new();
        d.note(PageId(3));
        assert_eq!(d.len(0), 1);
        assert_eq!(d.len(1), 1);
    }

    #[test]
    fn take_drains_only_one_image() {
        let d = DualDirtySet::new();
        d.note(PageId(1));
        d.note(PageId(2));
        let taken = d.take(0);
        assert_eq!(taken, vec![PageId(1), PageId(2)]);
        assert!(d.is_empty(0));
        assert_eq!(d.len(1), 2);
        // Image 1 still sees them on its next turn.
        assert_eq!(d.take(1), vec![PageId(1), PageId(2)]);
    }

    #[test]
    fn redirty_between_checkpoints() {
        let d = DualDirtySet::new();
        d.note(PageId(5));
        let _ = d.take(0);
        d.note(PageId(5));
        assert_eq!(d.take(0), vec![PageId(5)]);
        // Image 1 has it once (sets dedup).
        assert_eq!(d.take(1), vec![PageId(5)]);
    }

    #[test]
    fn take_is_sorted() {
        let d = DualDirtySet::new();
        d.note_all([PageId(9), PageId(1), PageId(5)]);
        assert_eq!(d.take(0), vec![PageId(1), PageId(5), PageId(9)]);
    }

    #[test]
    fn pages_to_regions_small_regions_tile_pages() {
        // 4096-byte pages, 64-byte regions: 64 regions per page.
        let regions = pages_to_regions(&[PageId(0), PageId(2)], 4096, 64);
        assert_eq!(regions.len(), 128);
        assert_eq!(regions[0], 0);
        assert_eq!(regions[63], 63);
        assert_eq!(regions[64], 128);
        assert_eq!(regions[127], 191);
        assert!(regions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pages_to_regions_large_regions_dedup_pages() {
        // 4096-byte pages, 8192-byte regions: two pages per region.
        assert_eq!(
            pages_to_regions(&[PageId(0), PageId(1), PageId(2)], 4096, 8192),
            vec![0, 1]
        );
        assert_eq!(
            pages_to_regions(&[PageId(4), PageId(5)], 4096, 8192),
            vec![2]
        );
        assert!(pages_to_regions(&[], 4096, 8192).is_empty());
    }

    #[test]
    fn note_range_covers_initial_image() {
        let d = DualDirtySet::new();
        d.note_range(4);
        assert_eq!(d.take(0).len(), 4);
        assert_eq!(d.take(1).len(), 4);
    }
}
