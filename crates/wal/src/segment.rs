//! Segment files of the system log.
//!
//! The stable log is a *directory* of fixed-capacity segment files, each
//! named by the global LSN of its first byte (`{base:020}.seg`), so the
//! chain invariant is visible in an `ls`: each segment's base equals the
//! previous segment's base plus its length. LSNs remain global byte
//! offsets — segmentation partitions the offset space without
//! renumbering it, so every LSN recorded in checkpoint metas and audit
//! records stays valid across the layout change.
//!
//! Sealed segments (every one but the last) are immutable: they end with
//! a [`crate::record::FRAME_SEAL`] frame and are never written again.
//! That is what makes bitcask-style *retirement* safe: once a certified
//! checkpoint's `CK_end` is past a sealed segment's last byte, restart
//! recovery will never read it, and it can be unlinked. Retirement is
//! crash-safe the same way `atomic_write`'s rename is: the unlink is
//! only durable after the parent directory is fsynced, and a crash point
//! between the two (`segment.retire.post_unlink`) lets tests prove both
//! post-crash states recover.

use dali_common::{DaliError, Lsn, Result};
use std::path::{Path, PathBuf};

/// File-name suffix of a log segment.
pub const SEGMENT_SUFFIX: &str = "seg";

/// A segment on disk: base LSN (== first byte's global offset) and
/// current file length in bytes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Global LSN of the segment's first byte.
    pub base: Lsn,
    /// Bytes currently in the file.
    pub len: u64,
}

impl SegmentInfo {
    /// Global LSN one past the segment's last byte.
    pub fn end(&self) -> Lsn {
        Lsn(self.base.0 + self.len)
    }
}

/// File name for the segment whose first byte is `base`.
pub fn file_name(base: Lsn) -> String {
    format!("{:020}.{SEGMENT_SUFFIX}", base.0)
}

/// Path of the segment whose first byte is `base`.
pub fn path(dir: &Path, base: Lsn) -> PathBuf {
    dir.join(file_name(base))
}

/// Parse a segment file name back to its base LSN.
pub fn parse_file_name(name: &str) -> Option<Lsn> {
    let stem = name.strip_suffix(&format!(".{SEGMENT_SUFFIX}"))?;
    if stem.len() != 20 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse::<u64>().ok().map(Lsn)
}

/// List the segments under `dir`, sorted by base LSN. Non-segment files
/// are ignored. Errors if the directory cannot be read.
pub fn list(dir: &Path) -> Result<Vec<SegmentInfo>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(base) = parse_file_name(name) else {
            continue;
        };
        out.push(SegmentInfo {
            base,
            len: entry.metadata()?.len(),
        });
    }
    out.sort_unstable_by_key(|s| s.base);
    Ok(out)
}

/// Check the chain invariant: each segment begins exactly where the
/// previous one ends. A gap means a segment was lost (or an unlink was
/// torn mid-retirement in a way that removed the wrong file) and the log
/// cannot be trusted past it.
pub fn validate_chain(segments: &[SegmentInfo]) -> Result<()> {
    for w in segments.windows(2) {
        if w[1].base != w[0].end() {
            return Err(DaliError::RecoveryFailed(format!(
                "segment chain broken: {} ends at {} but next segment starts at {}",
                file_name(w[0].base),
                w[0].end(),
                w[1].base
            )));
        }
    }
    Ok(())
}

/// The segment containing global byte offset `lsn` (or, for the log's
/// end LSN, the last segment). Errors if `lsn` predates the first
/// retained segment or lies past the end of the log.
pub fn locate(dir: &Path, lsn: Lsn) -> Result<SegmentInfo> {
    let segments = list(dir)?;
    let Some(first) = segments.first() else {
        return Err(DaliError::RecoveryFailed(format!(
            "no log segments in {}",
            dir.display()
        )));
    };
    if lsn < first.base {
        return Err(DaliError::RecoveryFailed(format!(
            "LSN {lsn} predates first retained segment {}",
            file_name(first.base)
        )));
    }
    validate_chain(&segments)?;
    let last = *segments.last().expect("non-empty");
    if lsn > last.end() {
        return Err(DaliError::RecoveryFailed(format!(
            "LSN {lsn} beyond end of log ({})",
            last.end()
        )));
    }
    // The chain is contiguous, so the segment with the greatest base at
    // or below `lsn` contains it (for the end-of-log LSN: the last one).
    Ok(*segments
        .iter()
        .rev()
        .find(|s| s.base <= lsn)
        .expect("bounds checked"))
}

/// fsync a directory so renames/unlinks/creates inside it are durable.
pub fn sync_dir(dir: &Path) -> Result<()> {
    std::fs::File::open(dir)?.sync_data()?;
    Ok(())
}

/// Truncate the log so that nothing at or past `upto` remains: unlink
/// segments based at or after `upto`, cut the containing segment, fsync
/// it and the directory. Used by prior-state recovery, which must make a
/// byte-level cut of history. A cut past the end of the log is a no-op
/// (matching `set_len(len.min(upto))` on the old single-file layout).
pub fn truncate_at(dir: &Path, upto: Lsn) -> Result<()> {
    let segments = list(dir)?;
    validate_chain(&segments)?;
    let Some(first) = segments.first() else {
        return Ok(());
    };
    if upto < first.base {
        return Err(DaliError::RecoveryFailed(format!(
            "cannot truncate to {upto}: predates first retained segment {}",
            file_name(first.base)
        )));
    }
    let mut changed = false;
    for s in &segments {
        if s.base >= upto && s.base > first.base {
            // Whole segment past the cut. The first segment is never
            // unlinked, so the log stays openable even for a cut at its
            // base (it is truncated to zero length below instead).
            std::fs::remove_file(path(dir, s.base))?;
            changed = true;
        } else if upto < s.end() {
            // Containing segment: cut it at the boundary.
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(path(dir, s.base))?;
            f.set_len(upto.0 - s.base.0)?;
            f.sync_data()?;
            changed = true;
        }
    }
    if changed {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Retire (unlink) sealed segments whose every byte is below `horizon`
/// — i.e. fully covered by a certified checkpoint. The segment based at
/// `keep_from` (the active segment) and anything after it is never
/// touched, whatever the horizon says. Returns how many segments were
/// unlinked.
///
/// Crash safety: each unlink is followed by the crash point
/// `segment.retire.post_unlink`, and the parent directory is fsynced
/// after the batch. A crash between unlink and dir-fsync can leave the
/// unlink *undone* (the file reappears) or *done*; both are benign —
/// recovery never reads below the checkpoint horizon, and a reappeared
/// segment is simply retired again next checkpoint. What the dir-fsync
/// rules out is the unlink becoming durable while a *later* rename or
/// create in the same directory is not.
pub fn retire_covered(dir: &Path, horizon: Lsn, keep_from: Lsn) -> Result<u64> {
    let segments = list(dir)?;
    let mut retired = 0u64;
    for s in &segments {
        if s.base >= keep_from || s.end() > horizon {
            continue;
        }
        std::fs::remove_file(path(dir, s.base))?;
        dali_common::crashpoint::check("segment.retire.post_unlink")?;
        retired += 1;
    }
    if retired > 0 {
        sync_dir(dir)?;
    }
    Ok(retired)
}

/// Total bytes currently on disk across all retained segments.
pub fn bytes_on_disk(dir: &Path) -> Result<u64> {
    Ok(list(dir)?.iter().map(|s| s.len).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dali-segment-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mk(dir: &Path, base: u64, len: usize) {
        std::fs::write(path(dir, Lsn(base)), vec![0u8; len]).unwrap();
    }

    #[test]
    fn names_round_trip() {
        for base in [0u64, 1, 4096, u64::MAX / 2] {
            let name = file_name(Lsn(base));
            assert_eq!(parse_file_name(&name), Some(Lsn(base)));
        }
        assert_eq!(parse_file_name("foo.seg"), None);
        assert_eq!(parse_file_name("00000000000000000000.log"), None);
        assert_eq!(parse_file_name("0.seg"), None);
    }

    #[test]
    fn list_sorts_and_ignores_strangers() {
        let dir = tmpdir("list");
        mk(&dir, 100, 50);
        mk(&dir, 0, 100);
        std::fs::write(dir.join("anchor"), b"x").unwrap();
        let segs = list(&dir).unwrap();
        assert_eq!(
            segs,
            vec![
                SegmentInfo {
                    base: Lsn(0),
                    len: 100
                },
                SegmentInfo {
                    base: Lsn(100),
                    len: 50
                },
            ]
        );
        validate_chain(&segs).unwrap();
    }

    #[test]
    fn chain_gap_is_detected() {
        let dir = tmpdir("gap");
        mk(&dir, 0, 100);
        mk(&dir, 150, 10); // gap: should start at 100
        let segs = list(&dir).unwrap();
        assert!(validate_chain(&segs).is_err());
    }

    #[test]
    fn locate_finds_containing_segment() {
        let dir = tmpdir("locate");
        mk(&dir, 0, 100);
        mk(&dir, 100, 50);
        assert_eq!(locate(&dir, Lsn(0)).unwrap().base, Lsn(0));
        assert_eq!(locate(&dir, Lsn(99)).unwrap().base, Lsn(0));
        assert_eq!(locate(&dir, Lsn(100)).unwrap().base, Lsn(100));
        // End-of-log LSN resolves to the last (active) segment.
        assert_eq!(locate(&dir, Lsn(150)).unwrap().base, Lsn(100));
        assert!(locate(&dir, Lsn(151)).is_err());
    }

    #[test]
    fn locate_rejects_retired_lsn() {
        let dir = tmpdir("retired");
        mk(&dir, 100, 50);
        let err = locate(&dir, Lsn(10)).unwrap_err().to_string();
        assert!(err.contains("predates"), "{err}");
    }

    #[test]
    fn truncate_drops_later_segments_and_cuts_containing() {
        let dir = tmpdir("trunc");
        mk(&dir, 0, 100);
        mk(&dir, 100, 50);
        mk(&dir, 150, 30);
        truncate_at(&dir, Lsn(120)).unwrap();
        let segs = list(&dir).unwrap();
        assert_eq!(
            segs,
            vec![
                SegmentInfo {
                    base: Lsn(0),
                    len: 100
                },
                SegmentInfo {
                    base: Lsn(100),
                    len: 20
                },
            ]
        );
        // Cut past the end: no-op.
        truncate_at(&dir, Lsn(10_000)).unwrap();
        assert_eq!(list(&dir).unwrap(), segs);
    }

    #[test]
    fn truncate_to_zero_keeps_one_empty_segment() {
        let dir = tmpdir("trunczero");
        mk(&dir, 0, 100);
        mk(&dir, 100, 50);
        truncate_at(&dir, Lsn::ZERO).unwrap();
        let segs = list(&dir).unwrap();
        assert_eq!(
            segs,
            vec![SegmentInfo {
                base: Lsn(0),
                len: 0
            }]
        );
    }

    #[test]
    fn retire_unlinks_only_fully_covered_sealed_segments() {
        let dir = tmpdir("retire");
        mk(&dir, 0, 100);
        mk(&dir, 100, 50);
        mk(&dir, 150, 30); // active
                           // Horizon mid-segment-2: only segment 1 is fully covered.
        let n = retire_covered(&dir, Lsn(120), Lsn(150)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(list(&dir).unwrap().first().unwrap().base, Lsn(100));
        // Horizon past everything, but the active segment is kept.
        let n = retire_covered(&dir, Lsn(10_000), Lsn(150)).unwrap();
        assert_eq!(n, 1);
        let segs = list(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].base, Lsn(150));
        assert_eq!(bytes_on_disk(&dir).unwrap(), 30);
    }

    #[test]
    fn retire_crash_point_interrupts_between_unlink_and_dir_fsync() {
        let dir = tmpdir("retirecrash");
        mk(&dir, 0, 100);
        mk(&dir, 100, 50);
        let _guard = dali_common::crashpoint::ScopedCrashpoints::new();
        dali_common::crashpoint::arm("segment.retire.post_unlink");
        let err = retire_covered(&dir, Lsn(10_000), Lsn(100))
            .unwrap_err()
            .to_string();
        assert!(err.contains("crash point tripped"), "{err}");
        // The unlink itself happened; the chain now starts at 100 and
        // still validates — exactly the state recovery must tolerate.
        let segs = list(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        validate_chain(&segs).unwrap();
    }
}
