//! TPC-B style workload (paper §5.2).
//!
//! Four tables — Branch, Teller, Account, History — each with 100-byte
//! records. The paper's sizing: 100 000 accounts, 10 000 tellers, 1 000
//! branches (ratios deliberately changed from TPC-B to limit CPU-cache
//! effects on the small tables). An *operation* updates the balance field
//! of one account, one teller and one branch, and appends a History
//! record; transactions commit every 500 operations so commit cost does
//! not dominate. A run is 50 000 operations.
//!
//! The driver maintains the TPC-B consistency invariant — the sums of
//! account, teller and branch balances all equal the sum of history
//! deltas — which doubles as a whole-database integrity check after crash
//! and corruption recovery in the test suite.

pub mod records;
pub mod varlen;

use dali_common::{DaliError, RecId, Result, TableId};
use dali_engine::{DaliEngine, TxnHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use records::{balance_of, encode_account, encode_branch, encode_history, encode_teller, REC_SIZE};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload sizing.
#[derive(Clone, Debug)]
pub struct TpcbConfig {
    pub accounts: usize,
    pub tellers: usize,
    pub branches: usize,
    /// Capacity of the history table (must hold every op of the run).
    pub history_capacity: usize,
    /// Operations per transaction (the paper commits every 500).
    pub ops_per_txn: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl TpcbConfig {
    /// The paper's configuration: 100 000 / 10 000 / 1 000, 500 ops per
    /// transaction, sized for a 50 000-op run.
    pub fn paper() -> TpcbConfig {
        TpcbConfig {
            accounts: 100_000,
            tellers: 10_000,
            branches: 1_000,
            history_capacity: 60_000,
            ops_per_txn: 500,
            seed: 0xDA11,
        }
    }

    /// Configuration for thread-scaling runs: 10% of the paper's table
    /// sizes (so per-cell setup stays cheap across a sweep) and short
    /// transactions. Commit-heavy transactions put the run in the
    /// durable-commit-dominated regime where multi-threaded overlap of
    /// commit fsyncs is visible even on a single CPU; the paper's
    /// 500-op transactions amortize commit cost away entirely.
    pub fn scale() -> TpcbConfig {
        TpcbConfig {
            accounts: 10_000,
            tellers: 1_000,
            branches: 100,
            history_capacity: 30_000,
            ops_per_txn: 10,
            seed: 0xDA11,
        }
    }

    /// A small configuration for tests: same shape, ~1% of the size.
    pub fn small() -> TpcbConfig {
        TpcbConfig {
            accounts: 1_000,
            tellers: 100,
            branches: 10,
            history_capacity: 4_096,
            ops_per_txn: 50,
            seed: 0xDA11,
        }
    }

    /// Database pages needed to hold the four tables (with page-aligned
    /// bitmap and data extents) under the given page size.
    pub fn required_pages(&self, page_size: usize) -> usize {
        let table = |cap: usize| {
            let bitmap = cap.div_ceil(32) * 4;
            let data = cap * REC_SIZE;
            dali_common::align::round_up(bitmap, page_size)
                + dali_common::align::round_up(data, page_size)
        };
        let bytes = table(self.accounts)
            + table(self.tellers)
            + table(self.branches)
            + table(self.history_capacity)
            + 4 * page_size; // slack for alignment
        bytes.div_ceil(page_size)
    }
}

/// Result of a timed run.
#[derive(Clone, Debug)]
pub struct RunStats {
    pub ops: usize,
    pub txns: usize,
    pub elapsed_secs: f64,
}

impl RunStats {
    /// Operations per second — the metric of Table 2.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed_secs
    }
}

/// Statistics from one worker thread of [`TpcbDriver::run_concurrent`].
#[derive(Clone, Debug)]
pub struct ThreadStats {
    pub thread: usize,
    pub ops: usize,
    pub txns: usize,
    /// Transactions re-run after a lock denial.
    pub retries: usize,
    /// CPU time this worker thread consumed (`CLOCK_THREAD_CPUTIME_ID`).
    pub cpu_secs: f64,
}

/// Aggregate result of [`TpcbDriver::run_concurrent`].
#[derive(Clone, Debug)]
pub struct ConcurrentStats {
    pub threads: usize,
    pub ops: usize,
    pub txns: usize,
    pub retries: usize,
    /// Wall-clock time from first spawn to last join.
    pub elapsed_secs: f64,
    /// Total CPU time summed over the worker threads.
    pub cpu_secs: f64,
    pub per_thread: Vec<ThreadStats>,
}

impl ConcurrentStats {
    /// Aggregate operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed_secs
    }

    /// CPU microseconds per operation (preemption-immune cost metric).
    pub fn cpu_us_per_op(&self) -> f64 {
        self.cpu_secs * 1e6 / self.ops as f64
    }
}

/// CPU time consumed by the calling thread, in seconds.
fn thread_cpu_seconds() -> f64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: clock_gettime with a valid clock id and out-pointer.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime failed");
    ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
}

/// Thread `k`'s contiguous share of `n` row indices.
///
/// Public so other drivers (the networked TPC-B driver in `dali-net`)
/// partition identically to the in-process one.
pub fn partition(n: usize, threads: usize, k: usize) -> std::ops::Range<usize> {
    (k * n / threads)..((k + 1) * n / threads)
}

/// RNG seed of worker `k` for a run seeded with `seed` — the per-worker
/// stream derivation shared by [`TpcbDriver::run_concurrent`] and the
/// networked driver, so both produce the same deterministic balance sums
/// for a given `(seed, workers, n_ops)` triple.
pub fn worker_seed(seed: u64, k: usize) -> u64 {
    seed.wrapping_add((k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Back-off before re-running a lock-denied transaction: a victim
/// restarts with a fresh (larger) TxnId, so the youngest-victim deadlock
/// policy dooms an immediate retry again in any repeat collision; a
/// short, growing pause breaks these retry storms. Sleeping changes only
/// timing, never the replayed operation sequence.
pub fn retry_backoff(retries: usize) {
    std::thread::sleep(Duration::from_micros(50u64 << retries.min(6)));
}

/// One worker thread's state: a slice of the account, teller and branch
/// rows plus its own RNG stream and history-ring share. In partitioned
/// mode the slices are disjoint, keeping TPC-B workers conflict-free in
/// the lock manager (protection latches on shared region boundaries
/// still contend); in contended mode every worker gets the full ranges
/// and lock conflicts are resolved by abort-and-retry. Either way a run
/// is deterministic for a given `(seed, threads)` pair: each worker's
/// operation sequence depends only on its own RNG, and retries rewind
/// it.
struct Worker {
    engine: DaliEngine,
    history: TableId,
    account_recs: Vec<RecId>,
    teller_recs: Vec<RecId>,
    branch_recs: Vec<RecId>,
    /// Global index of the first row of each partition, so history
    /// records carry table-wide indices.
    a_base: usize,
    t_base: usize,
    b_base: usize,
    ops_per_txn: usize,
    /// This worker's slice of the history table's capacity.
    ring_share: usize,
    rng: StdRng,
    ring: VecDeque<RecId>,
    /// Shared monotonic op counter feeding history record ids.
    op_counter: Arc<AtomicU64>,
    /// Contended workers exclusive-lock a record before the
    /// read-modify-write (read-for-update), because two workers taking
    /// shared locks on the same record and then upgrading deadlock every
    /// time. Partitioned workers never share rows, so they keep the
    /// plain shared-read path.
    lock_for_update: bool,
}

impl Worker {
    /// Run one transaction of `ops` operations; returns the number of
    /// retries. A lock denial aborts the transaction and re-runs it from
    /// the same RNG state. Partitioned workers only conflict with
    /// concurrent ad-hoc transactions (e.g. invariant checks); contended
    /// workers also conflict — and deadlock — with each other.
    fn run_txn(&mut self, ops: usize) -> Result<usize> {
        let margin = 2 * self.ops_per_txn + 64;
        let mut retries = 0usize;
        loop {
            let rng_snapshot = self.rng.clone();
            let txn = self.engine.begin()?;
            // Ring mutations are staged and applied only on commit so an
            // aborted transaction leaves the ring (and RNG) untouched.
            let mut inserted: Vec<RecId> = Vec::with_capacity(ops);
            let mut drop_front = 0usize;
            let res = (|| -> Result<()> {
                for _ in 0..ops {
                    let a = self.rng.gen_range(0..self.account_recs.len());
                    let t = self.rng.gen_range(0..self.teller_recs.len());
                    let b = self.rng.gen_range(0..self.branch_recs.len());
                    let delta = self.rng.gen_range(-999_999i64..=999_999);
                    for (rec, encode) in [
                        (
                            self.account_recs[a],
                            encode_account as fn(u64, i64) -> Vec<u8>,
                        ),
                        (
                            self.teller_recs[t],
                            encode_teller as fn(u64, i64) -> Vec<u8>,
                        ),
                        (
                            self.branch_recs[b],
                            encode_branch as fn(u64, i64) -> Vec<u8>,
                        ),
                    ] {
                        if self.lock_for_update {
                            txn.lock_exclusive(rec)?;
                        }
                        let cur = txn.read_vec(rec)?;
                        let bal = balance_of(&cur);
                        txn.update(rec, &encode(rec.slot.0 as u64, bal + delta))?;
                    }
                    let op = self.op_counter.fetch_add(1, Ordering::Relaxed);
                    let h = txn.insert(
                        self.history,
                        &encode_history(
                            op,
                            (self.a_base + a) as u64,
                            (self.t_base + t) as u64,
                            (self.b_base + b) as u64,
                            delta,
                        ),
                    )?;
                    inserted.push(h);
                    let live = self.ring.len() - drop_front + inserted.len();
                    if live + margin >= self.ring_share && drop_front < self.ring.len() {
                        txn.delete(self.ring[drop_front])?;
                        drop_front += 1;
                    }
                }
                Ok(())
            })();
            match res {
                Ok(()) => {
                    txn.commit()?;
                    self.ring.drain(..drop_front);
                    self.ring.extend(inserted);
                    return Ok(retries);
                }
                Err(DaliError::LockDenied { .. }) => {
                    txn.abort()?;
                    self.rng = rng_snapshot;
                    retries += 1;
                    if retries > 1_000 {
                        return Err(DaliError::InvalidArg(
                            "concurrent TPC-B worker starved: 1000 lock denials".into(),
                        ));
                    }
                    retry_backoff(retries);
                }
                Err(e) => {
                    let _ = txn.abort();
                    return Err(e);
                }
            }
        }
    }

    /// Run `n` operations in transactions of `ops_per_txn`.
    fn run(mut self, thread: usize, n: usize) -> Result<(Worker, ThreadStats)> {
        let cpu0 = thread_cpu_seconds();
        let mut done = 0usize;
        let mut txns = 0usize;
        let mut retries = 0usize;
        while done < n {
            let in_this = self.ops_per_txn.min(n - done);
            retries += self.run_txn(in_this)?;
            txns += 1;
            done += in_this;
        }
        let cpu_secs = thread_cpu_seconds() - cpu0;
        let stats = ThreadStats {
            thread,
            ops: done,
            txns,
            retries,
            cpu_secs,
        };
        Ok((self, stats))
    }
}

/// The TPC-B driver bound to an engine.
pub struct TpcbDriver {
    engine: DaliEngine,
    cfg: TpcbConfig,
    accounts: TableId,
    tellers: TableId,
    branches: TableId,
    history: TableId,
    account_recs: Vec<RecId>,
    teller_recs: Vec<RecId>,
    branch_recs: Vec<RecId>,
    rng: StdRng,
    /// Monotonic op counter (feeds history records).
    op_counter: u64,
    /// FIFO of live history records; when the table approaches capacity
    /// the oldest entry is deleted in the same transaction (circular
    /// history). Keeps unbounded benchmark loops from exhausting the
    /// heap; never triggers in the paper-sized 50 000-op run.
    history_ring: std::collections::VecDeque<RecId>,
}

impl TpcbDriver {
    /// Create the four tables and populate them with zero balances.
    pub fn setup(engine: &DaliEngine, cfg: TpcbConfig) -> Result<TpcbDriver> {
        let accounts = engine.create_table("account", REC_SIZE, cfg.accounts)?;
        let tellers = engine.create_table("teller", REC_SIZE, cfg.tellers)?;
        let branches = engine.create_table("branch", REC_SIZE, cfg.branches)?;
        let history = engine.create_table("history", REC_SIZE, cfg.history_capacity)?;

        let mut driver = TpcbDriver {
            engine: engine.clone(),
            cfg,
            accounts,
            tellers,
            branches,
            history,
            account_recs: Vec::new(),
            teller_recs: Vec::new(),
            branch_recs: Vec::new(),
            rng: StdRng::seed_from_u64(0),
            op_counter: 0,
            history_ring: std::collections::VecDeque::new(),
        };
        driver.rng = StdRng::seed_from_u64(driver.cfg.seed);

        driver.account_recs = populate(engine, accounts, driver.cfg.accounts, encode_account)?;
        driver.teller_recs = populate(engine, tellers, driver.cfg.tellers, encode_teller)?;
        driver.branch_recs = populate(engine, branches, driver.cfg.branches, encode_branch)?;
        Ok(driver)
    }

    /// Attach to an existing, already-populated database (e.g. after a
    /// crash/recovery cycle). Record ids are reconstructed positionally:
    /// population inserts rows in slot order.
    pub fn attach(engine: &DaliEngine, cfg: TpcbConfig) -> Result<TpcbDriver> {
        let accounts = engine.table("account")?;
        let tellers = engine.table("teller")?;
        let branches = engine.table("branch")?;
        let history = engine.table("history")?;
        let recs = |t: TableId, n: usize| -> Vec<RecId> {
            (0..n)
                .map(|i| RecId::new(t, dali_common::SlotId(i as u32)))
                .collect()
        };
        Ok(TpcbDriver {
            engine: engine.clone(),
            cfg: cfg.clone(),
            accounts,
            tellers,
            branches,
            history,
            account_recs: recs(accounts, cfg.accounts),
            teller_recs: recs(tellers, cfg.tellers),
            branch_recs: recs(branches, cfg.branches),
            rng: StdRng::seed_from_u64(cfg.seed),
            op_counter: 0,
            history_ring: std::collections::VecDeque::new(),
        })
    }

    /// The engine this driver runs against.
    pub fn engine(&self) -> &DaliEngine {
        &self.engine
    }

    /// Table ids (account, teller, branch, history).
    pub fn tables(&self) -> (TableId, TableId, TableId, TableId) {
        (self.accounts, self.tellers, self.branches, self.history)
    }

    /// A random account record id (for fault-injection targeting).
    pub fn random_account(&mut self) -> RecId {
        self.account_recs[self.rng.gen_range(0..self.account_recs.len())]
    }

    /// A deterministic account record id (for fault-injection tests that
    /// must corrupt the same record across separate engines).
    pub fn account(&self, i: usize) -> RecId {
        self.account_recs[i % self.account_recs.len()]
    }

    /// Execute one TPC-B operation inside `txn`.
    pub fn run_op(&mut self, txn: &TxnHandle) -> Result<()> {
        let a = self.rng.gen_range(0..self.account_recs.len());
        let t = self.rng.gen_range(0..self.teller_recs.len());
        let b = self.rng.gen_range(0..self.branch_recs.len());
        let delta = self.rng.gen_range(-999_999i64..=999_999);

        for (rec, encode) in [
            (
                self.account_recs[a],
                encode_account as fn(u64, i64) -> Vec<u8>,
            ),
            (
                self.teller_recs[t],
                encode_teller as fn(u64, i64) -> Vec<u8>,
            ),
            (
                self.branch_recs[b],
                encode_branch as fn(u64, i64) -> Vec<u8>,
            ),
        ] {
            let cur = txn.read_vec(rec)?;
            let bal = balance_of(&cur);
            txn.update(rec, &encode(rec.slot.0 as u64, bal + delta))?;
        }
        let h = txn.insert(
            self.history,
            &encode_history(self.op_counter, a as u64, t as u64, b as u64, delta),
        )?;
        self.history_ring.push_back(h);
        // Circular history: keep enough slack that deferred frees within
        // the current transaction cannot exhaust the heap.
        let margin = 2 * self.cfg.ops_per_txn + 64;
        if self.history_ring.len() + margin >= self.cfg.history_capacity {
            if let Some(old) = self.history_ring.pop_front() {
                txn.delete(old)?;
            }
        }
        self.op_counter += 1;
        Ok(())
    }

    /// Run `n` operations in transactions of `ops_per_txn`, timed.
    pub fn run_ops(&mut self, n: usize) -> Result<RunStats> {
        let start = Instant::now();
        let mut done = 0usize;
        let mut txns = 0usize;
        while done < n {
            let txn = self.engine.begin()?;
            let in_this = self.cfg.ops_per_txn.min(n - done);
            for _ in 0..in_this {
                self.run_op(&txn)?;
            }
            txn.commit()?;
            txns += 1;
            done += in_this;
        }
        Ok(RunStats {
            ops: done,
            txns,
            elapsed_secs: start.elapsed().as_secs_f64(),
        })
    }

    /// The paper's full run: 50 000 operations.
    pub fn run_paper_workload(&mut self) -> Result<RunStats> {
        self.run_ops(50_000)
    }

    /// Run `n_ops` operations split across `threads` worker threads.
    ///
    /// Each worker owns a disjoint contiguous partition of the account,
    /// teller and branch rows and its own RNG stream derived from
    /// `cfg.seed` and the thread index, so a run is deterministic for a
    /// given `(seed, threads, n_ops)` triple: the final balance sums do
    /// not depend on scheduling. Workers share the history table (ids
    /// from one atomic counter, capacity split evenly) and commit every
    /// `ops_per_txn` operations, as in the serial driver.
    ///
    /// The TPC-B invariant holds afterwards — each operation applies one
    /// delta to exactly one account, teller and branch — and is checked
    /// by callers via [`TpcbDriver::verify_invariant`].
    pub fn run_concurrent(&mut self, threads: usize, n_ops: usize) -> Result<ConcurrentStats> {
        self.run_workers(threads, n_ops, false)
    }

    /// Run `n_ops` operations split across `threads` workers that all
    /// draw from the *full* account, teller and branch ranges — the
    /// contended counterpart of [`TpcbDriver::run_concurrent`].
    ///
    /// Overlapping ranges make record-lock conflicts (and genuine
    /// deadlocks: each operation locks an account, a teller and a branch
    /// in that order, but a transaction's operations interleave those
    /// orders across rows) a routine event rather than an impossibility.
    /// A denied worker aborts, rewinds its RNG, and re-runs the
    /// transaction, so every planned operation still executes exactly
    /// once; the balance sums — and therefore the TPC-B invariant — stay
    /// deterministic for a given `(seed, threads, n_ops)` triple because
    /// each delta is applied to its row exactly once regardless of
    /// interleaving.
    pub fn run_concurrent_contended(
        &mut self,
        threads: usize,
        n_ops: usize,
    ) -> Result<ConcurrentStats> {
        self.run_workers(threads, n_ops, true)
    }

    fn run_workers(
        &mut self,
        threads: usize,
        n_ops: usize,
        contended: bool,
    ) -> Result<ConcurrentStats> {
        if threads == 0 {
            return Err(DaliError::InvalidArg("run_concurrent: zero threads".into()));
        }
        if !contended && threads > self.branch_recs.len() {
            return Err(DaliError::InvalidArg(format!(
                "run_concurrent: {threads} threads but only {} branches; \
                 a worker's branch partition would be empty",
                self.branch_recs.len()
            )));
        }

        let op_counter = Arc::new(AtomicU64::new(self.op_counter));
        // Hand each worker a contiguous slice of any history records the
        // serial driver already owns, so they stay eligible for ring
        // reclamation.
        let mut existing: VecDeque<RecId> = std::mem::take(&mut self.history_ring);
        let mut workers = Vec::with_capacity(threads);
        for k in 0..threads {
            // Contended workers share every row; partitioned workers own
            // disjoint contiguous slices.
            let (ar, tr, br) = if contended {
                (
                    0..self.account_recs.len(),
                    0..self.teller_recs.len(),
                    0..self.branch_recs.len(),
                )
            } else {
                (
                    partition(self.account_recs.len(), threads, k),
                    partition(self.teller_recs.len(), threads, k),
                    partition(self.branch_recs.len(), threads, k),
                )
            };
            let ring_take = existing.len() / (threads - k);
            workers.push(Worker {
                engine: self.engine.clone(),
                history: self.history,
                a_base: ar.start,
                t_base: tr.start,
                b_base: br.start,
                account_recs: self.account_recs[ar].to_vec(),
                teller_recs: self.teller_recs[tr].to_vec(),
                branch_recs: self.branch_recs[br].to_vec(),
                ops_per_txn: self.cfg.ops_per_txn,
                ring_share: self.cfg.history_capacity / threads,
                rng: StdRng::seed_from_u64(worker_seed(self.cfg.seed, k)),
                ring: existing.drain(..ring_take).collect(),
                op_counter: Arc::clone(&op_counter),
                lock_for_update: contended,
            });
        }

        let start = Instant::now();
        let results: Vec<Result<(Worker, ThreadStats)>> = std::thread::scope(|s| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(k, w)| {
                    let ops = n_ops / threads + usize::from(k < n_ops % threads);
                    s.spawn(move || w.run(k, ops))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let elapsed_secs = start.elapsed().as_secs_f64();

        self.op_counter = op_counter.load(Ordering::Relaxed);
        let mut per_thread = Vec::with_capacity(threads);
        let mut err = None;
        for res in results {
            match res {
                Ok((w, stats)) => {
                    // Reclaim the worker's ring so later serial ops (or
                    // another concurrent run) keep trimming history.
                    self.history_ring.extend(w.ring);
                    per_thread.push(stats);
                }
                Err(e) => err = Some(e),
            }
        }
        if let Some(e) = err {
            return Err(e);
        }
        Ok(ConcurrentStats {
            threads,
            ops: per_thread.iter().map(|t| t.ops).sum(),
            txns: per_thread.iter().map(|t| t.txns).sum(),
            retries: per_thread.iter().map(|t| t.retries).sum(),
            elapsed_secs,
            cpu_secs: per_thread.iter().map(|t| t.cpu_secs).sum(),
            per_thread,
        })
    }

    /// Check the TPC-B consistency invariant: the sums of account, teller
    /// and branch balances are equal (each history delta was applied to
    /// exactly one of each). Returns the common sum.
    pub fn verify_invariant(&self) -> Result<i64> {
        let txn = self.engine.begin()?;
        let sum = |recs: &[RecId]| -> Result<i64> {
            let mut s = 0i64;
            for &r in recs {
                s += balance_of(&txn.read_vec(r)?);
            }
            Ok(s)
        };
        let sa = sum(&self.account_recs)?;
        let st = sum(&self.teller_recs)?;
        let sb = sum(&self.branch_recs)?;
        txn.commit()?;
        if sa != st || st != sb {
            return Err(DaliError::InvalidArg(format!(
                "TPC-B invariant violated: accounts {sa}, tellers {st}, branches {sb}"
            )));
        }
        Ok(sa)
    }
}

/// Populate a table with `n` zero-balance rows (committed in batches so
/// the local logs stay small).
fn populate(
    engine: &DaliEngine,
    table: TableId,
    n: usize,
    encode: fn(u64, i64) -> Vec<u8>,
) -> Result<Vec<RecId>> {
    let mut recs = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        let txn = engine.begin()?;
        let batch_end = (i + 2_000).min(n);
        for k in i..batch_end {
            recs.push(txn.insert(table, &encode(k as u64, 0))?);
        }
        txn.commit()?;
        i = batch_end;
    }
    Ok(recs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{DaliConfig, ProtectionScheme};

    use dali_testutil::TempDir;

    fn tmpdir(name: &str) -> TempDir {
        TempDir::new(&format!("tpcb-{name}"))
    }

    /// Engine plus the guard keeping its scratch directory alive.
    fn engine(scheme: ProtectionScheme, name: &str, cfg: &TpcbConfig) -> (DaliEngine, TempDir) {
        let dir = tmpdir(name);
        let mut c = DaliConfig::small(dir.path()).with_scheme(scheme);
        c.db_pages = cfg.required_pages(c.page_size);
        let (db, _) = DaliEngine::create(c).unwrap();
        (db, dir)
    }

    #[test]
    fn setup_populates_tables() {
        let cfg = TpcbConfig::small();
        let (db, _dir) = engine(ProtectionScheme::Baseline, "setup", &cfg);
        let d = TpcbDriver::setup(&db, cfg.clone()).unwrap();
        let (a, t, b, h) = d.tables();
        assert_eq!(db.record_count(a).unwrap(), cfg.accounts);
        assert_eq!(db.record_count(t).unwrap(), cfg.tellers);
        assert_eq!(db.record_count(b).unwrap(), cfg.branches);
        assert_eq!(db.record_count(h).unwrap(), 0);
        assert_eq!(d.verify_invariant().unwrap(), 0);
    }

    #[test]
    fn ops_preserve_invariant() {
        let cfg = TpcbConfig::small();
        let (db, _dir) = engine(ProtectionScheme::DataCodeword, "inv", &cfg);
        let mut d = TpcbDriver::setup(&db, cfg).unwrap();
        let stats = d.run_ops(200).unwrap();
        assert_eq!(stats.ops, 200);
        assert_eq!(stats.txns, 4);
        d.verify_invariant().unwrap();
        let (_, _, _, h) = d.tables();
        assert_eq!(db.record_count(h).unwrap(), 200);
        assert!(db.audit().unwrap().clean());
    }

    #[test]
    fn runs_under_every_scheme() {
        for scheme in ProtectionScheme::ALL {
            let cfg = TpcbConfig::small();
            let (db, _dir) = engine(scheme, &format!("all-{scheme:?}"), &cfg);
            let mut d = TpcbDriver::setup(&db, cfg).unwrap();
            d.run_ops(60).unwrap();
            d.verify_invariant()
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TpcbConfig::small();
        let (db1, _dir1) = engine(ProtectionScheme::Baseline, "det1", &cfg);
        let mut d1 = TpcbDriver::setup(&db1, cfg.clone()).unwrap();
        d1.run_ops(100).unwrap();
        let v1 = d1.verify_invariant().unwrap();

        let (db2, _dir2) = engine(ProtectionScheme::Baseline, "det2", &cfg);
        let mut d2 = TpcbDriver::setup(&db2, cfg).unwrap();
        d2.run_ops(100).unwrap();
        assert_eq!(v1, d2.verify_invariant().unwrap());
    }

    #[test]
    fn invariant_survives_crash_recovery() {
        let cfg = TpcbConfig::small();
        let dir = tmpdir("crashinv");
        let mut dbcfg = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::ReadLogging);
        dbcfg.db_pages = cfg.required_pages(dbcfg.page_size);
        let (db, _) = DaliEngine::create(dbcfg.clone()).unwrap();
        let mut d = TpcbDriver::setup(&db, cfg.clone()).unwrap();
        d.run_ops(150).unwrap();
        db.crash();

        let (db, _) = DaliEngine::open(dbcfg).unwrap();
        let d = TpcbDriver::attach(&db, cfg).unwrap();
        d.verify_invariant().unwrap();
    }

    #[test]
    fn concurrent_preserves_invariant() {
        let cfg = TpcbConfig::small();
        let (db, _dir) = engine(ProtectionScheme::DataCodeword, "conc-inv", &cfg);
        let mut d = TpcbDriver::setup(&db, cfg).unwrap();
        let stats = d.run_concurrent(4, 400).unwrap();
        assert_eq!(stats.ops, 400);
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.per_thread.len(), 4);
        assert_eq!(stats.per_thread.iter().map(|t| t.ops).sum::<usize>(), 400);
        d.verify_invariant().unwrap();
        let (_, _, _, h) = d.tables();
        assert_eq!(db.record_count(h).unwrap(), 400);
        assert!(db.audit().unwrap().clean());
    }

    #[test]
    fn concurrent_deterministic_given_seed_and_threads() {
        let cfg = TpcbConfig::small();
        let (db1, _dir1) = engine(ProtectionScheme::Baseline, "conc-det1", &cfg);
        let mut d1 = TpcbDriver::setup(&db1, cfg.clone()).unwrap();
        d1.run_concurrent(3, 300).unwrap();
        let v1 = d1.verify_invariant().unwrap();

        let (db2, _dir2) = engine(ProtectionScheme::Baseline, "conc-det2", &cfg);
        let mut d2 = TpcbDriver::setup(&db2, cfg).unwrap();
        d2.run_concurrent(3, 300).unwrap();
        assert_eq!(v1, d2.verify_invariant().unwrap());
    }

    #[test]
    fn concurrent_runs_under_every_scheme() {
        for scheme in ProtectionScheme::ALL {
            let cfg = TpcbConfig::small();
            let (db, _dir) = engine(scheme, &format!("conc-all-{scheme:?}"), &cfg);
            let mut d = TpcbDriver::setup(&db, cfg).unwrap();
            d.run_concurrent(4, 200)
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            d.verify_invariant()
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        }
    }

    #[test]
    fn concurrent_then_serial_shares_history_ring() {
        // A long mixed run must keep the history table within capacity:
        // ring shares hand off between serial and concurrent phases.
        let cfg = TpcbConfig::small();
        let (db, _dir) = engine(ProtectionScheme::Baseline, "conc-ring", &cfg);
        let mut d = TpcbDriver::setup(&db, cfg.clone()).unwrap();
        d.run_ops(500).unwrap();
        d.run_concurrent(4, 4_000).unwrap();
        d.run_ops(500).unwrap();
        d.verify_invariant().unwrap();
        let (_, _, _, h) = d.tables();
        assert!(db.record_count(h).unwrap() <= cfg.history_capacity);
    }

    #[test]
    fn contended_preserves_invariant() {
        let mut cfg = TpcbConfig::small();
        cfg.ops_per_txn = 5; // short transactions: conflicts resolve fast
        let dir = tmpdir("cont-inv");
        // Multiple shards so the cross-shard unlock sweep is exercised
        // even on a single-CPU host (where auto-sharding picks 1).
        let mut c = DaliConfig::small(dir.path())
            .with_scheme(ProtectionScheme::DataCodeword)
            .with_lock_shards(8);
        c.db_pages = cfg.required_pages(c.page_size);
        let (db, _) = DaliEngine::create(c).unwrap();
        let mut d = TpcbDriver::setup(&db, cfg).unwrap();
        let stats = d.run_concurrent_contended(4, 400).unwrap();
        assert_eq!(stats.ops, 400);
        d.verify_invariant().unwrap();
        let (_, _, _, h) = d.tables();
        assert_eq!(db.record_count(h).unwrap(), 400);
        // Quiesced: every lock was released.
        assert_eq!(db.db().locks.locked_records(), 0);
    }

    #[test]
    fn contended_deterministic_total_given_seed_and_threads() {
        // Interleavings differ run to run, but each worker's deltas are
        // applied exactly once, so the common balance sum is a function
        // of (seed, threads, n_ops) only.
        let mut cfg = TpcbConfig::small();
        cfg.ops_per_txn = 5;
        let (db1, _dir1) = engine(ProtectionScheme::Baseline, "cont-det1", &cfg);
        let mut d1 = TpcbDriver::setup(&db1, cfg.clone()).unwrap();
        d1.run_concurrent_contended(3, 300).unwrap();
        let v1 = d1.verify_invariant().unwrap();

        let (db2, _dir2) = engine(ProtectionScheme::Baseline, "cont-det2", &cfg);
        let mut d2 = TpcbDriver::setup(&db2, cfg).unwrap();
        d2.run_concurrent_contended(3, 300).unwrap();
        assert_eq!(v1, d2.verify_invariant().unwrap());
    }

    #[test]
    fn contended_allows_more_threads_than_branches() {
        // No partitioning, so the branch-count cap does not apply.
        let mut cfg = TpcbConfig::small();
        cfg.branches = 2;
        cfg.ops_per_txn = 5;
        let (db, _dir) = engine(ProtectionScheme::Baseline, "cont-wide", &cfg);
        let mut d = TpcbDriver::setup(&db, cfg).unwrap();
        d.run_concurrent_contended(4, 100).unwrap();
        d.verify_invariant().unwrap();
    }

    #[test]
    fn concurrent_rejects_bad_thread_counts() {
        let cfg = TpcbConfig::small();
        let (db, _dir) = engine(ProtectionScheme::Baseline, "conc-bad", &cfg);
        let mut d = TpcbDriver::setup(&db, cfg.clone()).unwrap();
        assert!(d.run_concurrent(0, 10).is_err());
        // More threads than branches → empty partition, refused.
        assert!(d.run_concurrent(cfg.branches + 1, 10).is_err());
    }

    #[test]
    fn required_pages_fits() {
        let cfg = TpcbConfig::paper();
        // ~23 MB of data → a few thousand 8K pages.
        let pages = cfg.required_pages(8192);
        assert!(pages > 2000 && pages < 5000, "{pages}");
    }
}
