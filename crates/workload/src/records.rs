//! TPC-B record layouts: 100 bytes per record (paper §5.2), word-aligned
//! fields, remainder filler.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  0: id      u64
//! offset  8: balance i64            (the non-key field operations update)
//! offset 16: kind    u32            (0 account, 1 teller, 2 branch, 3 history)
//! offset 20: filler  [u8; 80]
//! ```
//!
//! History records reuse the same size with a different interpretation:
//!
//! ```text
//! offset  0: seq     u64
//! offset  8: delta   i64
//! offset 16: kind    u32 = 3
//! offset 20: account u64
//! offset 28: teller  u64
//! offset 36: branch  u64
//! offset 44: filler
//! ```

/// Record size used by every TPC-B table.
pub const REC_SIZE: usize = 100;

fn base(id: u64, balance: i64, kind: u32) -> Vec<u8> {
    let mut v = vec![0u8; REC_SIZE];
    v[0..8].copy_from_slice(&id.to_le_bytes());
    v[8..16].copy_from_slice(&balance.to_le_bytes());
    v[16..20].copy_from_slice(&kind.to_le_bytes());
    // Deterministic filler so corrupted filler bytes are detectable too.
    for (i, b) in v[20..].iter_mut().enumerate() {
        *b = (id as u8).wrapping_add(i as u8).wrapping_mul(31);
    }
    v
}

/// Encode an account record.
pub fn encode_account(id: u64, balance: i64) -> Vec<u8> {
    base(id, balance, 0)
}

/// Encode a teller record.
pub fn encode_teller(id: u64, balance: i64) -> Vec<u8> {
    base(id, balance, 1)
}

/// Encode a branch record.
pub fn encode_branch(id: u64, balance: i64) -> Vec<u8> {
    base(id, balance, 2)
}

/// Encode a history record.
pub fn encode_history(seq: u64, account: u64, teller: u64, branch: u64, delta: i64) -> Vec<u8> {
    let mut v = base(seq, delta, 3);
    v[20..28].copy_from_slice(&account.to_le_bytes());
    v[28..36].copy_from_slice(&teller.to_le_bytes());
    v[36..44].copy_from_slice(&branch.to_le_bytes());
    v
}

/// The balance (or history delta) field of a record.
pub fn balance_of(rec: &[u8]) -> i64 {
    i64::from_le_bytes(rec[8..16].try_into().expect("record too short"))
}

/// The id (or history sequence) field of a record.
pub fn id_of(rec: &[u8]) -> u64 {
    u64::from_le_bytes(rec[0..8].try_into().expect("record too short"))
}

/// The kind tag of a record.
pub fn kind_of(rec: &[u8]) -> u32 {
    u32::from_le_bytes(rec[16..20].try_into().expect("record too short"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_fields() {
        let r = encode_account(42, -1234);
        assert_eq!(r.len(), REC_SIZE);
        assert_eq!(id_of(&r), 42);
        assert_eq!(balance_of(&r), -1234);
        assert_eq!(kind_of(&r), 0);
        assert_eq!(kind_of(&encode_teller(1, 0)), 1);
        assert_eq!(kind_of(&encode_branch(1, 0)), 2);
    }

    #[test]
    fn history_fields() {
        let r = encode_history(7, 100, 200, 300, -5);
        assert_eq!(id_of(&r), 7);
        assert_eq!(balance_of(&r), -5);
        assert_eq!(kind_of(&r), 3);
        assert_eq!(u64::from_le_bytes(r[20..28].try_into().unwrap()), 100);
        assert_eq!(u64::from_le_bytes(r[28..36].try_into().unwrap()), 200);
        assert_eq!(u64::from_le_bytes(r[36..44].try_into().unwrap()), 300);
    }

    #[test]
    fn filler_is_deterministic() {
        assert_eq!(encode_account(9, 5), encode_account(9, 5));
        assert_ne!(encode_account(9, 5), encode_account(10, 5));
    }

    #[test]
    fn balance_update_changes_only_balance_bytes() {
        let a = encode_account(3, 0);
        let b = encode_account(3, 999);
        let diff: Vec<usize> = a
            .iter()
            .zip(&b)
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, _)| i)
            .collect();
        assert!(diff.iter().all(|&i| (8..16).contains(&i)), "{diff:?}");
    }
}
