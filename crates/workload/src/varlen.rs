//! Variable-length-record workload with a secondary index.
//!
//! The engine's heaps hold fixed-size records; real applications store
//! variable-length payloads by packing them into fixed slots with a
//! length header — which also produces the *non-uniform* byte content
//! that corruption-detection experiments need (uniform word-periodic
//! data sits in the XOR algebra's blind spots far too easily).
//!
//! Slot layout: `[klen: u16 LE][vlen: u16 LE][key bytes][value bytes]`
//! zero-padded to the slot size. A [`VarlenStore`] keeps a secondary
//! index `key → RecId` (an in-memory BTree, rebuilt on attach by
//! scanning allocated slots — the index is derived state, like the heap
//! allocation bitmaps), so lookups go key → slot without scanning, and
//! updates that change the value length stay in place.
//!
//! [`VarlenWorkload`] drives a deterministic seeded mix of inserts,
//! point lookups, length-changing updates, and deletes against the
//! store while maintaining a shadow map; [`VarlenWorkload::verify`]
//! checks the database against the shadow record by record — the varlen
//! analogue of the TPC-B balance invariant.

use dali_common::{DaliError, RecId, Result, TableId};
use dali_engine::{DaliEngine, TxnHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Header bytes preceding the key/value payload in every slot.
pub const VARLEN_HEADER: usize = 4;

/// Sizing and shape of a varlen workload.
#[derive(Clone, Debug)]
pub struct VarlenConfig {
    /// Fixed slot size; each record's `4 + klen + vlen` must fit.
    pub slot_size: usize,
    /// Heap capacity in slots.
    pub capacity: usize,
    /// Keys are 1..=max_key bytes.
    pub max_key: usize,
    /// Values are 0..=max_val bytes.
    pub max_val: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// RNG seed; runs are deterministic given the seed.
    pub seed: u64,
}

impl VarlenConfig {
    /// A small test configuration: 96-byte slots, short keys, values up
    /// to 64 bytes.
    pub fn small() -> VarlenConfig {
        VarlenConfig {
            slot_size: 96,
            capacity: 512,
            max_key: 12,
            max_val: 64,
            ops_per_txn: 25,
            seed: 0x7A12,
        }
    }
}

/// Encode one key/value pair into a fixed `slot_size` buffer.
pub fn encode_slot(slot_size: usize, key: &[u8], val: &[u8]) -> Result<Vec<u8>> {
    if VARLEN_HEADER + key.len() + val.len() > slot_size {
        return Err(DaliError::InvalidArg(format!(
            "varlen record {}+{} exceeds slot size {}",
            key.len(),
            val.len(),
            slot_size
        )));
    }
    let mut buf = vec![0u8; slot_size];
    buf[0..2].copy_from_slice(&(key.len() as u16).to_le_bytes());
    buf[2..4].copy_from_slice(&(val.len() as u16).to_le_bytes());
    buf[VARLEN_HEADER..VARLEN_HEADER + key.len()].copy_from_slice(key);
    buf[VARLEN_HEADER + key.len()..VARLEN_HEADER + key.len() + val.len()].copy_from_slice(val);
    Ok(buf)
}

/// Decode a slot into `(key, value)`.
pub fn decode_slot(slot: &[u8]) -> Result<(Vec<u8>, Vec<u8>)> {
    if slot.len() < VARLEN_HEADER {
        return Err(DaliError::InvalidArg("varlen slot too short".into()));
    }
    let klen = u16::from_le_bytes(slot[0..2].try_into().unwrap()) as usize;
    let vlen = u16::from_le_bytes(slot[2..4].try_into().unwrap()) as usize;
    if VARLEN_HEADER + klen + vlen > slot.len() {
        return Err(DaliError::InvalidArg(format!(
            "varlen slot header claims {klen}+{vlen} bytes in a {}-byte slot",
            slot.len()
        )));
    }
    Ok((
        slot[VARLEN_HEADER..VARLEN_HEADER + klen].to_vec(),
        slot[VARLEN_HEADER + klen..VARLEN_HEADER + klen + vlen].to_vec(),
    ))
}

/// A keyed store of variable-length records in one fixed-slot table,
/// with a secondary index from key to record id.
pub struct VarlenStore {
    engine: DaliEngine,
    table: TableId,
    slot_size: usize,
    index: BTreeMap<Vec<u8>, RecId>,
}

impl VarlenStore {
    /// Create the backing table and an empty index.
    pub fn create(engine: &DaliEngine, name: &str, cfg: &VarlenConfig) -> Result<VarlenStore> {
        let table = engine.create_table(name, cfg.slot_size, cfg.capacity)?;
        Ok(VarlenStore {
            engine: engine.clone(),
            table,
            slot_size: cfg.slot_size,
            index: BTreeMap::new(),
        })
    }

    /// The backing table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no record is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The record id a key maps to, if present.
    pub fn lookup(&self, key: &[u8]) -> Option<RecId> {
        self.index.get(key).copied()
    }

    /// Iterate the indexed keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.index.keys()
    }

    /// Insert a new key/value pair. Fails if the key exists.
    pub fn insert(&mut self, txn: &TxnHandle, key: &[u8], val: &[u8]) -> Result<RecId> {
        if self.index.contains_key(key) {
            return Err(DaliError::InvalidArg("duplicate varlen key".into()));
        }
        let rec = txn.insert(self.table, &encode_slot(self.slot_size, key, val)?)?;
        self.index.insert(key.to_vec(), rec);
        Ok(rec)
    }

    /// Read the value for `key` through the index, verifying that the
    /// slot's stored key matches the index entry (an index pointing at a
    /// slot whose key bytes disagree is itself a corruption signal).
    pub fn get(&self, txn: &TxnHandle, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let Some(rec) = self.index.get(key) else {
            return Ok(None);
        };
        let (stored_key, val) = decode_slot(&txn.read_vec(*rec)?)?;
        if stored_key != key {
            return Err(DaliError::InvalidArg(format!(
                "index points record {rec:?} at a slot holding a different key"
            )));
        }
        Ok(Some(val))
    }

    /// Replace the value for `key` (any length that fits). Returns false
    /// if the key is absent.
    pub fn update(&mut self, txn: &TxnHandle, key: &[u8], val: &[u8]) -> Result<bool> {
        let Some(rec) = self.index.get(key) else {
            return Ok(false);
        };
        txn.update(*rec, &encode_slot(self.slot_size, key, val)?)?;
        Ok(true)
    }

    /// Delete `key`'s record. Returns false if the key is absent.
    pub fn remove(&mut self, txn: &TxnHandle, key: &[u8]) -> Result<bool> {
        let Some(rec) = self.index.remove(key) else {
            return Ok(false);
        };
        txn.delete(rec)?;
        Ok(true)
    }

    /// Rebuild the secondary index by decoding every indexed record
    /// (after recovery, the heap bitmap is authoritative; the index is
    /// derived). Existing entries are discarded.
    pub fn rebuild_index(&mut self, txn: &TxnHandle, recs: &[RecId]) -> Result<()> {
        self.index.clear();
        for &rec in recs {
            let (key, _val) = decode_slot(&txn.read_vec(rec)?)?;
            self.index.insert(key, rec);
        }
        Ok(())
    }
}

/// Statistics from a varlen run.
#[derive(Clone, Debug, Default)]
pub struct VarlenStats {
    pub inserts: usize,
    pub lookups: usize,
    pub updates: usize,
    pub deletes: usize,
    pub txns: usize,
}

/// Deterministic mixed workload over a [`VarlenStore`] with a shadow
/// map for verification.
pub struct VarlenWorkload {
    pub store: VarlenStore,
    cfg: VarlenConfig,
    rng: StdRng,
    shadow: BTreeMap<Vec<u8>, Vec<u8>>,
    counter: u64,
}

impl VarlenWorkload {
    /// Create the table and an empty workload.
    pub fn setup(engine: &DaliEngine, cfg: VarlenConfig) -> Result<VarlenWorkload> {
        let store = VarlenStore::create(engine, "varlen", &cfg)?;
        let rng = StdRng::seed_from_u64(cfg.seed);
        Ok(VarlenWorkload {
            store,
            cfg,
            rng,
            shadow: BTreeMap::new(),
            counter: 0,
        })
    }

    fn fresh_key(&mut self) -> Vec<u8> {
        // Unique, variable length: a counter prefix plus noise tail.
        self.counter += 1;
        let mut key = self.counter.to_le_bytes()[..6].to_vec();
        let extra = self
            .rng
            .gen_range(0..=self.cfg.max_key.saturating_sub(6).min(6));
        for _ in 0..extra {
            key.push(self.rng.gen_range(0u8..=255));
        }
        key
    }

    fn fresh_val(&mut self) -> Vec<u8> {
        let len = self.rng.gen_range(0..=self.cfg.max_val);
        let mut val = vec![0u8; len];
        self.rng.fill(&mut val);
        val
    }

    fn random_existing_key(&mut self) -> Option<Vec<u8>> {
        if self.shadow.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.shadow.len());
        self.shadow.keys().nth(i).cloned()
    }

    /// Run `n` operations (committing every `ops_per_txn`): ~40%
    /// inserts, 30% lookups, 20% length-changing updates, 10% deletes.
    pub fn run_ops(&mut self, n: usize) -> Result<VarlenStats> {
        let mut stats = VarlenStats::default();
        let mut done = 0;
        while done < n {
            let txn = self.store.engine.begin()?;
            let batch = self.cfg.ops_per_txn.min(n - done);
            for _ in 0..batch {
                match self.rng.gen_range(0..10u32) {
                    0..=3 => {
                        if self.shadow.len() < self.cfg.capacity * 3 / 4 {
                            let (key, val) = (self.fresh_key(), self.fresh_val());
                            self.store.insert(&txn, &key, &val)?;
                            self.shadow.insert(key, val);
                            stats.inserts += 1;
                        }
                    }
                    4..=6 => {
                        if let Some(key) = self.random_existing_key() {
                            let got = self.store.get(&txn, &key)?;
                            if got.as_ref() != self.shadow.get(&key) {
                                return Err(DaliError::InvalidArg(format!(
                                    "lookup of {key:?} disagrees with the shadow"
                                )));
                            }
                            stats.lookups += 1;
                        }
                    }
                    7..=8 => {
                        if let Some(key) = self.random_existing_key() {
                            let val = self.fresh_val();
                            self.store.update(&txn, &key, &val)?;
                            self.shadow.insert(key, val);
                            stats.updates += 1;
                        }
                    }
                    _ => {
                        if let Some(key) = self.random_existing_key() {
                            self.store.remove(&txn, &key)?;
                            self.shadow.remove(&key);
                            stats.deletes += 1;
                        }
                    }
                }
                done += 1;
            }
            txn.commit()?;
            stats.txns += 1;
        }
        Ok(stats)
    }

    /// Check every shadow entry against the database through the index,
    /// and that the index holds nothing beyond the shadow.
    pub fn verify(&self) -> Result<()> {
        if self.store.len() != self.shadow.len() {
            return Err(DaliError::InvalidArg(format!(
                "index holds {} keys, shadow {}",
                self.store.len(),
                self.shadow.len()
            )));
        }
        let txn = self.store.engine.begin()?;
        for (key, val) in &self.shadow {
            match self.store.get(&txn, key)? {
                Some(got) if &got == val => {}
                other => {
                    return Err(DaliError::InvalidArg(format!(
                        "key {key:?}: expected {} bytes, got {other:?}",
                        val.len()
                    )))
                }
            }
        }
        txn.commit()
    }

    /// A record id of some current key (for corruption targeting).
    pub fn sample_rec(&mut self) -> Option<RecId> {
        let key = self.random_existing_key()?;
        self.store.lookup(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{DaliConfig, ProtectionScheme};

    fn engine(name: &str) -> (DaliEngine, dali_testutil::TempDir) {
        let dir = dali_testutil::TempDir::new(&format!("varlen-{name}"));
        let (db, _) = DaliEngine::create(
            DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::DataCodeword),
        )
        .unwrap();
        (db, dir)
    }

    #[test]
    fn slot_encoding_round_trips() {
        for (k, v) in [(&b"k"[..], &b""[..]), (b"key-longer", b"value bytes")] {
            let slot = encode_slot(64, k, v).unwrap();
            assert_eq!(slot.len(), 64);
            let (dk, dv) = decode_slot(&slot).unwrap();
            assert_eq!((dk.as_slice(), dv.as_slice()), (k, v));
        }
        assert!(encode_slot(8, b"12345", b"67890").is_err());
        assert!(decode_slot(&[255, 255, 0, 0, 0]).is_err());
    }

    #[test]
    fn store_insert_get_update_remove() {
        let (db, _dir) = engine("store");
        let mut store = VarlenStore::create(&db, "kv", &VarlenConfig::small()).unwrap();
        let txn = db.begin().unwrap();
        store.insert(&txn, b"alpha", b"1").unwrap();
        store.insert(&txn, b"beta", b"a much longer value").unwrap();
        assert_eq!(store.get(&txn, b"alpha").unwrap().unwrap(), b"1");
        assert!(store
            .update(&txn, b"alpha", b"now much longer than before")
            .unwrap());
        assert_eq!(
            store.get(&txn, b"alpha").unwrap().unwrap(),
            b"now much longer than before"
        );
        assert!(store.remove(&txn, b"beta").unwrap());
        assert_eq!(store.get(&txn, b"beta").unwrap(), None);
        assert!(!store.update(&txn, b"beta", b"x").unwrap());
        txn.commit().unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn workload_runs_and_verifies() {
        let (db, _dir) = engine("run");
        let mut wl = VarlenWorkload::setup(&db, VarlenConfig::small()).unwrap();
        let stats = wl.run_ops(600).unwrap();
        assert!(stats.inserts > 0 && stats.lookups > 0 && stats.updates > 0);
        wl.verify().unwrap();
        // And the database itself audits clean after the run.
        assert!(db.audit().unwrap().clean());
    }

    #[test]
    fn index_rebuild_matches() {
        let (db, _dir) = engine("rebuild");
        let mut wl = VarlenWorkload::setup(&db, VarlenConfig::small()).unwrap();
        wl.run_ops(200).unwrap();
        let recs: Vec<RecId> = wl.store.index.values().copied().collect();
        let before = wl.store.index.clone();
        let txn = db.begin().unwrap();
        wl.store.rebuild_index(&txn, &recs).unwrap();
        txn.commit().unwrap();
        assert_eq!(wl.store.index, before);
        wl.verify().unwrap();
    }
}
