//! Memory substrate: the database image and hardware protection.
//!
//! A Dali-style main-memory database maps the whole database into the
//! address space of the application (paper §2). This crate provides that
//! substrate:
//!
//! * [`arena`] — a page-aligned anonymous memory mapping with raw-pointer
//!   access semantics. All reads and writes go through raw pointers, never
//!   long-lived references, because the whole point of the paper is that
//!   *anyone* in the process (including buggy application code) can scribble
//!   on this memory at any time.
//! * [`image`] — the database image: the arena viewed as an array of pages,
//!   with bounds-checked copy-in/copy-out accessors and the XOR fold used by
//!   codeword computation.
//! * [`protect`] — the Hardware Protection scheme's mprotect wrapper and
//!   protection bitmap (paper §3 "Hardware Protection", after Sullivan &
//!   Stonebraker), plus call statistics for the §5.3 pages-per-operation
//!   observation.

pub mod arena;
pub mod image;
pub mod protect;

pub use arena::Arena;
pub use image::DbImage;
pub use protect::{PageProtector, ProtectStats};
