//! A page-aligned anonymous memory mapping.
//!
//! The arena is allocated with `mmap(MAP_ANONYMOUS | MAP_PRIVATE)` so that
//! it is page-aligned (a requirement for `mprotect`) and zero-initialized.
//! Access is deliberately raw: the database image is shared mutable state
//! that application code can (and, in this reproduction, deliberately does)
//! corrupt with stray writes, so we never create Rust references into it —
//! every read and write is a bounds-checked raw-pointer copy.

use dali_common::{DaliError, Result};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, Ordering};

/// A fixed-size, page-aligned, zero-initialized memory region.
///
/// `Arena` is `Send + Sync`; synchronization of *contents* is the
/// responsibility of higher layers (protection latches, the update
/// interface). Concurrent raw access to overlapping ranges is a data race
/// in the C++ sense — exactly the failure mode the paper's schemes defend
/// against — and the engine only performs it under latches.
pub struct Arena {
    ptr: NonNull<u8>,
    len: usize,
    /// True when the memory came from mmap (and must be munmap'd).
    mapped: bool,
}

// SAFETY: the arena is just memory; all access is via raw pointers with the
// caller responsible for synchronization, as documented.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl Arena {
    /// Allocate `len` bytes of page-aligned, zeroed memory.
    ///
    /// Falls back to the global allocator (with page alignment) if `mmap`
    /// fails; the fallback is still compatible with `mprotect` on Linux.
    pub fn new(len: usize) -> Result<Arena> {
        if len == 0 {
            return Err(DaliError::InvalidArg(
                "arena length must be positive".into(),
            ));
        }
        let page = os_page_size();
        let len = dali_common::align::round_up(len, page);
        // SAFETY: standard anonymous private mapping.
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_ANONYMOUS | libc::MAP_PRIVATE,
                -1,
                0,
            )
        };
        if ptr != libc::MAP_FAILED {
            let nn = NonNull::new(ptr as *mut u8)
                .ok_or_else(|| DaliError::OutOfSpace("mmap returned null".into()))?;
            return Ok(Arena {
                ptr: nn,
                len,
                mapped: true,
            });
        }
        // Fallback: aligned allocation from the global allocator.
        let layout = std::alloc::Layout::from_size_align(len, page)
            .map_err(|e| DaliError::InvalidArg(format!("bad layout: {e}")))?;
        // SAFETY: layout has non-zero size.
        let raw = unsafe { std::alloc::alloc_zeroed(layout) };
        let nn = NonNull::new(raw)
            .ok_or_else(|| DaliError::OutOfSpace(format!("allocating {len} bytes failed")))?;
        Ok(Arena {
            ptr: nn,
            len,
            mapped: false,
        })
    }

    /// Length of the arena in bytes (rounded up to the OS page size).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the arena has zero length (never the case post-construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer of the arena.
    ///
    /// This is the "direct access" door the paper worries about: anything
    /// holding this pointer can write anywhere in the database image. The
    /// fault injector uses it; well-behaved code goes through
    /// [`read`](Arena::read)/[`write`](Arena::write).
    #[inline]
    pub fn base_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    #[inline]
    fn check(&self, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(DaliError::InvalidArg(format!(
                "range {offset}+{len} out of arena bounds ({})",
                self.len
            )));
        }
        Ok(())
    }

    /// Copy `buf.len()` bytes out of the arena starting at `offset`.
    #[inline]
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.check(offset, buf.len())?;
        // SAFETY: bounds checked above; raw copy avoids creating &[u8] into
        // memory that other threads may concurrently mutate.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.ptr.as_ptr().add(offset),
                buf.as_mut_ptr(),
                buf.len(),
            );
        }
        Ok(())
    }

    /// Copy `data` into the arena at `offset`.
    #[inline]
    pub fn write(&self, offset: usize, data: &[u8]) -> Result<()> {
        self.check(offset, data.len())?;
        // SAFETY: bounds checked above.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.as_ptr().add(offset), data.len());
        }
        Ok(())
    }

    /// Read a single little-endian `u32` at a 4-byte-aligned offset.
    #[inline]
    pub fn read_u32(&self, offset: usize) -> Result<u32> {
        self.check(offset, 4)?;
        debug_assert!(offset.is_multiple_of(4));
        // SAFETY: bounds checked; alignment asserted (the base is
        // page-aligned so offset alignment suffices).
        Ok(unsafe { (self.ptr.as_ptr().add(offset) as *const u32).read() }.to_le())
    }

    /// XOR-fold the 32-bit words of `[offset, offset+len)`.
    ///
    /// `offset` and `len` must be 4-byte aligned. This is the codeword
    /// computation primitive (paper §3: "the codeword is the bitwise
    /// exclusive-or of the words in the region").
    ///
    /// The fold runs wide: after an optional one-word head that 8-aligns
    /// the pointer (the base is page-aligned, so offset alignment governs),
    /// 32-byte blocks are XOR-ed into four independent `u64` accumulators.
    /// XOR works bit-column by bit-column, so a `u64` lane just carries two
    /// 32-bit words side by side; folding the combined lane with
    /// `lo ^ hi` at the end yields exactly the XOR of all the words, while
    /// the four independent chains let LLVM auto-vectorize and keep loads
    /// in flight instead of serializing on one accumulator.
    #[inline]
    pub fn xor_fold(&self, offset: usize, len: usize) -> Result<u32> {
        self.check(offset, len)?;
        if !offset.is_multiple_of(4) || !len.is_multiple_of(4) {
            return Err(DaliError::InvalidArg(format!(
                "xor_fold range {offset}+{len} not word aligned"
            )));
        }
        let mut acc: u32 = 0;
        // SAFETY: bounds checked above; reads raw words without forming a
        // slice reference. All pointer advances stay within [offset,
        // offset+len), tracked by `rem`.
        unsafe {
            let mut p = self.ptr.as_ptr().add(offset);
            let mut rem = len;
            if !(p as usize).is_multiple_of(8) && rem >= 4 {
                acc ^= (p as *const u32).read();
                p = p.add(4);
                rem -= 4;
            }
            let mut lanes = [0u64; 4];
            while rem >= 32 {
                let q = p as *const u64;
                lanes[0] ^= q.read();
                lanes[1] ^= q.add(1).read();
                lanes[2] ^= q.add(2).read();
                lanes[3] ^= q.add(3).read();
                p = p.add(32);
                rem -= 32;
            }
            let mut acc64 = (lanes[0] ^ lanes[1]) ^ (lanes[2] ^ lanes[3]);
            while rem >= 8 {
                acc64 ^= (p as *const u64).read();
                p = p.add(8);
                rem -= 8;
            }
            // Folding lanes lo^hi is order-oblivious, so this equals the
            // word-at-a-time XOR regardless of endianness.
            acc ^= (acc64 as u32) ^ ((acc64 >> 32) as u32);
            if rem >= 4 {
                acc ^= (p as *const u32).read();
            }
        }
        Ok(acc)
    }

    /// Residue-fold the 32-bit words of `[offset, offset+len)`: their sum
    /// modulo `2^32 - 1`, canonical in `[0, 2^32 - 1)`.
    ///
    /// `offset` and `len` must be 4-byte aligned, as for
    /// [`xor_fold`](Arena::xor_fold). The kernel runs wide like the XOR
    /// path — an optional one-word head 8-aligns the pointer, then 32-byte
    /// blocks feed four independent `u64` accumulators — but addition
    /// carries across bit columns, so each `u64` load is split into its
    /// two 32-bit words (`v & MASK` + `v >> 32`) before accumulating.
    /// The fold processes at most 1 GiB between modular reductions, so the
    /// lane accumulators stay far from `u64` overflow at any arena size.
    #[inline]
    pub fn residue_fold(&self, offset: usize, len: usize) -> Result<u32> {
        self.check(offset, len)?;
        if !offset.is_multiple_of(4) || !len.is_multiple_of(4) {
            return Err(DaliError::InvalidArg(format!(
                "residue_fold range {offset}+{len} not word aligned"
            )));
        }
        const M: u64 = dali_common::config::RESIDUE_MODULUS;
        // 1 GiB = 2^25 32-byte blocks; each block adds < 2^34 per lane, so
        // a lane stays < 2^59 within a chunk.
        const CHUNK: usize = 1 << 30;
        let mut acc: u64 = 0;
        let mut off = offset;
        let mut remaining = len;
        loop {
            let chunk = remaining.min(CHUNK);
            // SAFETY: bounds checked above; reads raw words without
            // forming a slice reference. Pointer advances stay within
            // [off, off+chunk), tracked by `rem`.
            let part = unsafe {
                const MASK: u64 = 0xFFFF_FFFF;
                let mut p = self.ptr.as_ptr().add(off);
                let mut rem = chunk;
                let mut sum: u64 = 0;
                if !(p as usize).is_multiple_of(8) && rem >= 4 {
                    sum += u32::from_le((p as *const u32).read()) as u64;
                    p = p.add(4);
                    rem -= 4;
                }
                let mut lanes = [0u64; 4];
                while rem >= 32 {
                    let q = p as *const u64;
                    let v0 = u64::from_le(q.read());
                    let v1 = u64::from_le(q.add(1).read());
                    let v2 = u64::from_le(q.add(2).read());
                    let v3 = u64::from_le(q.add(3).read());
                    lanes[0] += (v0 & MASK) + (v0 >> 32);
                    lanes[1] += (v1 & MASK) + (v1 >> 32);
                    lanes[2] += (v2 & MASK) + (v2 >> 32);
                    lanes[3] += (v3 & MASK) + (v3 >> 32);
                    p = p.add(32);
                    rem -= 32;
                }
                while rem >= 8 {
                    let v = u64::from_le((p as *const u64).read());
                    sum += (v & MASK) + (v >> 32);
                    p = p.add(8);
                    rem -= 8;
                }
                if rem >= 4 {
                    sum += u32::from_le((p as *const u32).read()) as u64;
                }
                (sum + lanes[0] + lanes[1] + lanes[2] + lanes[3]) % M
            };
            acc = (acc + part) % M;
            if remaining == chunk {
                return Ok(acc as u32);
            }
            off += chunk;
            remaining -= chunk;
        }
    }

    /// One-word-at-a-time scalar reference for
    /// [`residue_fold`](Arena::residue_fold): same contract and result,
    /// kept for the `audit_scale` bench and the kernel equivalence suites.
    #[inline]
    pub fn residue_fold_scalar(&self, offset: usize, len: usize) -> Result<u32> {
        self.check(offset, len)?;
        if !offset.is_multiple_of(4) || !len.is_multiple_of(4) {
            return Err(DaliError::InvalidArg(format!(
                "residue_fold range {offset}+{len} not word aligned"
            )));
        }
        const M: u64 = dali_common::config::RESIDUE_MODULUS;
        let mut sum: u64 = 0;
        // SAFETY: bounds checked above; reads raw words without forming a
        // slice reference.
        unsafe {
            let mut p = self.ptr.as_ptr().add(offset) as *const u32;
            let end = self.ptr.as_ptr().add(offset + len) as *const u32;
            while p < end {
                sum += u32::from_le(p.read()) as u64;
                if sum >= u64::MAX - u32::MAX as u64 {
                    sum %= M; // unreachable below ~16 GiB; keeps any size safe
                }
                p = p.add(1);
            }
        }
        Ok((sum % M) as u32)
    }

    /// One-word-at-a-time scalar reference for [`xor_fold`](Arena::xor_fold):
    /// the kernel the wide path replaced, kept for the `audit_scale` bench
    /// and the kernel equivalence suites. Same contract and result.
    #[inline]
    pub fn xor_fold_scalar(&self, offset: usize, len: usize) -> Result<u32> {
        self.check(offset, len)?;
        if !offset.is_multiple_of(4) || !len.is_multiple_of(4) {
            return Err(DaliError::InvalidArg(format!(
                "xor_fold range {offset}+{len} not word aligned"
            )));
        }
        let mut acc: u32 = 0;
        // SAFETY: bounds checked above; reads raw words without forming a
        // slice reference.
        unsafe {
            let mut p = self.ptr.as_ptr().add(offset) as *const u32;
            let end = self.ptr.as_ptr().add(offset + len) as *const u32;
            while p < end {
                acc ^= p.read();
                p = p.add(1);
            }
        }
        Ok(acc)
    }

    /// Zero the whole arena.
    pub fn zero(&self) {
        // SAFETY: in-bounds by construction.
        unsafe { std::ptr::write_bytes(self.ptr.as_ptr(), 0, self.len) };
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        if self.mapped {
            // SAFETY: ptr/len came from a successful mmap.
            unsafe { libc::munmap(self.ptr.as_ptr() as *mut libc::c_void, self.len) };
        } else {
            let layout =
                std::alloc::Layout::from_size_align(self.len, os_page_size()).expect("layout");
            // SAFETY: allocated with the same layout in `new`.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr(), layout) };
        }
    }
}

/// The operating system page size, cached after the first query.
pub fn os_page_size() -> usize {
    static CACHE: AtomicPtr<()> = AtomicPtr::new(std::ptr::null_mut());
    let cached = CACHE.load(Ordering::Relaxed) as usize;
    if cached != 0 {
        return cached;
    }
    // SAFETY: sysconf is always safe to call.
    let sz = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    let sz = if sz > 0 { sz as usize } else { 4096 };
    CACHE.store(sz as *mut (), Ordering::Relaxed);
    sz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_arena_is_zeroed_and_page_aligned() {
        let a = Arena::new(10_000).unwrap();
        assert!(a.len() >= 10_000);
        assert_eq!(a.base_ptr() as usize % os_page_size(), 0);
        let mut buf = vec![0xffu8; 128];
        a.read(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_round_trips() {
        let a = Arena::new(4096).unwrap();
        let data = [1u8, 2, 3, 4, 5];
        a.write(100, &data).unwrap();
        let mut out = [0u8; 5];
        a.read(100, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn bounds_are_enforced() {
        let a = Arena::new(4096).unwrap();
        let len = a.len();
        assert!(a.write(len - 2, &[0u8; 4]).is_err());
        let mut b = [0u8; 8];
        assert!(a.read(len, &mut b).is_err());
        assert!(a.read(usize::MAX - 3, &mut b).is_err());
        // Exactly at the end is fine.
        a.write(len - 4, &[9u8; 4]).unwrap();
    }

    #[test]
    fn xor_fold_matches_manual() {
        let a = Arena::new(4096).unwrap();
        a.write(0, &0xdead_beefu32.to_le_bytes()).unwrap();
        a.write(4, &0x0101_0101u32.to_le_bytes()).unwrap();
        a.write(8, &0x0000_ffffu32.to_le_bytes()).unwrap();
        let cw = a.xor_fold(0, 12).unwrap();
        assert_eq!(cw, 0xdead_beef ^ 0x0101_0101 ^ 0x0000_ffff);
    }

    #[test]
    fn xor_fold_zero_region_is_zero() {
        let a = Arena::new(4096).unwrap();
        assert_eq!(a.xor_fold(64, 64).unwrap(), 0);
        assert_eq!(a.xor_fold(0, 0).unwrap(), 0);
    }

    #[test]
    fn xor_fold_rejects_misalignment() {
        let a = Arena::new(4096).unwrap();
        assert!(a.xor_fold(2, 8).is_err());
        assert!(a.xor_fold(0, 6).is_err());
        assert!(a.xor_fold_scalar(2, 8).is_err());
        assert!(a.xor_fold_scalar(0, 6).is_err());
    }

    /// Wide kernel == scalar reference for every word-aligned offset mod 8
    /// (exercising the alignment head) and every tail shape through a few
    /// 32-byte blocks.
    #[test]
    fn wide_xor_fold_matches_scalar_every_shape() {
        let a = Arena::new(4096).unwrap();
        let noise: Vec<u8> = (0..512u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        a.write(0, &noise).unwrap();
        for off in [0usize, 4, 8, 12, 36] {
            for len in (0..=3 * 32 + 4).step_by(4) {
                assert_eq!(
                    a.xor_fold(off, len).unwrap(),
                    a.xor_fold_scalar(off, len).unwrap(),
                    "offset {off} len {len}"
                );
            }
        }
    }

    #[test]
    fn residue_fold_matches_manual() {
        let a = Arena::new(4096).unwrap();
        a.write(0, &0xdead_beefu32.to_le_bytes()).unwrap();
        a.write(4, &0x0101_0101u32.to_le_bytes()).unwrap();
        a.write(8, &0xffff_fff0u32.to_le_bytes()).unwrap();
        let m = 0xFFFF_FFFFu64;
        let want = ((0xdead_beefu64 + 0x0101_0101 + 0xffff_fff0) % m) as u32;
        assert_eq!(a.residue_fold(0, 12).unwrap(), want);
        assert_eq!(a.residue_fold_scalar(0, 12).unwrap(), want);
        assert_eq!(a.residue_fold(64, 64).unwrap(), 0);
        assert_eq!(a.residue_fold(0, 0).unwrap(), 0);
    }

    #[test]
    fn residue_fold_canonicalizes_all_ones() {
        // A single 0xFFFF_FFFF word is congruent to 0 mod 2^32-1: the
        // canonical fold is 0, never the modulus itself.
        let a = Arena::new(4096).unwrap();
        a.write(0, &0xffff_ffffu32.to_le_bytes()).unwrap();
        assert_eq!(a.residue_fold(0, 4).unwrap(), 0);
        assert_eq!(a.residue_fold_scalar(0, 4).unwrap(), 0);
    }

    #[test]
    fn residue_fold_rejects_misalignment() {
        let a = Arena::new(4096).unwrap();
        assert!(a.residue_fold(2, 8).is_err());
        assert!(a.residue_fold(0, 6).is_err());
        assert!(a.residue_fold_scalar(2, 8).is_err());
        assert!(a.residue_fold_scalar(0, 6).is_err());
    }

    /// Wide residue kernel == scalar reference for every word-aligned
    /// offset mod 8 and every tail shape through a few 32-byte blocks.
    #[test]
    fn wide_residue_fold_matches_scalar_every_shape() {
        let a = Arena::new(4096).unwrap();
        let noise: Vec<u8> = (0..512u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
            .collect();
        a.write(0, &noise).unwrap();
        for off in [0usize, 4, 8, 12, 36] {
            for len in (0..=3 * 32 + 4).step_by(4) {
                assert_eq!(
                    a.residue_fold(off, len).unwrap(),
                    a.residue_fold_scalar(off, len).unwrap(),
                    "offset {off} len {len}"
                );
            }
        }
    }

    #[test]
    fn residue_fold_sees_paired_same_column_flip() {
        // Two identical same-direction bit flips in one column cancel in
        // the XOR fold but move the residue sum by 2^(k+1) != 0.
        let a = Arena::new(4096).unwrap();
        let before_x = a.xor_fold(0, 64).unwrap();
        let before_r = a.residue_fold(0, 64).unwrap();
        for addr in [8usize, 12] {
            let w = a.read_u32(addr).unwrap();
            a.write(addr, &(w ^ (1 << 9)).to_le_bytes()).unwrap();
        }
        assert_eq!(a.xor_fold(0, 64).unwrap(), before_x, "XOR blind");
        assert_ne!(a.residue_fold(0, 64).unwrap(), before_r, "residue sees");
    }

    #[test]
    fn read_u32_little_endian() {
        let a = Arena::new(4096).unwrap();
        a.write(8, &[0x78, 0x56, 0x34, 0x12]).unwrap();
        assert_eq!(a.read_u32(8).unwrap(), 0x1234_5678);
    }

    #[test]
    fn zero_clears() {
        let a = Arena::new(4096).unwrap();
        a.write(10, &[0xaa; 16]).unwrap();
        a.zero();
        assert_eq!(a.xor_fold(0, 4096).unwrap(), 0);
    }

    #[test]
    fn zero_length_rejected() {
        assert!(Arena::new(0).is_err());
    }
}
