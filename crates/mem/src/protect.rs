//! Hardware protection: mprotect pages, expose them around updates.
//!
//! This implements the paper's comparison scheme (§3 "Hardware
//! Protection"), which follows the *Expose Page Update Model* of Sullivan &
//! Stonebraker: all database pages are kept read-only; `beginUpdate`
//! unprotects the page(s) being updated and `endUpdate` reprotects them.
//!
//! Two aspects are separated:
//!
//! * **Cost** — real `mprotect` syscalls are issued (when
//!   [`PageProtector::new`] is constructed with `real = true`), so
//!   benchmarks pay the true syscall price this scheme is famous for.
//! * **Semantics** — a per-page expose counter doubles as a protection
//!   bitmap. The fault injector consults it via
//!   [`PageProtector::is_writable`] to decide whether a wild write would
//!   have trapped, instead of actually segfaulting the process.
//!
//! [`ProtectStats`] counts syscalls and exposed pages, reproducing the §5.3
//! observation that a TPC-B style operation touches ~11 pages when control
//!   information does not share pages with tuple data.

use crate::arena::os_page_size;
use crate::image::DbImage;
use dali_common::{DaliError, DbAddr, PageId, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for mprotect activity.
#[derive(Default, Debug)]
pub struct ProtectStats {
    /// Number of mprotect calls that made pages writable (beginUpdate side).
    pub unprotect_calls: AtomicU64,
    /// Number of mprotect calls that made pages read-only (endUpdate side).
    pub protect_calls: AtomicU64,
    /// Total pages exposed across all beginUpdate calls (with multiplicity).
    pub pages_exposed: AtomicU64,
}

impl ProtectStats {
    /// Snapshot of (unprotect, protect, pages_exposed).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.unprotect_calls.load(Ordering::Relaxed),
            self.protect_calls.load(Ordering::Relaxed),
            self.pages_exposed.load(Ordering::Relaxed),
        )
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.unprotect_calls.store(0, Ordering::Relaxed);
        self.protect_calls.store(0, Ordering::Relaxed);
        self.pages_exposed.store(0, Ordering::Relaxed);
    }
}

/// Guards the database image with page-granularity write protection.
pub struct PageProtector {
    image: Arc<DbImage>,
    /// Per-page expose counts; a page is writable iff its count is > 0 or
    /// protection is disabled. Guarded by a mutex because the counter
    /// transition and the mprotect call must be atomic together.
    counts: Mutex<ProtectorState>,
    real: bool,
    stats: ProtectStats,
}

struct ProtectorState {
    counts: Vec<u32>,
    enabled: bool,
}

impl PageProtector {
    /// Create a protector for `image`. With `real = true`, mprotect
    /// syscalls are actually issued (requires the database page size to be
    /// a multiple of the OS page size; otherwise falls back to
    /// bitmap-only).
    pub fn new(image: Arc<DbImage>, real: bool) -> PageProtector {
        let real = real && image.page_size().is_multiple_of(os_page_size());
        let pages = image.pages();
        PageProtector {
            image,
            counts: Mutex::new(ProtectorState {
                counts: vec![0; pages],
                enabled: false,
            }),
            real,
            stats: ProtectStats::default(),
        }
    }

    /// Whether real mprotect syscalls are issued.
    #[inline]
    pub fn is_real(&self) -> bool {
        self.real
    }

    /// Access the syscall statistics.
    #[inline]
    pub fn stats(&self) -> &ProtectStats {
        &self.stats
    }

    fn mprotect(&self, page: PageId, writable: bool) -> Result<()> {
        if !self.real {
            return Ok(());
        }
        let ps = self.image.page_size();
        let base = self.image.arena().base_ptr();
        let prot = if writable {
            libc::PROT_READ | libc::PROT_WRITE
        } else {
            libc::PROT_READ
        };
        // SAFETY: page is validated against image bounds by callers; the
        // arena base is page-aligned and page_size is a multiple of the OS
        // page size (checked in `new`).
        let rc = unsafe {
            libc::mprotect(
                base.add(page.0 as usize * ps) as *mut libc::c_void,
                ps,
                prot,
            )
        };
        if rc != 0 {
            return Err(DaliError::Io(std::io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Turn protection on: every page becomes read-only.
    pub fn enable(&self) -> Result<()> {
        let mut st = self.counts.lock();
        for c in st.counts.iter_mut() {
            *c = 0;
        }
        st.enabled = true;
        if self.real {
            // One syscall for the whole arena.
            let base = self.image.arena().base_ptr();
            // SAFETY: whole-arena range, page-aligned by construction.
            let rc = unsafe {
                libc::mprotect(base as *mut libc::c_void, self.image.len(), libc::PROT_READ)
            };
            if rc != 0 {
                st.enabled = false;
                return Err(DaliError::Io(std::io::Error::last_os_error()));
            }
        }
        Ok(())
    }

    /// Turn protection off: every page becomes writable.
    pub fn disable(&self) -> Result<()> {
        let mut st = self.counts.lock();
        st.enabled = false;
        if self.real {
            let base = self.image.arena().base_ptr();
            // SAFETY: whole-arena range, page-aligned by construction.
            let rc = unsafe {
                libc::mprotect(
                    base as *mut libc::c_void,
                    self.image.len(),
                    libc::PROT_READ | libc::PROT_WRITE,
                )
            };
            if rc != 0 {
                return Err(DaliError::Io(std::io::Error::last_os_error()));
            }
        }
        Ok(())
    }

    /// Whether protection is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.counts.lock().enabled
    }

    /// Make the pages overlapping `[addr, addr+len)` writable
    /// (beginUpdate side of the Expose Page Update Model).
    pub fn expose(&self, addr: DbAddr, len: usize) -> Result<()> {
        let pages = self.image.pages_overlapping(addr, len);
        let mut st = self.counts.lock();
        if !st.enabled {
            return Ok(());
        }
        for page in pages {
            let idx = page.0 as usize;
            if idx >= st.counts.len() {
                return Err(DaliError::InvalidArg(format!("page {page} out of range")));
            }
            st.counts[idx] += 1;
            self.stats.pages_exposed.fetch_add(1, Ordering::Relaxed);
            if st.counts[idx] == 1 {
                self.stats.unprotect_calls.fetch_add(1, Ordering::Relaxed);
                self.mprotect(page, true)?;
            }
        }
        Ok(())
    }

    /// Reprotect the pages overlapping `[addr, addr+len)` (endUpdate side).
    pub fn reprotect(&self, addr: DbAddr, len: usize) -> Result<()> {
        let pages = self.image.pages_overlapping(addr, len);
        let mut st = self.counts.lock();
        if !st.enabled {
            return Ok(());
        }
        for page in pages {
            let idx = page.0 as usize;
            if idx >= st.counts.len() || st.counts[idx] == 0 {
                return Err(DaliError::InvalidArg(format!(
                    "reprotect of page {page} without matching expose"
                )));
            }
            st.counts[idx] -= 1;
            if st.counts[idx] == 0 {
                self.stats.protect_calls.fetch_add(1, Ordering::Relaxed);
                self.mprotect(page, false)?;
            }
        }
        Ok(())
    }

    /// Would a write to `page` succeed right now? (Used by the fault
    /// injector to simulate the hardware trap without crashing the
    /// process.)
    pub fn is_writable(&self, page: PageId) -> bool {
        let st = self.counts.lock();
        !st.enabled || st.counts.get(page.0 as usize).copied().unwrap_or(0) > 0
    }
}

impl Drop for PageProtector {
    fn drop(&mut self) {
        // Leave the arena writable so the image can be dropped/reused freely.
        let _ = self.disable();
    }
}

/// Measure protect/unprotect pairs per second, reproducing Table 1 of the
/// paper: `pages` pages are protected and then unprotected, repeated
/// `reps` times; the result is pairs per wall-clock second.
///
/// The paper used 2000 pages and 50 repetitions.
pub fn measure_protect_pairs(pages: usize, reps: usize) -> Result<f64> {
    let ps = os_page_size();
    let image = Arc::new(DbImage::new(pages, ps)?);
    // Touch every page so the mapping is populated before timing.
    for p in 0..pages {
        image.write(DbAddr(p * ps), &[1])?;
    }
    let base = image.arena().base_ptr();
    let start = std::time::Instant::now();
    for _ in 0..reps {
        for p in 0..pages {
            // SAFETY: in-bounds page within the arena.
            let addr = unsafe { base.add(p * ps) } as *mut libc::c_void;
            let rc = unsafe { libc::mprotect(addr, ps, libc::PROT_READ) };
            if rc != 0 {
                return Err(DaliError::Io(std::io::Error::last_os_error()));
            }
            let rc = unsafe { libc::mprotect(addr, ps, libc::PROT_READ | libc::PROT_WRITE) };
            if rc != 0 {
                return Err(DaliError::Io(std::io::Error::last_os_error()));
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    Ok((pages * reps) as f64 / elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(real: bool) -> (Arc<DbImage>, PageProtector) {
        let image = Arc::new(DbImage::new(8, os_page_size()).unwrap());
        let prot = PageProtector::new(Arc::clone(&image), real);
        (image, prot)
    }

    #[test]
    fn disabled_protector_lets_everything_through() {
        let (_img, p) = setup(false);
        assert!(!p.is_enabled());
        assert!(p.is_writable(PageId(0)));
        p.expose(DbAddr(0), 10).unwrap();
        p.reprotect(DbAddr(0), 10).unwrap();
    }

    #[test]
    fn enable_makes_pages_unwritable() {
        let (_img, p) = setup(false);
        p.enable().unwrap();
        assert!(!p.is_writable(PageId(0)));
        assert!(!p.is_writable(PageId(7)));
    }

    #[test]
    fn expose_reprotect_cycle_with_bitmap() {
        let (_img, p) = setup(false);
        p.enable().unwrap();
        p.expose(DbAddr(10), 16).unwrap();
        assert!(p.is_writable(PageId(0)));
        assert!(!p.is_writable(PageId(1)));
        p.reprotect(DbAddr(10), 16).unwrap();
        assert!(!p.is_writable(PageId(0)));
    }

    #[test]
    fn nested_exposes_refcount() {
        let (_img, p) = setup(false);
        p.enable().unwrap();
        p.expose(DbAddr(0), 8).unwrap();
        p.expose(DbAddr(16), 8).unwrap(); // same page
        p.reprotect(DbAddr(0), 8).unwrap();
        assert!(p.is_writable(PageId(0)), "still exposed once");
        p.reprotect(DbAddr(16), 8).unwrap();
        assert!(!p.is_writable(PageId(0)));
        let (unprot, prot, exposed) = p.stats().snapshot();
        assert_eq!(unprot, 1, "one 0->1 transition");
        assert_eq!(prot, 1, "one 1->0 transition");
        assert_eq!(exposed, 2);
    }

    #[test]
    fn unmatched_reprotect_is_an_error() {
        let (_img, p) = setup(false);
        p.enable().unwrap();
        assert!(p.reprotect(DbAddr(0), 8).is_err());
    }

    #[test]
    fn cross_page_expose_touches_both_pages() {
        let (img, p) = setup(false);
        p.enable().unwrap();
        let ps = img.page_size();
        p.expose(DbAddr(ps - 4), 8).unwrap();
        assert!(p.is_writable(PageId(0)));
        assert!(p.is_writable(PageId(1)));
        assert!(!p.is_writable(PageId(2)));
        p.reprotect(DbAddr(ps - 4), 8).unwrap();
    }

    #[test]
    fn real_mprotect_round_trip() {
        let (img, p) = setup(true);
        assert!(p.is_real());
        p.enable().unwrap();
        // Writing through the image while exposed must succeed (this would
        // SIGSEGV if expose did not really mprotect).
        p.expose(DbAddr(100), 4).unwrap();
        img.write(DbAddr(100), &[1, 2, 3, 4]).unwrap();
        p.reprotect(DbAddr(100), 4).unwrap();
        // Reading a protected page is fine.
        let mut b = [0u8; 4];
        img.read(DbAddr(100), &mut b).unwrap();
        assert_eq!(b, [1, 2, 3, 4]);
        p.disable().unwrap();
        img.write(DbAddr(100), &[9]).unwrap();
    }

    #[test]
    fn stats_reset() {
        let (_img, p) = setup(false);
        p.enable().unwrap();
        p.expose(DbAddr(0), 4).unwrap();
        p.reprotect(DbAddr(0), 4).unwrap();
        p.stats().reset();
        assert_eq!(p.stats().snapshot(), (0, 0, 0));
    }

    #[test]
    fn measure_pairs_runs() {
        // Tiny sizes to keep the test fast; just verifies plumbing.
        let rate = measure_protect_pairs(16, 2).unwrap();
        assert!(rate > 0.0);
    }
}
