//! The database image: the arena viewed as an array of pages.
//!
//! The image is the unit the checkpointer copies to disk page by page and
//! the unit `mprotect` guards. Record data is addressed by flat [`DbAddr`]
//! and may span page boundaries (Dali stores objects larger than a page
//! contiguously, paper §2).

use crate::arena::Arena;
use dali_common::{CodewordAlgebraKind, DaliError, DbAddr, PageId, Result};

/// The in-memory database image.
pub struct DbImage {
    arena: Arena,
    page_size: usize,
    pages: usize,
}

impl DbImage {
    /// Create a zeroed image of `pages` pages of `page_size` bytes each.
    pub fn new(pages: usize, page_size: usize) -> Result<DbImage> {
        if !page_size.is_power_of_two() {
            return Err(DaliError::InvalidArg(format!(
                "page size {page_size} must be a power of two"
            )));
        }
        let arena = Arena::new(pages * page_size)?;
        Ok(DbImage {
            arena,
            page_size,
            pages,
        })
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages.
    #[inline]
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Total size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.pages * self.page_size
    }

    /// True if the image holds no pages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// The underlying arena (for the protector and the fault injector).
    #[inline]
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    #[inline]
    fn check(&self, addr: DbAddr, len: usize) -> Result<()> {
        if addr.0.checked_add(len).is_none_or(|end| end > self.len()) {
            return Err(DaliError::InvalidArg(format!(
                "range {addr}+{len} out of image bounds ({})",
                self.len()
            )));
        }
        Ok(())
    }

    /// Copy bytes out of the image.
    #[inline]
    pub fn read(&self, addr: DbAddr, buf: &mut [u8]) -> Result<()> {
        self.check(addr, buf.len())?;
        self.arena.read(addr.0, buf)
    }

    /// Copy bytes into the image. This is the *physical write* primitive;
    /// only the prescribed update interface (beginUpdate/endUpdate) and
    /// recovery should call it.
    #[inline]
    pub fn write(&self, addr: DbAddr, data: &[u8]) -> Result<()> {
        self.check(addr, data.len())?;
        self.arena.write(addr.0, data)
    }

    /// Read a page into `buf` (which must be exactly one page long).
    pub fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(DaliError::InvalidArg(format!(
                "page buffer is {} bytes, page size is {}",
                buf.len(),
                self.page_size
            )));
        }
        self.read(page.base(self.page_size), buf)
    }

    /// Overwrite a page from `buf` (which must be exactly one page long).
    pub fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(DaliError::InvalidArg(format!(
                "page buffer is {} bytes, page size is {}",
                buf.len(),
                self.page_size
            )));
        }
        self.write(page.base(self.page_size), buf)
    }

    /// XOR-fold the words of `[addr, addr+len)` — the codeword computation
    /// primitive. `addr` and `len` must be 4-byte aligned.
    #[inline]
    pub fn xor_fold(&self, addr: DbAddr, len: usize) -> Result<u32> {
        self.check(addr, len)?;
        self.arena.xor_fold(addr.0, len)
    }

    /// [`xor_fold`](Self::xor_fold) through the one-word-at-a-time kernel
    /// — the baseline the wide kernel is benchmarked against.
    #[inline]
    pub fn xor_fold_scalar(&self, addr: DbAddr, len: usize) -> Result<u32> {
        self.check(addr, len)?;
        self.arena.xor_fold_scalar(addr.0, len)
    }

    /// Residue-fold the words of `[addr, addr+len)`: their sum modulo
    /// `2^32 - 1`, canonical in `[0, 2^32 - 1)`. Same alignment contract
    /// as [`xor_fold`](Self::xor_fold).
    #[inline]
    pub fn residue_fold(&self, addr: DbAddr, len: usize) -> Result<u32> {
        self.check(addr, len)?;
        self.arena.residue_fold(addr.0, len)
    }

    /// [`residue_fold`](Self::residue_fold) through the one-word-at-a-time
    /// kernel — the baseline the wide kernel is benchmarked against.
    #[inline]
    pub fn residue_fold_scalar(&self, addr: DbAddr, len: usize) -> Result<u32> {
        self.check(addr, len)?;
        self.arena.residue_fold_scalar(addr.0, len)
    }

    /// Fold `[addr, addr+len)` under the given codeword algebra.
    #[inline]
    pub fn fold(&self, kind: CodewordAlgebraKind, addr: DbAddr, len: usize) -> Result<u32> {
        match kind {
            CodewordAlgebraKind::XorFold => self.xor_fold(addr, len),
            CodewordAlgebraKind::Residue => self.residue_fold(addr, len),
        }
    }

    /// [`fold`](Self::fold) through the one-word-at-a-time kernels.
    #[inline]
    pub fn fold_scalar(&self, kind: CodewordAlgebraKind, addr: DbAddr, len: usize) -> Result<u32> {
        match kind {
            CodewordAlgebraKind::XorFold => self.xor_fold_scalar(addr, len),
            CodewordAlgebraKind::Residue => self.residue_fold_scalar(addr, len),
        }
    }

    /// The pages overlapped by `[addr, addr+len)`.
    pub fn pages_overlapping(&self, addr: DbAddr, len: usize) -> Vec<PageId> {
        dali_common::align::split_by_chunks(addr.0, len, self.page_size)
            .map(|(ci, _, _)| PageId(ci as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> DbImage {
        DbImage::new(8, 4096).unwrap()
    }

    #[test]
    fn geometry() {
        let i = img();
        assert_eq!(i.page_size(), 4096);
        assert_eq!(i.pages(), 8);
        assert_eq!(i.len(), 32768);
        assert!(!i.is_empty());
    }

    #[test]
    fn page_round_trip() {
        let i = img();
        let mut page = vec![0u8; 4096];
        page[0] = 0xab;
        page[4095] = 0xcd;
        i.write_page(PageId(3), &page).unwrap();
        let mut out = vec![0u8; 4096];
        i.read_page(PageId(3), &mut out).unwrap();
        assert_eq!(out, page);
        // Neighboring pages untouched.
        i.read_page(PageId(2), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn page_buffer_size_enforced() {
        let i = img();
        let mut small = vec![0u8; 100];
        assert!(i.read_page(PageId(0), &mut small).is_err());
        assert!(i.write_page(PageId(0), &small).is_err());
    }

    #[test]
    fn cross_page_write_and_read() {
        let i = img();
        let data = vec![7u8; 100];
        // Straddle pages 0 and 1.
        i.write(DbAddr(4096 - 50), &data).unwrap();
        let mut out = vec![0u8; 100];
        i.read(DbAddr(4096 - 50), &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(
            i.pages_overlapping(DbAddr(4096 - 50), 100),
            vec![PageId(0), PageId(1)]
        );
    }

    #[test]
    fn bounds() {
        let i = img();
        assert!(i.write(DbAddr(i.len()), &[1]).is_err());
        assert!(i.read_page(PageId(8), &mut vec![0u8; 4096]).is_err());
    }

    #[test]
    fn xor_fold_detects_change() {
        let i = img();
        let before = i.xor_fold(DbAddr(0), 64).unwrap();
        i.write(DbAddr(8), &[1, 0, 0, 0]).unwrap();
        let after = i.xor_fold(DbAddr(0), 64).unwrap();
        assert_ne!(before, after);
        assert_eq!(after, before ^ 1);
    }

    #[test]
    fn fold_dispatches_by_algebra() {
        let i = img();
        i.write(DbAddr(8), &0x8000_0001u32.to_le_bytes()).unwrap();
        i.write(DbAddr(12), &0x8000_0002u32.to_le_bytes()).unwrap();
        for kind in CodewordAlgebraKind::ALL {
            let direct = match kind {
                CodewordAlgebraKind::XorFold => i.xor_fold(DbAddr(0), 64).unwrap(),
                CodewordAlgebraKind::Residue => i.residue_fold(DbAddr(0), 64).unwrap(),
            };
            assert_eq!(i.fold(kind, DbAddr(0), 64).unwrap(), direct);
            assert_eq!(i.fold_scalar(kind, DbAddr(0), 64).unwrap(), direct);
        }
        // The two algebras genuinely differ on this content.
        assert_ne!(
            i.fold(CodewordAlgebraKind::XorFold, DbAddr(0), 64).unwrap(),
            i.fold(CodewordAlgebraKind::Residue, DbAddr(0), 64).unwrap()
        );
    }

    #[test]
    fn pages_overlapping_single() {
        let i = img();
        assert_eq!(i.pages_overlapping(DbAddr(10), 16), vec![PageId(0)]);
        assert_eq!(i.pages_overlapping(DbAddr(8191), 1), vec![PageId(1)]);
    }

    #[test]
    fn bad_page_size_rejected() {
        assert!(DbImage::new(4, 1000).is_err());
    }
}
