//! Shared test support.
//!
//! Tests used to key scratch directories on `std::process::id()` alone,
//! which collides when successive `cargo test` invocations recycle PIDs
//! and leaks a directory per test run. [`TempDir`] fixes both: the name
//! is unique per instance (pid + process-wide counter + creation time)
//! and the directory is removed when the value drops.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A scratch directory unique to one test, removed on drop.
///
/// Keep the value alive as long as the directory is needed — binding it
/// to `_` drops it immediately and deletes the directory under whatever
/// was about to use it.
#[must_use = "dropping a TempDir deletes its directory"]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `$TMPDIR/dali-test-<name>-<pid>-<seq>-<nanos>`.
    pub fn new(name: &str) -> TempDir {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path = std::env::temp_dir().join(format!(
            "dali-test-{name}-{}-{}-{nanos}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&path).expect("create test tempdir");
        TempDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Release ownership without deleting — the directory survives for
    /// post-mortem inspection.
    pub fn into_path(self) -> PathBuf {
        let p = self.path.clone();
        std::mem::forget(self);
        p
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_cleaned_up() {
        let a = TempDir::new("x");
        let b = TempDir::new("x");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("f"), b"data").unwrap();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }

    #[test]
    fn into_path_keeps_the_directory() {
        let d = TempDir::new("keep");
        let p = d.into_path();
        assert!(p.is_dir());
        std::fs::remove_dir_all(p).unwrap();
    }
}
