//! [`CodewordProtection`]: the per-scheme protection façade.
//!
//! Bundles region geometry, the codeword table, and the protection-latch
//! table, and implements the read/update protocols of each scheme:
//!
//! | Scheme | update latch | read path |
//! |---|---|---|
//! | Baseline / MemoryProtection | none | plain copy |
//! | DataCodeword / ReadLogging | shared | plain copy (+ read log in the engine) |
//! | CwReadLogging | exclusive (write-as-read folds the whole region) | plain copy + read log with codewords |
//! | DeferredMaintenance | shared (audits drain shard-by-shard under the stripe latch) | plain copy |
//! | ReadPrecheck | exclusive | [`checked_read`](CodewordProtection::checked_read) |
//!
//! Codeword *maintenance* (the delta published at `endUpdate`) is
//! identical for every codeword scheme, and generic over the configured
//! [`CodewordAlgebraKind`] — the XOR fold or the mod-(2^32−1) residue
//! code (see [`crate::algebra`]). The deferred scheme queues its deltas
//! in a sharded, coalescing dirty set ([`crate::deferred`]) instead of
//! touching the codeword table at `endUpdate`.

use crate::algebra;
use crate::audit::{self, AuditReport};
use crate::deferred::{DeferredConfig, DeferredSet, DeferredStatsSnapshot};
use crate::latch::{LatchMode, LatchTable};
use crate::parity::{ParityGroupId, ParityStatsSnapshot, ParityStripe};
use crate::region::{RegionGeometry, RegionId};
use crate::table::CodewordTable;
use dali_common::{CodewordAlgebraKind, DaliError, DbAddr, ProtectionScheme, Result};
use dali_mem::DbImage;

/// Why a parity repair declined to rebuild and the caller must fall back
/// to log-based recovery (the bottom rung of the repair ladder).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairFallback {
    /// No parity stripe is configured for this protection.
    NotEnabled,
    /// The group's parity buffer no longer folds to its maintained
    /// codeword: the stripe itself took a wild write (or a torn update),
    /// so its bytes cannot be trusted for reconstruction.
    StaleParity {
        /// The stale group.
        group: ParityGroupId,
    },
    /// Another member of the same parity group also fails its codeword
    /// check — a double fault; one XOR accumulator cannot disentangle
    /// two unknowns.
    SiblingCorrupt {
        /// The second corrupt region.
        region: RegionId,
    },
    /// The reconstructed bytes still do not fold to the region's
    /// maintained codeword (e.g. the corruption also reached the
    /// codeword table, or a delta was lost); nothing was written.
    VerifyFailed {
        /// The region whose rebuild failed verification.
        region: RegionId,
    },
}

/// Codeword state and latches for one database image.
pub struct CodewordProtection {
    scheme: ProtectionScheme,
    geom: RegionGeometry,
    table: CodewordTable,
    latches: LatchTable,
    /// Deferred-maintenance dirty set: per-shard maps of
    /// `region → accumulated XOR delta` awaiting application (only for
    /// [`ProtectionScheme::DeferredMaintenance`]).
    deferred: Option<DeferredSet>,
    /// Parity stripe for online repair (see [`crate::parity`]); present
    /// when the config enables a parity group size and the scheme
    /// maintains codewords. Updaters enqueue byte deltas next to their
    /// codeword deltas, under the same shared latch bracket.
    parity: Option<ParityStripe>,
    /// Worker count for full-image scans (audits, resync, the initial
    /// table fold); ≥ 1. Per-region scans are unaffected.
    audit_threads: usize,
    /// Longest contiguous run of regions audited under one exclusive
    /// latch bracket ([`dali_common::DaliConfig::audit_latch_run`]); ≥ 1.
    /// `1` is the paper's latch-per-region cadence.
    latch_run: usize,
    /// The codeword algebra folds, deltas, and the table live in.
    kind: CodewordAlgebraKind,
}

impl CodewordProtection {
    /// Build protection state for `image` with default deferred-set
    /// sizing. The codeword table is folded from the current image
    /// contents.
    pub fn new(
        image: &DbImage,
        scheme: ProtectionScheme,
        region_size: usize,
        regions_per_latch: usize,
    ) -> Result<CodewordProtection> {
        Self::with_deferred(
            image,
            scheme,
            region_size,
            regions_per_latch,
            DeferredConfig::default(),
        )
    }

    /// [`new`](Self::new) with explicit deferred dirty-set sizing
    /// (ignored unless the scheme defers maintenance). Full-image scans
    /// stay serial; use [`with_config`](Self::with_config) to parallelize
    /// them.
    pub fn with_deferred(
        image: &DbImage,
        scheme: ProtectionScheme,
        region_size: usize,
        regions_per_latch: usize,
        deferred_cfg: DeferredConfig,
    ) -> Result<CodewordProtection> {
        Self::with_config(
            image,
            scheme,
            region_size,
            regions_per_latch,
            deferred_cfg,
            1,
            CodewordAlgebraKind::XorFold,
        )
    }

    /// Fully-parameterized constructor: deferred dirty-set sizing, the
    /// worker count used for every full-image scan this protection runs —
    /// [`audit`](Self::audit), [`resync`](Self::resync), and the initial
    /// codeword-table fold (`audit_threads` is clamped to ≥ 1) — and the
    /// codeword algebra every fold, delta, and table slot lives in.
    pub fn with_config(
        image: &DbImage,
        scheme: ProtectionScheme,
        region_size: usize,
        regions_per_latch: usize,
        deferred_cfg: DeferredConfig,
        audit_threads: usize,
        kind: CodewordAlgebraKind,
    ) -> Result<CodewordProtection> {
        let audit_threads = audit_threads.max(1);
        let geom = RegionGeometry::new(image.len(), region_size)?;
        let table = if scheme.maintains_codewords() {
            CodewordTable::from_image_parallel(image, &geom, audit_threads, kind)?
        } else {
            // Baseline / mprotect schemes keep an (unused) empty table.
            CodewordTable::new_zeroed(0, kind)
        };
        let latches = LatchTable::new(geom.num_regions(), regions_per_latch);
        let deferred = scheme
            .defers_maintenance()
            .then(|| DeferredSet::new(deferred_cfg, kind));
        Ok(CodewordProtection {
            scheme,
            geom,
            table,
            latches,
            deferred,
            parity: None,
            audit_threads,
            latch_run: 1,
            kind,
        })
    }

    /// Attach a parity stripe of `group_size` regions per group (no-op
    /// when `group_size == 0` or the scheme maintains no codewords —
    /// parity rides the codeword update path). The stripe is built from
    /// the image's current contents; the caller must be quiesced, as at
    /// construction and recovery.
    pub fn enable_parity(
        &mut self,
        image: &DbImage,
        group_size: usize,
        shards: usize,
        watermark: usize,
    ) -> Result<()> {
        if group_size == 0 || !self.scheme.maintains_codewords() {
            self.parity = None;
            return Ok(());
        }
        let stripe = ParityStripe::new(&self.geom, group_size, shards, watermark, self.kind)?;
        stripe.resync(image, &self.geom)?;
        self.parity = Some(stripe);
        Ok(())
    }

    /// The parity stripe, when online repair is enabled.
    #[inline]
    pub fn parity(&self) -> Option<&ParityStripe> {
        self.parity.as_ref()
    }

    /// Rebuild one parity group from the image under the group's
    /// exclusive latch bracket: drain its shards (pending deltas are
    /// superseded by the fresh image read) and recompute buffer + parity
    /// codeword. Used by checkpoint certification to heal a group whose
    /// stripe memory took a wild write, after the member regions
    /// themselves audited clean. No-op without a stripe.
    pub fn resync_parity_group(&self, image: &DbImage, group: ParityGroupId) -> Result<()> {
        let Some(stripe) = &self.parity else {
            return Ok(());
        };
        let (first, last) = stripe.members(group);
        self.latches
            .with_span(first, last, LatchMode::Exclusive, || {
                stripe.drain_group(group);
                stripe.rebuild_group(image, &self.geom, group)
            })
    }

    /// Parity-stripe gauges and lifetime counters (zeroed default when
    /// no stripe is configured).
    pub fn parity_stats(&self) -> ParityStatsSnapshot {
        self.parity
            .as_ref()
            .map_or_else(ParityStatsSnapshot::default, |p| p.snapshot())
    }

    /// The codeword algebra this protection folds and maintains under.
    #[inline]
    pub fn kind(&self) -> CodewordAlgebraKind {
        self.kind
    }

    /// Worker count used for full-image scans (≥ 1).
    #[inline]
    pub fn audit_threads(&self) -> usize {
        self.audit_threads
    }

    /// Longest latch-bracketed region run audits take (≥ 1).
    #[inline]
    pub fn latch_run(&self) -> usize {
        self.latch_run
    }

    /// Set the audit latch-run bound (clamped to ≥ 1). The audit report
    /// is identical for every bound; only the number of latch brackets a
    /// sweep takes changes.
    pub fn set_latch_run(&mut self, run: usize) {
        self.latch_run = run.max(1);
    }

    /// The active scheme.
    #[inline]
    pub fn scheme(&self) -> ProtectionScheme {
        self.scheme
    }

    /// Region geometry.
    #[inline]
    pub fn geometry(&self) -> &RegionGeometry {
        &self.geom
    }

    /// The maintained codeword table.
    #[inline]
    pub fn table(&self) -> &CodewordTable {
        &self.table
    }

    /// The protection-latch table.
    #[inline]
    pub fn latches(&self) -> &LatchTable {
        &self.latches
    }

    /// Latch mode an updater must hold across its beginUpdate/endUpdate
    /// window.
    #[inline]
    pub fn update_latch_mode(&self) -> LatchMode {
        match self.scheme {
            ProtectionScheme::ReadPrecheck => LatchMode::Exclusive,
            // CW ReadLogging treats every write as a read (§4.3): the
            // write-as-read record's codeword is a fold of the *whole*
            // pre-update region, which only describes a consistent state
            // if no other updater is mutating the region mid-fold.
            ProtectionScheme::CwReadLogging => LatchMode::Exclusive,
            // Deferred maintenance holds the latch shared across the
            // write+enqueue bracket so an auditor holding it exclusively
            // knows every landed byte has its delta queued — the delta
            // may lag in the dirty set, never be missing. That one
            // shared CAS replaces the old global update quiesce that
            // audits used to impose.
            ProtectionScheme::DeferredMaintenance => LatchMode::Shared,
            s if s.maintains_codewords() => LatchMode::Shared,
            _ => LatchMode::None,
        }
    }

    /// Publish the codeword delta for a completed physical update.
    ///
    /// `waddr`/`old_widened` are the word-aligned address and before-image
    /// captured at `beginUpdate` (see
    /// [`dali_common::align::widen_to_words`]); the image already contains
    /// the after-image. The caller must still hold the update latch span.
    pub fn apply_update(&self, image: &DbImage, waddr: DbAddr, old_widened: &[u8]) -> Result<()> {
        if !self.scheme.maintains_codewords() || old_widened.is_empty() {
            return Ok(());
        }
        let mut new_bytes = Vec::new();
        for (region, s, l) in self.geom.split(waddr, old_widened.len()) {
            let rel = s.0 - waddr.0;
            let old_fold = algebra::fold(self.kind, &old_widened[rel..rel + l]);
            let new_fold = image.fold(self.kind, s, l)?;
            let delta = self.kind.delta_of_folds(old_fold, new_fold);
            match &self.deferred {
                Some(set) => {
                    if set.push(region, delta) {
                        // Shard over its high-watermark: the pusher pays
                        // for the drain (backpressure). Applying queued
                        // deltas needs no latch — each was enqueued after
                        // its bytes landed, and the table publish is a
                        // commuting atomic (fetch_xor / CAS'd mod-add).
                        set.drain_region(region, &self.table);
                    }
                }
                None => self.table.apply_delta(region, delta),
            }
            if let Some(stripe) = &self.parity {
                // Parity byte delta, enqueued under the same latch
                // bracket as the codeword delta: old ⊕ new of this
                // region piece, positioned at its region-relative
                // offset.
                new_bytes.resize(l, 0);
                image.read(s, &mut new_bytes)?;
                let region_rel = s.0 - self.geom.region_base(region).0;
                if stripe.record_delta(region, region_rel, &old_widened[rel..rel + l], &new_bytes) {
                    stripe.drain_region(region);
                }
            }
        }
        Ok(())
    }

    /// Apply every queued deferred-maintenance delta to the codeword
    /// table, shard by shard. Safe concurrently with updaters: a delta
    /// enters the dirty set only after its image bytes landed, so the
    /// maintained codeword only ever *lags* the image by what remains
    /// queued — it is never wrong once drained. No-op for non-deferred
    /// schemes.
    pub fn drain_deferred(&self) {
        if let Some(set) = &self.deferred {
            set.drain_all(&self.table);
        }
        if let Some(stripe) = &self.parity {
            stripe.drain_all();
        }
    }

    /// Drain the dirty-set shard holding `region`'s deltas (the
    /// incremental catch-up path used by audits: latch the region
    /// exclusively, drain its shard, then fold and compare).
    pub fn drain_region(&self, region: RegionId) {
        if let Some(set) = &self.deferred {
            set.drain_region(region, &self.table);
        }
        if let Some(stripe) = &self.parity {
            stripe.drain_region(region);
        }
    }

    /// Number of *distinct dirty regions* in the deferred dirty set
    /// (diagnostics). Deltas coalesce per region, so this counts map
    /// entries, not raw queued deltas — see
    /// [`deferred_pending_deltas`](Self::deferred_pending_deltas) for the
    /// raw count.
    pub fn deferred_len(&self) -> usize {
        self.deferred.as_ref().map_or(0, |set| set.dirty_regions())
    }

    /// Total accumulated (not yet drained) raw deltas across the dirty
    /// set, before coalescing.
    pub fn deferred_pending_deltas(&self) -> u64 {
        self.deferred.as_ref().map_or(0, |set| set.pending_deltas())
    }

    /// Deferred dirty-set gauges and lifetime counters (zeroed default
    /// for non-deferred schemes).
    pub fn deferred_stats(&self) -> DeferredStatsSnapshot {
        self.deferred
            .as_ref()
            .map_or_else(DeferredStatsSnapshot::default, |set| set.snapshot())
    }

    /// Reverse the codeword effect of an update that had already been
    /// applied (used when rolling back a physical update whose
    /// codeword-applied flag is clear: the undo image restores the bytes,
    /// and this restores the codeword).
    ///
    /// Identical math to [`apply_update`](Self::apply_update) for *every*
    /// algebra: the rollback is itself a directed transition (current
    /// bytes → restored bytes), and `apply_update` computes the directed
    /// delta from the passed before-image to what the image now holds —
    /// which for a rollback is exactly the inverse of the original
    /// update's delta (for XOR the two coincide because deltas are
    /// self-inverse). Provided as a named alias for clarity at call sites.
    #[inline]
    pub fn unapply_update(&self, image: &DbImage, waddr: DbAddr, old_widened: &[u8]) -> Result<()> {
        self.apply_update(image, waddr, old_widened)
    }

    /// Read with precheck (paper §3.1): take the protection latches of the
    /// overlapped regions exclusively, verify each region's codeword, and
    /// copy the data out while still holding the latches.
    pub fn checked_read(&self, image: &DbImage, addr: DbAddr, buf: &mut [u8]) -> Result<()> {
        let (first, last) = self.geom.region_span(addr, buf.len());
        self.latches
            .with_span(first, last, LatchMode::Exclusive, || {
                for r in first..=last {
                    if let Some(c) = audit::check_region(image, &self.geom, &self.table, r)? {
                        return Err(DaliError::CorruptionDetected {
                            addr: c.addr,
                            len: c.len,
                            expected: c.expected,
                            actual: c.actual,
                        });
                    }
                }
                image.read(addr, buf)
            })
    }

    /// Read and return the codewords *computed from the contents* of the
    /// overlapped regions, consistent with the copied data (taken under an
    /// exclusive latch span). Used by the CW ReadLog scheme (§4.3
    /// extension): the logged codeword describes the data the transaction
    /// actually saw, so that recovery can tell whether the recovering
    /// image reproduces it. (Logging the *maintained* codeword instead
    /// would blind recovery to direct corruption, which by definition
    /// leaves the maintained codeword stale.)
    pub fn read_with_codewords(
        &self,
        image: &DbImage,
        addr: DbAddr,
        buf: &mut [u8],
    ) -> Result<Vec<u32>> {
        let (first, last) = self.geom.region_span(addr, buf.len());
        self.latches
            .with_span(first, last, LatchMode::Exclusive, || {
                image.read(addr, buf)?;
                (first..=last)
                    .map(|r| {
                        image.fold(self.kind, self.geom.region_base(r), self.geom.region_size())
                    })
                    .collect()
            })
    }

    /// Compute the contents codewords of the regions overlapping
    /// `[addr, addr+len)` under an exclusive latch span (the write-as-read
    /// record of the CW ReadLog scheme).
    ///
    /// Callers that already hold the span — an updater inside its
    /// beginUpdate/endUpdate bracket (the latches are not reentrant), or
    /// single-threaded recovery — must use
    /// [`compute_region_codewords`](Self::compute_region_codewords)
    /// instead.
    pub fn snapshot_region_codewords(
        &self,
        image: &DbImage,
        addr: DbAddr,
        len: usize,
    ) -> Result<Vec<u32>> {
        let (first, last) = self.geom.region_span(addr, len);
        self.latches
            .with_span(first, last, LatchMode::Exclusive, || {
                (first..=last)
                    .map(|r| {
                        image.fold(self.kind, self.geom.region_base(r), self.geom.region_size())
                    })
                    .collect()
            })
    }

    /// Audit the whole database (region-by-region, latched; for the
    /// deferred scheme each region's dirty-set shard is drained under
    /// that region's exclusive latch before the fold — no global
    /// quiesce). Runs with the configured
    /// [`audit_threads`](Self::audit_threads) stripe workers; the report is
    /// identical to a serial scan regardless of the worker count.
    pub fn audit(&self, image: &DbImage) -> Result<AuditReport> {
        self.audit_with_threads(image, self.audit_threads)
    }

    /// [`audit`](Self::audit) with an explicit worker count (used by the
    /// `audit_scale` bench and the parallel-vs-serial equivalence suite).
    pub fn audit_with_threads(&self, image: &DbImage, threads: usize) -> Result<AuditReport> {
        if !self.scheme.maintains_codewords() {
            // Nothing to audit against; report an empty, clean pass.
            return Ok(AuditReport::default());
        }
        audit::audit_all_parallel(
            image,
            &self.geom,
            &self.table,
            &self.latches,
            self.deferred.as_ref(),
            threads,
            self.latch_run,
        )
    }

    /// Audit only the given regions (sorted ascending, deduplicated) —
    /// the delta-certification sweep. Runs with the configured
    /// [`audit_threads`](Self::audit_threads) and latch-run bound; the
    /// report is identical to restricting a full sweep to `regions`.
    /// Non-codeword schemes report an empty, clean pass.
    pub fn audit_regions(&self, image: &DbImage, regions: &[RegionId]) -> Result<AuditReport> {
        if !self.scheme.maintains_codewords() {
            return Ok(AuditReport::default());
        }
        audit::audit_regions(
            image,
            &self.geom,
            &self.table,
            &self.latches,
            self.deferred.as_ref(),
            regions,
            self.audit_threads,
            self.latch_run,
        )
    }

    /// Sorted, deduplicated ids of regions with queued deferred deltas
    /// (empty for non-deferred schemes). A delta certification must audit
    /// these in addition to the checkpoint's dirty-page footprint: a
    /// queued delta means the region's maintained codeword lags the
    /// image.
    pub fn deferred_dirty_regions(&self) -> Vec<RegionId> {
        self.deferred
            .as_ref()
            .map_or_else(Vec::new, |set| set.dirty_region_ids())
    }

    /// Recompute every codeword from the image (after recovery rebuilds or
    /// repairs the image), striped across the configured
    /// [`audit_threads`](Self::audit_threads). Any queued deferred deltas
    /// are superseded and dropped.
    pub fn resync(&self, image: &DbImage) -> Result<()> {
        if let Some(set) = &self.deferred {
            set.clear();
        }
        if self.scheme.maintains_codewords() {
            self.table
                .recompute_all_parallel(image, &self.geom, self.audit_threads)?;
        }
        if let Some(stripe) = &self.parity {
            stripe.resync(image, &self.geom)?;
        }
        Ok(())
    }

    /// Attempt to rebuild `region` in place from its parity group.
    ///
    /// Takes the group's protection latches exclusively (quiescing
    /// updaters for exactly that span), drains both the codeword and
    /// parity shards covering the group, then walks the fallback ladder:
    ///
    /// 1. parity buffer must fold to its maintained parity codeword
    ///    (else [`RepairFallback::StaleParity`]);
    /// 2. every sibling region must pass its codeword check (else
    ///    [`RepairFallback::SiblingCorrupt`] — a double fault);
    /// 3. the reconstruction `parity ⊕ (⊕ siblings)` must fold to the
    ///    region's *maintained* codeword (else
    ///    [`RepairFallback::VerifyFailed`]).
    ///
    /// Only a rebuild passing all three is written back — the returned
    /// `Ok(Ok(bytes))` means the region's bytes once again match the
    /// codeword the prescribed-update history maintained, with no log
    /// replay. `Ok(Err(reason))` leaves the image untouched; the caller
    /// falls back to checkpoint + WAL recovery.
    pub fn repair_region(
        &self,
        image: &DbImage,
        region: RegionId,
    ) -> Result<std::result::Result<usize, RepairFallback>> {
        let Some(stripe) = &self.parity else {
            return Ok(Err(RepairFallback::NotEnabled));
        };
        let group = stripe.group_of(region);
        let (first, last) = stripe.members(group);
        self.latches
            .with_span(first, last, LatchMode::Exclusive, || {
                if let Some(set) = &self.deferred {
                    let mut shards: Vec<usize> = (first..=last).map(|r| set.shard_of(r)).collect();
                    shards.sort_unstable();
                    shards.dedup();
                    for s in shards {
                        set.drain_shard(s, &self.table);
                    }
                }
                stripe.drain_group(group);
                if !stripe.verify_group(group) {
                    return Ok(Err(RepairFallback::StaleParity { group }));
                }
                for r in first..=last {
                    if r == region {
                        continue;
                    }
                    if audit::check_region(image, &self.geom, &self.table, r)?.is_some() {
                        return Ok(Err(RepairFallback::SiblingCorrupt { region: r }));
                    }
                }
                let mut rebuilt = vec![0u8; self.geom.region_size()];
                stripe.reconstruct(image, &self.geom, region, &mut rebuilt)?;
                if algebra::fold(self.kind, &rebuilt) != self.table.get(region) {
                    return Ok(Err(RepairFallback::VerifyFailed { region }));
                }
                image.write(self.geom.region_base(region), &rebuilt)?;
                Ok(Ok(rebuilt.len()))
            })
    }

    /// Compute the codeword of the region containing `addr` directly from
    /// the image, with no latching. For callers that are single-threaded
    /// (recovery) or already hold an exclusive span over the regions (an
    /// updater inside its beginUpdate/endUpdate bracket).
    pub fn compute_region_codewords(
        &self,
        image: &DbImage,
        addr: DbAddr,
        len: usize,
    ) -> Result<Vec<u32>> {
        let (first, last) = self.geom.region_span(addr, len);
        (first..=last)
            .map(|r| image.fold(self.kind, self.geom.region_base(r), self.geom.region_size()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(scheme: ProtectionScheme) -> (DbImage, CodewordProtection) {
        let image = DbImage::new(4, 4096).unwrap();
        let prot = CodewordProtection::new(&image, scheme, 64, 1).unwrap();
        (image, prot)
    }

    /// Simulate one prescribed update: capture widened before-image, write,
    /// publish delta.
    fn prescribed_update(image: &DbImage, prot: &CodewordProtection, addr: DbAddr, data: &[u8]) {
        let (ws, wl) = dali_common::align::widen_to_words(addr.0, data.len());
        let mut old = vec![0u8; wl];
        image.read(DbAddr(ws), &mut old).unwrap();
        image.write(addr, data).unwrap();
        prot.apply_update(image, DbAddr(ws), &old).unwrap();
    }

    #[test]
    fn update_latch_modes_per_scheme() {
        use ProtectionScheme::*;
        assert_eq!(setup(Baseline).1.update_latch_mode(), LatchMode::None);
        assert_eq!(
            setup(MemoryProtection).1.update_latch_mode(),
            LatchMode::None
        );
        assert_eq!(setup(DataCodeword).1.update_latch_mode(), LatchMode::Shared);
        assert_eq!(setup(ReadLogging).1.update_latch_mode(), LatchMode::Shared);
        assert_eq!(
            setup(ReadPrecheck).1.update_latch_mode(),
            LatchMode::Exclusive
        );
    }

    #[test]
    fn maintained_updates_keep_audit_clean() {
        let (image, prot) = setup(ProtectionScheme::DataCodeword);
        prescribed_update(&image, &prot, DbAddr(101), &[1, 2, 3, 4, 5]);
        prescribed_update(&image, &prot, DbAddr(60), &[9; 10]); // crosses regions
        assert!(prot.audit(&image).unwrap().clean());
    }

    #[test]
    fn unaligned_cross_region_update_maintains_all_regions() {
        let (image, prot) = setup(ProtectionScheme::DataCodeword);
        // 3 regions: [64..128), [128..192), [192..256); update 100..=200.
        prescribed_update(&image, &prot, DbAddr(101), &[0xabu8; 100]);
        assert!(prot.audit(&image).unwrap().clean());
    }

    #[test]
    fn wild_write_fails_checked_read() {
        let (image, prot) = setup(ProtectionScheme::ReadPrecheck);
        prescribed_update(&image, &prot, DbAddr(128), &[1, 2, 3, 4]);
        // Stray write bypassing the interface:
        image.write(DbAddr(130), &[0xff]).unwrap();
        let mut buf = [0u8; 8];
        let err = prot
            .checked_read(&image, DbAddr(128), &mut buf)
            .unwrap_err();
        assert!(matches!(err, DaliError::CorruptionDetected { .. }));
    }

    #[test]
    fn checked_read_passes_on_clean_region_even_if_other_region_corrupt() {
        let (image, prot) = setup(ProtectionScheme::ReadPrecheck);
        image.write(DbAddr(1000), &[0xff]).unwrap(); // corrupt region 15
        let mut buf = [0u8; 8];
        prot.checked_read(&image, DbAddr(0), &mut buf).unwrap();
    }

    #[test]
    fn read_with_codewords_returns_per_region_words() {
        let (image, prot) = setup(ProtectionScheme::CwReadLogging);
        prescribed_update(&image, &prot, DbAddr(60), &[5u8; 10]);
        let mut buf = [0u8; 10];
        let cws = prot
            .read_with_codewords(&image, DbAddr(60), &mut buf)
            .unwrap();
        assert_eq!(cws.len(), 2);
        assert_eq!(buf, [5u8; 10]);
        let computed = prot
            .compute_region_codewords(&image, DbAddr(60), 10)
            .unwrap();
        assert_eq!(cws, computed);
    }

    #[test]
    fn unapply_restores_codeword_on_rollback() {
        let (image, prot) = setup(ProtectionScheme::DataCodeword);
        let addr = DbAddr(256);
        let (ws, wl) = dali_common::align::widen_to_words(addr.0, 6);
        let mut old = vec![0u8; wl];
        image.read(DbAddr(ws), &mut old).unwrap();
        image.write(addr, &[1, 2, 3, 4, 5, 6]).unwrap();
        prot.apply_update(&image, DbAddr(ws), &old).unwrap();
        assert!(prot.audit(&image).unwrap().clean());

        // Roll back: capture the *current* widened bytes as the new "old",
        // restore the original bytes, unapply.
        let mut cur = vec![0u8; wl];
        image.read(DbAddr(ws), &mut cur).unwrap();
        image.write(DbAddr(ws), &old).unwrap();
        prot.unapply_update(&image, DbAddr(ws), &cur).unwrap();
        assert!(prot.audit(&image).unwrap().clean());
    }

    #[test]
    fn baseline_scheme_skips_maintenance() {
        let (image, prot) = setup(ProtectionScheme::Baseline);
        prescribed_update(&image, &prot, DbAddr(0), &[1, 2, 3]);
        assert_eq!(prot.table().len(), 0);
        assert!(prot.audit(&image).unwrap().clean());
    }

    #[test]
    fn deferred_maintenance_queues_until_drain() {
        let (image, prot) = setup(ProtectionScheme::DeferredMaintenance);
        // Updaters hold the latch shared across write+enqueue so audits
        // can drain per region under the exclusive latch (no quiesce).
        assert_eq!(prot.update_latch_mode(), LatchMode::Shared);
        prescribed_update(&image, &prot, DbAddr(100), &[1, 2, 3, 4]);
        assert_eq!(prot.deferred_len(), 1);
        assert_eq!(prot.deferred_pending_deltas(), 1);
        // Without draining, the table is stale: a raw sweep (audit_all
        // with no dirty set wired in) would flag the region.
        let raw = crate::audit::audit_all(
            &image,
            prot.geometry(),
            prot.table(),
            prot.latches(),
            None,
            1,
        )
        .unwrap();
        assert!(!raw.clean(), "queued delta not yet applied");
        prot.drain_deferred();
        assert_eq!(prot.deferred_len(), 0);
        assert_eq!(prot.deferred_pending_deltas(), 0);
        assert!(prot.audit(&image).unwrap().clean());
    }

    #[test]
    fn deferred_drain_is_idempotent_and_order_free() {
        let (image, prot) = setup(ProtectionScheme::DeferredMaintenance);
        prescribed_update(&image, &prot, DbAddr(0), &[1, 1, 1, 1]);
        prescribed_update(&image, &prot, DbAddr(4), &[2, 2, 2, 2]);
        prescribed_update(&image, &prot, DbAddr(0), &[3, 3, 3, 3]);
        // Three raw deltas, but regions 0 and 4 share region 0 of the
        // 64-byte geometry: the dirty set coalesces them into one entry.
        assert_eq!(prot.deferred_len(), 1, "coalesced to one dirty region");
        assert_eq!(prot.deferred_pending_deltas(), 3);
        prot.drain_deferred();
        prot.drain_deferred(); // second drain: nothing left
        assert!(prot.audit(&image).unwrap().clean());
        assert!(prot.deferred_stats().coalesced_deltas >= 2);
    }

    #[test]
    fn deferred_resync_clears_queue() {
        let (image, prot) = setup(ProtectionScheme::DeferredMaintenance);
        prescribed_update(&image, &prot, DbAddr(8), &[9, 9, 9, 9]);
        assert_eq!(prot.deferred_len(), 1);
        prot.resync(&image).unwrap();
        assert_eq!(prot.deferred_len(), 0);
        assert_eq!(prot.deferred_pending_deltas(), 0);
        assert!(prot.audit(&image).unwrap().clean());
    }

    #[test]
    fn deferred_audit_drains_incrementally() {
        let (image, prot) = setup(ProtectionScheme::DeferredMaintenance);
        prescribed_update(&image, &prot, DbAddr(100), &[4, 5, 6]);
        prescribed_update(&image, &prot, DbAddr(900), &[7, 8]);
        assert_eq!(prot.deferred_len(), 2);
        // The audit itself performs the catch-up, region by region.
        assert!(prot.audit(&image).unwrap().clean());
        assert_eq!(prot.deferred_len(), 0);
        assert_eq!(prot.deferred_pending_deltas(), 0);
    }

    #[test]
    fn deferred_drain_region_is_partial() {
        let image = DbImage::new(4, 4096).unwrap();
        let prot = CodewordProtection::with_deferred(
            &image,
            ProtectionScheme::DeferredMaintenance,
            64,
            1,
            crate::deferred::DeferredConfig {
                shards: 4,
                watermark: 0,
            },
        )
        .unwrap();
        // A probe set with the same shard count gives the region→shard
        // map; pick a region that hashes away from region 0.
        let probe = crate::deferred::DeferredSet::new(
            crate::deferred::DeferredConfig {
                shards: 4,
                watermark: 0,
            },
            CodewordAlgebraKind::XorFold,
        );
        let other = (1..prot.geometry().num_regions())
            .find(|&r| probe.shard_of(r) != probe.shard_of(0))
            .expect("some region in another shard");
        prescribed_update(&image, &prot, DbAddr(4), &[1, 2, 3]);
        prescribed_update(&image, &prot, DbAddr(64 * other + 4), &[4, 5]);
        assert_eq!(prot.deferred_len(), 2);
        prot.drain_region(0);
        assert_eq!(prot.deferred_len(), 1, "only shard(0) drained");
        assert!(prot.audit(&image).unwrap().clean());
    }

    #[test]
    fn parallel_audit_equals_serial_with_deferred_queue_and_corruption() {
        let image = DbImage::new(4, 4096).unwrap();
        let prot = CodewordProtection::with_config(
            &image,
            ProtectionScheme::DeferredMaintenance,
            64,
            1,
            crate::deferred::DeferredConfig {
                shards: 4,
                watermark: 0,
            },
            4,
            CodewordAlgebraKind::XorFold,
        )
        .unwrap();
        assert_eq!(prot.audit_threads(), 4);
        // Maintained updates queue deltas; stray writes corrupt.
        prescribed_update(&image, &prot, DbAddr(100), &[1, 2, 3, 4, 5]);
        prescribed_update(&image, &prot, DbAddr(5000), &[6, 7]);
        image.write(DbAddr(300), &[0xee]).unwrap();
        image.write(DbAddr(3 * 4096 + 9), &[0xdd]).unwrap();
        // The parallel audit (threads = 4) must both absorb the queued
        // deltas and report exactly what a fresh serial pass reports.
        let par = prot.audit(&image).unwrap();
        let serial = prot.audit_with_threads(&image, 1).unwrap();
        assert_eq!(par.corrupt, serial.corrupt);
        assert_eq!(par.regions_checked, serial.regions_checked);
        assert_eq!(par.corrupt.len(), 2);
        assert_eq!(prot.deferred_len(), 0, "parallel audit drained the set");
    }

    #[test]
    fn parallel_construction_and_resync_match_serial_table() {
        let image = DbImage::new(2, 4096).unwrap();
        let noise: Vec<u8> = (0..image.len() as u32)
            .map(|i| (i.wrapping_mul(2246822519) >> 9) as u8)
            .collect();
        image.write(DbAddr(0), &noise).unwrap();
        let serial =
            CodewordProtection::new(&image, ProtectionScheme::DataCodeword, 64, 1).unwrap();
        let par = CodewordProtection::with_config(
            &image,
            ProtectionScheme::DataCodeword,
            64,
            1,
            DeferredConfig::default(),
            3,
            CodewordAlgebraKind::XorFold,
        )
        .unwrap();
        for r in 0..serial.geometry().num_regions() {
            assert_eq!(serial.table().get(r), par.table().get(r), "region {r}");
        }
        image.write(DbAddr(40), &[0xaa; 8]).unwrap(); // external repair path
        par.resync(&image).unwrap();
        assert!(par.audit(&image).unwrap().clean());
    }

    #[test]
    fn audit_regions_matches_full_sweep_on_subset() {
        let (image, mut prot) = setup(ProtectionScheme::DataCodeword);
        prot.set_latch_run(8);
        assert_eq!(prot.latch_run(), 8);
        image.write(DbAddr(130), &[0xbe]).unwrap(); // corrupt region 2
        image.write(DbAddr(3000), &[0xef]).unwrap(); // corrupt region 46
        let full = prot.audit(&image).unwrap();
        assert_eq!(full.corrupt.len(), 2);
        // A subset sweep over the dirty footprint reports exactly the
        // full sweep's findings restricted to that footprint.
        let sub = prot.audit_regions(&image, &[1, 2, 3, 46]).unwrap();
        assert_eq!(sub.corrupt, full.corrupt);
        assert_eq!(sub.regions_checked, 4);
        // Regions outside the footprint are not consulted.
        let miss = prot.audit_regions(&image, &[0, 10, 11]).unwrap();
        assert!(miss.clean());
    }

    #[test]
    fn deferred_dirty_regions_feed_delta_sweeps() {
        let (image, prot) = setup(ProtectionScheme::DeferredMaintenance);
        prescribed_update(&image, &prot, DbAddr(100), &[1, 2, 3]); // region 1
        prescribed_update(&image, &prot, DbAddr(900), &[7, 8]); // region 14
        let dirty = prot.deferred_dirty_regions();
        assert_eq!(dirty, vec![1, 14]);
        // Sweeping exactly the dirty regions absorbs the queued deltas.
        assert!(prot.audit_regions(&image, &dirty).unwrap().clean());
        assert_eq!(prot.deferred_len(), 0);
        assert!(prot.deferred_dirty_regions().is_empty());
        // Non-codeword schemes: empty dirty set, clean no-op sweeps.
        let (image, prot) = setup(ProtectionScheme::Baseline);
        assert!(prot.deferred_dirty_regions().is_empty());
        assert!(prot.audit_regions(&image, &[0, 1]).unwrap().clean());
    }

    fn setup_algebra(
        scheme: ProtectionScheme,
        kind: CodewordAlgebraKind,
    ) -> (DbImage, CodewordProtection) {
        let image = DbImage::new(4, 4096).unwrap();
        let prot = CodewordProtection::with_config(
            &image,
            scheme,
            64,
            1,
            DeferredConfig::default(),
            1,
            kind,
        )
        .unwrap();
        (image, prot)
    }

    #[test]
    fn residue_protection_maintains_and_audits() {
        for scheme in [
            ProtectionScheme::DataCodeword,
            ProtectionScheme::DeferredMaintenance,
            ProtectionScheme::ReadPrecheck,
        ] {
            let (image, prot) = setup_algebra(scheme, CodewordAlgebraKind::Residue);
            assert_eq!(prot.kind(), CodewordAlgebraKind::Residue);
            assert_eq!(prot.table().kind(), CodewordAlgebraKind::Residue);
            prescribed_update(&image, &prot, DbAddr(101), &[1, 2, 3, 4, 5]);
            prescribed_update(&image, &prot, DbAddr(60), &[9; 10]); // crosses regions
            assert!(prot.audit(&image).unwrap().clean(), "{scheme:?}");
            // A stray write is caught.
            image.write(DbAddr(130), &[0xfe]).unwrap();
            assert!(!prot.audit(&image).unwrap().clean(), "{scheme:?}");
            prot.resync(&image).unwrap();
            assert!(prot.audit(&image).unwrap().clean(), "{scheme:?}");
        }
    }

    #[test]
    fn residue_rollback_restores_codeword() {
        // The directed-delta rollback path: unapply must invert the
        // residue delta, not re-apply it (XOR's self-inverse shortcut
        // does not hold here).
        let (image, prot) =
            setup_algebra(ProtectionScheme::DataCodeword, CodewordAlgebraKind::Residue);
        let addr = DbAddr(256);
        let (ws, wl) = dali_common::align::widen_to_words(addr.0, 6);
        let mut old = vec![0u8; wl];
        image.read(DbAddr(ws), &mut old).unwrap();
        image.write(addr, &[1, 2, 3, 4, 5, 6]).unwrap();
        prot.apply_update(&image, DbAddr(ws), &old).unwrap();
        assert!(prot.audit(&image).unwrap().clean());
        let mut cur = vec![0u8; wl];
        image.read(DbAddr(ws), &mut cur).unwrap();
        image.write(DbAddr(ws), &old).unwrap();
        prot.unapply_update(&image, DbAddr(ws), &cur).unwrap();
        assert!(prot.audit(&image).unwrap().clean());
    }

    #[test]
    fn paired_same_column_flip_splits_the_algebras() {
        // The acceptance-criterion kernel fact at the protection layer:
        // the same wild write passes the XOR audit and fails the residue
        // audit.
        let (image_x, prot_x) =
            setup_algebra(ProtectionScheme::DataCodeword, CodewordAlgebraKind::XorFold);
        let (image_r, prot_r) =
            setup_algebra(ProtectionScheme::DataCodeword, CodewordAlgebraKind::Residue);
        for (image, prot) in [(&image_x, &prot_x), (&image_r, &prot_r)] {
            prescribed_update(image, prot, DbAddr(128), &[0u8; 8]);
            // Same-direction pair: set bit 3 of two words in one region.
            for addr in [128usize, 136] {
                let mut w = [0u8; 4];
                image.read(DbAddr(addr), &mut w).unwrap();
                w[0] |= 1 << 3;
                image.write(DbAddr(addr), &w).unwrap();
            }
        }
        assert!(
            prot_x.audit(&image_x).unwrap().clean(),
            "XOR parity cancels the pair"
        );
        assert!(
            !prot_r.audit(&image_r).unwrap().clean(),
            "residue detects the pair"
        );
    }

    #[test]
    fn resync_fixes_table_after_external_repair() {
        let (image, prot) = setup(ProtectionScheme::DataCodeword);
        image.write(DbAddr(0), &[1]).unwrap(); // corruption
        assert!(!prot.audit(&image).unwrap().clean());
        prot.resync(&image).unwrap();
        assert!(prot.audit(&image).unwrap().clean());
    }
}
