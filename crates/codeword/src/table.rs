//! The codeword table: one atomic `u32` per protection region.
//!
//! Codeword deltas commute under their algebra's `combine` — XOR deltas
//! publish with a single `fetch_xor`, residue deltas with a small
//! compare-exchange loop performing the end-around-carry addition — so
//! updaters need no mutual exclusion among themselves. This implements the
//! paper's §3.2 refinement where a separate *codeword latch* lets updaters
//! hold the protection latch in shared mode. Consistency between a region's
//! *contents* and its codeword is only guaranteed to an observer holding
//! the protection latch exclusively (an auditor or a prechecking reader).

use crate::region::{RegionGeometry, RegionId};
use dali_common::{CodewordAlgebraKind, Result};
use dali_mem::DbImage;
use std::sync::atomic::{AtomicU32, Ordering};

/// Maintained codewords for every protection region of an image.
pub struct CodewordTable {
    words: Vec<AtomicU32>,
    kind: CodewordAlgebraKind,
}

impl CodewordTable {
    /// A table of `n` identity codewords under `kind` (correct for a
    /// zeroed image: both algebras fold zeros to 0).
    pub fn new_zeroed(n: usize, kind: CodewordAlgebraKind) -> CodewordTable {
        let mut words = Vec::with_capacity(n);
        words.resize_with(n, || AtomicU32::new(kind.identity()));
        CodewordTable { words, kind }
    }

    /// Build a table by folding every region of `image` under `kind`.
    pub fn from_image(
        image: &DbImage,
        geom: &RegionGeometry,
        kind: CodewordAlgebraKind,
    ) -> Result<CodewordTable> {
        CodewordTable::from_image_parallel(image, geom, 1, kind)
    }

    /// Build a table by folding every region of `image` with `threads`
    /// scoped workers (startup cost on a large image is one full-image
    /// fold; see [`recompute_all_parallel`](CodewordTable::recompute_all_parallel)).
    pub fn from_image_parallel(
        image: &DbImage,
        geom: &RegionGeometry,
        threads: usize,
        kind: CodewordAlgebraKind,
    ) -> Result<CodewordTable> {
        let table = CodewordTable::new_zeroed(geom.num_regions(), kind);
        table.recompute_all_parallel(image, geom, threads)?;
        Ok(table)
    }

    /// The algebra this table's codewords and deltas live in.
    #[inline]
    pub fn kind(&self) -> CodewordAlgebraKind {
        self.kind
    }

    /// Number of regions tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the table tracks no regions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The maintained codeword for `region`.
    #[inline]
    pub fn get(&self, region: RegionId) -> u32 {
        self.words[region].load(Ordering::Acquire)
    }

    /// Overwrite the maintained codeword for `region`.
    #[inline]
    pub fn set(&self, region: RegionId, value: u32) {
        self.words[region].store(value, Ordering::Release);
    }

    /// Publish an update delta for `region`. XOR deltas use one atomic
    /// `fetch_xor`; residue deltas run a compare-exchange loop around the
    /// modular addition. Both commute, so concurrent publishers converge
    /// to the same codeword in any interleaving.
    #[inline]
    pub fn apply_delta(&self, region: RegionId, delta: u32) {
        if delta == self.kind.identity() {
            return;
        }
        match self.kind {
            CodewordAlgebraKind::XorFold => {
                self.words[region].fetch_xor(delta, Ordering::AcqRel);
            }
            kind => {
                let _ =
                    self.words[region].fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                        Some(kind.combine(cur, delta))
                    });
            }
        }
    }

    /// Recompute every codeword from the image (used at initialization and
    /// after recovery rebuilds the image).
    pub fn recompute_all(&self, image: &DbImage, geom: &RegionGeometry) -> Result<()> {
        self.recompute_all_parallel(image, geom, 1)
    }

    /// Recompute every codeword from the image with `threads` scoped
    /// workers, each folding a contiguous stripe of regions. Slot stores
    /// are atomic and the stripes are disjoint, so the result is identical
    /// to the serial recompute; the caller must quiesce updaters (as at
    /// initialization and recovery resync) since a recompute is not an
    /// incremental delta.
    pub fn recompute_all_parallel(
        &self,
        image: &DbImage,
        geom: &RegionGeometry,
        threads: usize,
    ) -> Result<()> {
        let n = geom.num_regions();
        let threads = threads.clamp(1, n.max(1));
        if threads <= 1 {
            for r in 0..n {
                let cw = image.fold(self.kind, geom.region_base(r), geom.region_size())?;
                self.set(r, cw);
            }
            return Ok(());
        }
        let per = n.div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let (lo, hi) = (t * per, ((t + 1) * per).min(n));
                    s.spawn(move || -> Result<()> {
                        for r in lo..hi {
                            let cw =
                                image.fold(self.kind, geom.region_base(r), geom.region_size())?;
                            self.set(r, cw);
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .try_for_each(|h| h.join().expect("recompute stripe worker panicked"))
        })
    }

    /// Recompute the codeword of a single region from the image.
    pub fn recompute_region(
        &self,
        image: &DbImage,
        geom: &RegionGeometry,
        region: RegionId,
    ) -> Result<()> {
        let cw = image.fold(self.kind, geom.region_base(region), geom.region_size())?;
        self.set(region, cw);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::DbAddr;

    fn setup_kind(kind: CodewordAlgebraKind) -> (DbImage, RegionGeometry, CodewordTable) {
        let image = DbImage::new(2, 4096).unwrap();
        let geom = RegionGeometry::new(image.len(), 64).unwrap();
        let table = CodewordTable::from_image(&image, &geom, kind).unwrap();
        (image, geom, table)
    }

    fn setup() -> (DbImage, RegionGeometry, CodewordTable) {
        setup_kind(CodewordAlgebraKind::XorFold)
    }

    #[test]
    fn zeroed_image_zeroed_table() {
        for kind in CodewordAlgebraKind::ALL {
            let (_i, geom, t) = setup_kind(kind);
            assert_eq!(t.kind(), kind);
            assert_eq!(t.len(), geom.num_regions());
            for r in 0..t.len() {
                assert_eq!(t.get(r), 0);
            }
        }
    }

    #[test]
    fn delta_maintenance_tracks_image_both_algebras() {
        for kind in CodewordAlgebraKind::ALL {
            let (image, geom, t) = setup_kind(kind);
            // Simulate a prescribed update: capture old, write new, publish delta.
            let addr = DbAddr(128);
            let old = [0u8; 8];
            let new = [1u8, 2, 3, 4, 5, 6, 7, 8];
            image.write(addr, &new).unwrap();
            let d = crate::algebra::delta(kind, &old, &new);
            let region = geom.region_of(addr);
            t.apply_delta(region, d);
            let computed = image
                .fold(kind, geom.region_base(region), geom.region_size())
                .unwrap();
            assert_eq!(t.get(region), computed, "{kind:?}");
        }
    }

    #[test]
    fn zero_delta_is_noop() {
        for kind in CodewordAlgebraKind::ALL {
            let (_i, _g, t) = setup_kind(kind);
            t.set(5, 0xabcd);
            t.apply_delta(5, 0);
            assert_eq!(t.get(5), 0xabcd, "{kind:?}");
        }
    }

    #[test]
    fn deltas_commute() {
        for kind in CodewordAlgebraKind::ALL {
            let (_i, _g, t) = setup_kind(kind);
            t.apply_delta(0, 0x1111);
            t.apply_delta(0, 0x2222);
            let a = t.get(0);
            t.set(0, 0);
            t.apply_delta(0, 0x2222);
            t.apply_delta(0, 0x1111);
            assert_eq!(t.get(0), a, "{kind:?}");
        }
    }

    #[test]
    fn recompute_region_fixes_mismatch() {
        for kind in CodewordAlgebraKind::ALL {
            let (image, geom, t) = setup_kind(kind);
            // Wild write; avoid 0xFFFF_FFFF, which the residue algebra
            // canonicalizes to 0 (M ≡ 0 mod M) and so cannot distinguish
            // from the zeroed region.
            image.write(DbAddr(0), &[0xff, 0xff, 0xff, 0x7f]).unwrap();
            assert_ne!(t.get(0), image.fold(kind, geom.region_base(0), 64).unwrap());
            t.recompute_region(&image, &geom, 0).unwrap();
            assert_eq!(t.get(0), image.fold(kind, geom.region_base(0), 64).unwrap());
        }
    }

    #[test]
    fn parallel_recompute_matches_serial() {
        for kind in CodewordAlgebraKind::ALL {
            let (image, geom, _t) = setup_kind(kind);
            let noise: Vec<u8> = (0..image.len() as u32)
                .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
                .collect();
            image.write(DbAddr(0), &noise).unwrap();
            let serial = CodewordTable::from_image(&image, &geom, kind).unwrap();
            for threads in [2, 3, 8, geom.num_regions() + 1] {
                let par = CodewordTable::from_image_parallel(&image, &geom, threads, kind).unwrap();
                for r in 0..geom.num_regions() {
                    assert_eq!(
                        par.get(r),
                        serial.get(r),
                        "{kind:?} region {r}, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn concurrent_deltas_from_threads() {
        let (_i, _g, t) = setup();
        let t = std::sync::Arc::new(t);
        let mut handles = vec![];
        for k in 0..8u32 {
            let t2 = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for j in 0..1000u32 {
                    t2.apply_delta(3, k.wrapping_mul(j) | 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The exact value is the XOR of all applied deltas; recompute it.
        let mut expect = 0u32;
        for k in 0..8u32 {
            for j in 0..1000u32 {
                expect ^= k.wrapping_mul(j) | 1;
            }
        }
        assert_eq!(t.get(3), expect);
    }

    #[test]
    fn concurrent_residue_deltas_from_threads() {
        // The CAS loop publishes modular additions; commutativity means
        // the final codeword is the mod-sum of every delta regardless of
        // interleaving.
        let (_i, _g, t) = setup_kind(CodewordAlgebraKind::Residue);
        let t = std::sync::Arc::new(t);
        let mut handles = vec![];
        for k in 0..8u32 {
            let t2 = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for j in 0..1000u32 {
                    t2.apply_delta(3, k.wrapping_mul(j) | 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = CodewordAlgebraKind::Residue;
        let mut expect = 0u32;
        for k in 0..8u32 {
            for j in 0..1000u32 {
                expect = r.combine(expect, k.wrapping_mul(j) | 1);
            }
        }
        assert_eq!(t.get(3), expect);
    }
}
