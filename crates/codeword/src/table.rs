//! The codeword table: one atomic `u32` per protection region.
//!
//! Codeword deltas XOR-commute, so updaters publish them with `fetch_xor`
//! and need no mutual exclusion among themselves — this implements the
//! paper's §3.2 refinement where a separate *codeword latch* lets updaters
//! hold the protection latch in shared mode. Consistency between a region's
//! *contents* and its codeword is only guaranteed to an observer holding
//! the protection latch exclusively (an auditor or a prechecking reader).

use crate::region::{RegionGeometry, RegionId};
use dali_common::Result;
use dali_mem::DbImage;
use std::sync::atomic::{AtomicU32, Ordering};

/// Maintained codewords for every protection region of an image.
pub struct CodewordTable {
    words: Vec<AtomicU32>,
}

impl CodewordTable {
    /// A table of `n` zero codewords (correct for a zeroed image).
    pub fn new_zeroed(n: usize) -> CodewordTable {
        let mut words = Vec::with_capacity(n);
        words.resize_with(n, || AtomicU32::new(0));
        CodewordTable { words }
    }

    /// Build a table by folding every region of `image`.
    pub fn from_image(image: &DbImage, geom: &RegionGeometry) -> Result<CodewordTable> {
        CodewordTable::from_image_parallel(image, geom, 1)
    }

    /// Build a table by folding every region of `image` with `threads`
    /// scoped workers (startup cost on a large image is one full-image
    /// fold; see [`recompute_all_parallel`](CodewordTable::recompute_all_parallel)).
    pub fn from_image_parallel(
        image: &DbImage,
        geom: &RegionGeometry,
        threads: usize,
    ) -> Result<CodewordTable> {
        let table = CodewordTable::new_zeroed(geom.num_regions());
        table.recompute_all_parallel(image, geom, threads)?;
        Ok(table)
    }

    /// Number of regions tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the table tracks no regions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The maintained codeword for `region`.
    #[inline]
    pub fn get(&self, region: RegionId) -> u32 {
        self.words[region].load(Ordering::Acquire)
    }

    /// Overwrite the maintained codeword for `region`.
    #[inline]
    pub fn set(&self, region: RegionId, value: u32) {
        self.words[region].store(value, Ordering::Release);
    }

    /// Publish an update delta for `region` (atomic XOR; commutes with
    /// concurrent deltas).
    #[inline]
    pub fn apply_delta(&self, region: RegionId, delta: u32) {
        if delta != 0 {
            self.words[region].fetch_xor(delta, Ordering::AcqRel);
        }
    }

    /// Recompute every codeword from the image (used at initialization and
    /// after recovery rebuilds the image).
    pub fn recompute_all(&self, image: &DbImage, geom: &RegionGeometry) -> Result<()> {
        self.recompute_all_parallel(image, geom, 1)
    }

    /// Recompute every codeword from the image with `threads` scoped
    /// workers, each folding a contiguous stripe of regions. Slot stores
    /// are atomic and the stripes are disjoint, so the result is identical
    /// to the serial recompute; the caller must quiesce updaters (as at
    /// initialization and recovery resync) since a recompute is not an
    /// incremental delta.
    pub fn recompute_all_parallel(
        &self,
        image: &DbImage,
        geom: &RegionGeometry,
        threads: usize,
    ) -> Result<()> {
        let n = geom.num_regions();
        let threads = threads.clamp(1, n.max(1));
        if threads <= 1 {
            for r in 0..n {
                let cw = image.xor_fold(geom.region_base(r), geom.region_size())?;
                self.set(r, cw);
            }
            return Ok(());
        }
        let per = n.div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let (lo, hi) = (t * per, ((t + 1) * per).min(n));
                    s.spawn(move || -> Result<()> {
                        for r in lo..hi {
                            let cw = image.xor_fold(geom.region_base(r), geom.region_size())?;
                            self.set(r, cw);
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .try_for_each(|h| h.join().expect("recompute stripe worker panicked"))
        })
    }

    /// Recompute the codeword of a single region from the image.
    pub fn recompute_region(
        &self,
        image: &DbImage,
        geom: &RegionGeometry,
        region: RegionId,
    ) -> Result<()> {
        let cw = image.xor_fold(geom.region_base(region), geom.region_size())?;
        self.set(region, cw);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::DbAddr;

    fn setup() -> (DbImage, RegionGeometry, CodewordTable) {
        let image = DbImage::new(2, 4096).unwrap();
        let geom = RegionGeometry::new(image.len(), 64).unwrap();
        let table = CodewordTable::from_image(&image, &geom).unwrap();
        (image, geom, table)
    }

    #[test]
    fn zeroed_image_zeroed_table() {
        let (_i, geom, t) = setup();
        assert_eq!(t.len(), geom.num_regions());
        for r in 0..t.len() {
            assert_eq!(t.get(r), 0);
        }
    }

    #[test]
    fn delta_maintenance_tracks_image() {
        let (image, geom, t) = setup();
        // Simulate a prescribed update: capture old, write new, publish delta.
        let addr = DbAddr(128);
        let old = [0u8; 8];
        let new = [1u8, 2, 3, 4, 5, 6, 7, 8];
        image.write(addr, &new).unwrap();
        let d = crate::codeword::delta(&old, &new);
        let region = geom.region_of(addr);
        t.apply_delta(region, d);
        let computed = image
            .xor_fold(geom.region_base(region), geom.region_size())
            .unwrap();
        assert_eq!(t.get(region), computed);
    }

    #[test]
    fn zero_delta_is_noop() {
        let (_i, _g, t) = setup();
        t.set(5, 0xabcd);
        t.apply_delta(5, 0);
        assert_eq!(t.get(5), 0xabcd);
    }

    #[test]
    fn deltas_commute() {
        let (_i, _g, t) = setup();
        t.apply_delta(0, 0x1111);
        t.apply_delta(0, 0x2222);
        let a = t.get(0);
        t.set(0, 0);
        t.apply_delta(0, 0x2222);
        t.apply_delta(0, 0x1111);
        assert_eq!(t.get(0), a);
    }

    #[test]
    fn recompute_region_fixes_mismatch() {
        let (image, geom, t) = setup();
        image.write(DbAddr(0), &[0xff; 4]).unwrap(); // "wild write"
        assert_ne!(t.get(0), image.xor_fold(geom.region_base(0), 64).unwrap());
        t.recompute_region(&image, &geom, 0).unwrap();
        assert_eq!(t.get(0), image.xor_fold(geom.region_base(0), 64).unwrap());
    }

    #[test]
    fn parallel_recompute_matches_serial() {
        let (image, geom, _t) = setup();
        let noise: Vec<u8> = (0..image.len() as u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
            .collect();
        image.write(DbAddr(0), &noise).unwrap();
        let serial = CodewordTable::from_image(&image, &geom).unwrap();
        for threads in [2, 3, 8, geom.num_regions() + 1] {
            let par = CodewordTable::from_image_parallel(&image, &geom, threads).unwrap();
            for r in 0..geom.num_regions() {
                assert_eq!(par.get(r), serial.get(r), "region {r}, {threads} threads");
            }
        }
    }

    #[test]
    fn concurrent_deltas_from_threads() {
        let (_i, _g, t) = setup();
        let t = std::sync::Arc::new(t);
        let mut handles = vec![];
        for k in 0..8u32 {
            let t2 = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for j in 0..1000u32 {
                    t2.apply_delta(3, k.wrapping_mul(j) | 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The exact value is the XOR of all applied deltas; recompute it.
        let mut expect = 0u32;
        for k in 0..8u32 {
            for j in 0..1000u32 {
                expect ^= k.wrapping_mul(j) | 1;
            }
        }
        assert_eq!(t.get(3), expect);
    }
}
