//! Codeword protection (paper §3).
//!
//! The database is divided into fixed-size *protection regions*; a
//! *codeword* — the bitwise XOR of the 32-bit words of the region — is
//! maintained for each. Updates through the prescribed interface keep the
//! codeword in sync; a wild write does not, so with high probability the
//! maintained codeword no longer matches the codeword computed from the
//! region, and the mismatch is caught by a *precheck* (on read) or an
//! *audit* (asynchronously / at checkpoint time).
//!
//! Modules:
//!
//! * [`codeword`] — the XOR-fold algebra (fold, delta, incremental
//!   maintenance identities), computed by a wide 4×`u64`-lane kernel that
//!   auto-vectorizes.
//! * [`region`] — protection-region geometry over the database address
//!   space.
//! * [`table`] — the codeword table, one atomic `u32` per region.
//!   Codeword deltas commute, so maintenance uses `fetch_xor`; this plays
//!   the role of the paper's *codeword latch* (§3.2).
//! * [`latch`] — the *protection latch* table: striped reader-writer
//!   spin latches with explicit lock/unlock (guards must survive across the
//!   beginUpdate/endUpdate window, which RAII lifetimes cannot express).
//! * [`audit`] — region and whole-database audits producing
//!   [`AuditReport`](audit::AuditReport)s; full-database scans can be
//!   striped across scoped worker threads
//!   ([`audit_all_parallel`](audit::audit_all_parallel)) with reports
//!   identical to the serial scan.
//! * [`parity`] — the optional parity stripe: one XOR parity buffer per
//!   group of protection regions, maintained through the same
//!   enqueue/drain path as deferred codewords, from which a region that
//!   fails its audit can be rebuilt *in place* without log replay.
//! * [`protection`] — [`CodewordProtection`](protection::CodewordProtection),
//!   the façade bundling geometry + table + latches and implementing the
//!   per-scheme read/update protocols, including
//!   [`repair_region`](protection::CodewordProtection::repair_region).

pub mod algebra;
pub mod audit;
pub mod codeword;
pub mod deferred;
pub mod latch;
pub mod parity;
pub mod protection;
pub mod region;
pub mod table;

pub use algebra::{algebra_for, CodewordAlgebra, ResidueAlgebra, XorFoldAlgebra};
pub use audit::{AuditReport, CorruptRegion};
pub use deferred::{DeferredConfig, DeferredSet, DeferredStatsSnapshot};
pub use latch::{LatchMode, LatchTable};
pub use parity::{ParityGroupId, ParityStatsSnapshot, ParityStripe};
pub use protection::{CodewordProtection, RepairFallback};
pub use region::{RegionGeometry, RegionId};
pub use table::CodewordTable;

// Re-export the scheme and algebra selectors for convenience.
pub use dali_common::{CodewordAlgebraKind, ProtectionScheme};
