//! Pluggable codeword algebras: the paper's XOR fold and a mod-(2^32−1)
//! residue code.
//!
//! The paper fixes the codeword to the bitwise XOR of a region's 32-bit
//! words (§3). Everything the protection machinery actually relies on is
//! weaker than "XOR": it needs a commutative group on `u32` codewords —
//!
//! * **Composition** — `fold(a ++ b) = combine(fold(a), fold(b))`.
//! * **Update delta** — replacing sub-range `old` with `new` moves the
//!   region codeword by `delta = combine(fold(new), neg(fold(old)))`, and
//!   `combine(codeword, delta)` equals recompute-from-image.
//! * **Coalescing** — deltas combine associatively and commutatively, so
//!   the sharded deferred dirty set can merge any number of them in any
//!   order (and concurrent updaters can publish them without ordering).
//!
//! [`CodewordAlgebra`] captures exactly that contract. Two
//! implementations:
//!
//! * [`XorFoldAlgebra`] — the paper's parity fold ([`crate::codeword`]).
//!   Deltas are self-inverse (`neg` is the identity function); the fold is
//!   blind to an even number of identical flips in one bit column.
//! * [`ResidueAlgebra`] — the sum of the region's words modulo
//!   `2^32 − 1`, canonical in `[0, 2^32 − 1)`. A same-direction pair of
//!   identical bit-column flips perturbs the sum by `2^(k+1) ≠ 0`, so the
//!   paired-flip class the XOR fold misses is detected — including flips
//!   of bit 31, because `2^32 ≡ 1 (mod 2^32 − 1)` (the end-around carry).
//!   Opposite-direction pairs (`+2^k` and `−2^k`) still cancel; see
//!   DESIGN.md for the full blind-spot accounting.
//!
//! The hot paths dispatch on [`CodewordAlgebraKind`] (a `Copy` enum in
//! `dali-common`, stored in config and checkpoint metadata) through the
//! free functions in this module; the trait objects returned by
//! [`algebra_for`] serve callers that want to hold an algebra as a value.

use crate::codeword::{self, load32, load64, BLOCK};
use dali_common::align::WORD;
pub use dali_common::CodewordAlgebraKind;
use dali_common::RESIDUE_MODULUS;

/// A codeword algebra: a commutative group on `u32` codewords together
/// with fold kernels mapping byte ranges into it. See the module docs for
/// the laws; both implementations are property-tested against them.
pub trait CodewordAlgebra: Send + Sync {
    /// The kind selector this implementation corresponds to.
    fn kind(&self) -> CodewordAlgebraKind;

    /// The codeword of an empty region (the group's neutral element).
    #[inline]
    fn identity(&self) -> u32 {
        0
    }

    /// The group operation: combine two codewords or deltas.
    fn combine(&self, a: u32, b: u32) -> u32;

    /// The inverse under [`combine`](Self::combine).
    fn neg(&self, a: u32) -> u32;

    /// Fold a word-aligned byte slice into a codeword.
    ///
    /// # Panics
    ///
    /// Panics — in all build profiles — if `bytes.len()` is not a multiple
    /// of 4, matching [`crate::codeword::fold`]'s contract.
    fn fold(&self, bytes: &[u8]) -> u32;

    /// [`fold`](Self::fold) through the one-word-at-a-time reference
    /// kernel (for benches and kernel-equivalence suites).
    fn fold_scalar(&self, bytes: &[u8]) -> u32;

    /// Fold an arbitrary-length slice, zero-padding the trailing partial
    /// word (value-checksum semantics; accepts any length).
    fn fold_padded(&self, bytes: &[u8]) -> u32;

    /// The *directed* delta produced by overwriting `old` with `new`
    /// (equal word-aligned lengths): `combine(fold-before, delta)` equals
    /// fold-after. Rolling an update back composes `neg(delta)` —
    /// equivalently the delta computed with the roles swapped.
    fn delta(&self, old: &[u8], new: &[u8]) -> u32;
}

/// The paper's XOR-parity codeword (§3), folding through the wide
/// 4×`u64`-lane kernel in [`crate::codeword`].
#[derive(Copy, Clone, Debug, Default)]
pub struct XorFoldAlgebra;

impl CodewordAlgebra for XorFoldAlgebra {
    #[inline]
    fn kind(&self) -> CodewordAlgebraKind {
        CodewordAlgebraKind::XorFold
    }

    #[inline]
    fn combine(&self, a: u32, b: u32) -> u32 {
        a ^ b
    }

    #[inline]
    fn neg(&self, a: u32) -> u32 {
        a
    }

    #[inline]
    fn fold(&self, bytes: &[u8]) -> u32 {
        codeword::fold(bytes)
    }

    #[inline]
    fn fold_scalar(&self, bytes: &[u8]) -> u32 {
        codeword::fold_scalar(bytes)
    }

    #[inline]
    fn fold_padded(&self, bytes: &[u8]) -> u32 {
        codeword::fold_padded(bytes)
    }

    #[inline]
    fn delta(&self, old: &[u8], new: &[u8]) -> u32 {
        codeword::delta(old, new)
    }
}

/// The mod-(2^32−1) residue codeword: the sum of the region's 32-bit
/// little-endian words reduced modulo [`RESIDUE_MODULUS`], canonical in
/// `[0, 2^32 − 1)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct ResidueAlgebra;

impl CodewordAlgebra for ResidueAlgebra {
    #[inline]
    fn kind(&self) -> CodewordAlgebraKind {
        CodewordAlgebraKind::Residue
    }

    #[inline]
    fn combine(&self, a: u32, b: u32) -> u32 {
        CodewordAlgebraKind::Residue.combine(a, b)
    }

    #[inline]
    fn neg(&self, a: u32) -> u32 {
        CodewordAlgebraKind::Residue.neg(a)
    }

    #[inline]
    fn fold(&self, bytes: &[u8]) -> u32 {
        residue_fold(bytes)
    }

    #[inline]
    fn fold_scalar(&self, bytes: &[u8]) -> u32 {
        residue_fold_scalar(bytes)
    }

    #[inline]
    fn fold_padded(&self, bytes: &[u8]) -> u32 {
        residue_fold_padded(bytes)
    }

    #[inline]
    fn delta(&self, old: &[u8], new: &[u8]) -> u32 {
        assert_eq!(old.len(), new.len(), "delta over unequal lengths");
        CodewordAlgebraKind::Residue.delta_of_folds(residue_fold(old), residue_fold(new))
    }
}

static XOR_FOLD: XorFoldAlgebra = XorFoldAlgebra;
static RESIDUE: ResidueAlgebra = ResidueAlgebra;

/// The algebra implementation for a kind selector.
#[inline]
pub fn algebra_for(kind: CodewordAlgebraKind) -> &'static dyn CodewordAlgebra {
    match kind {
        CodewordAlgebraKind::XorFold => &XOR_FOLD,
        CodewordAlgebraKind::Residue => &RESIDUE,
    }
}

/// Fold a word-aligned slice under `kind` (enum dispatch for hot paths).
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 4.
#[inline]
pub fn fold(kind: CodewordAlgebraKind, bytes: &[u8]) -> u32 {
    match kind {
        CodewordAlgebraKind::XorFold => codeword::fold(bytes),
        CodewordAlgebraKind::Residue => residue_fold(bytes),
    }
}

/// [`fold`] through the one-word-at-a-time reference kernels.
#[inline]
pub fn fold_scalar(kind: CodewordAlgebraKind, bytes: &[u8]) -> u32 {
    match kind {
        CodewordAlgebraKind::XorFold => codeword::fold_scalar(bytes),
        CodewordAlgebraKind::Residue => residue_fold_scalar(bytes),
    }
}

/// Fold any-length `bytes` under `kind`, zero-padding the partial word.
#[inline]
pub fn fold_padded(kind: CodewordAlgebraKind, bytes: &[u8]) -> u32 {
    match kind {
        CodewordAlgebraKind::XorFold => codeword::fold_padded(bytes),
        CodewordAlgebraKind::Residue => residue_fold_padded(bytes),
    }
}

/// The directed delta taking fold(`old`) to fold(`new`) under `kind`.
///
/// # Panics
///
/// Panics if the lengths differ or are not a multiple of 4.
#[inline]
pub fn delta(kind: CodewordAlgebraKind, old: &[u8], new: &[u8]) -> u32 {
    match kind {
        CodewordAlgebraKind::XorFold => codeword::delta(old, new),
        CodewordAlgebraKind::Residue => {
            assert_eq!(old.len(), new.len(), "delta over unequal lengths");
            kind.delta_of_folds(residue_fold(old), residue_fold(new))
        }
    }
}

/// Sum the 32-bit little-endian words of a word-multiple slice into a
/// `u64`. Addition carries across bit columns, so unlike the XOR kernel a
/// `u64` lane cannot carry two words side by side — each load is split
/// into its halves (`v & MASK` + `v >> 32`) before accumulating; four
/// independent lanes still break the serial dependency chain. The caller
/// bounds the slice so lanes stay far from overflow.
#[inline]
fn residue_sum_words(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len().is_multiple_of(WORD));
    const MASK: u64 = 0xFFFF_FFFF;
    let mut lanes = [0u64; 4];
    let mut blocks = bytes.chunks_exact(BLOCK);
    for b in &mut blocks {
        let v0 = load64(&b[0..8]);
        let v1 = load64(&b[8..16]);
        let v2 = load64(&b[16..24]);
        let v3 = load64(&b[24..32]);
        lanes[0] += (v0 & MASK) + (v0 >> 32);
        lanes[1] += (v1 & MASK) + (v1 >> 32);
        lanes[2] += (v2 & MASK) + (v2 >> 32);
        lanes[3] += (v3 & MASK) + (v3 >> 32);
    }
    let tail = blocks.remainder();
    let mut words2 = tail.chunks_exact(8);
    let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for w in &mut words2 {
        let v = load64(w);
        sum += (v & MASK) + (v >> 32);
    }
    let rem = words2.remainder();
    if !rem.is_empty() {
        sum += load32(rem) as u64;
    }
    sum
}

/// Residue-fold a word-aligned byte slice: the sum of its words modulo
/// `2^32 − 1`, canonical in `[0, 2^32 − 1)`.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 4.
#[inline]
pub fn residue_fold(bytes: &[u8]) -> u32 {
    assert!(
        bytes.len().is_multiple_of(WORD),
        "fold over unaligned length {}",
        bytes.len()
    );
    // 1 GiB chunks keep the wide kernel's lane accumulators below 2^59
    // regardless of total slice length.
    const CHUNK: usize = 1 << 30;
    let mut acc: u64 = 0;
    for chunk in bytes.chunks(CHUNK) {
        acc = (acc + residue_sum_words(chunk) % RESIDUE_MODULUS) % RESIDUE_MODULUS;
    }
    acc as u32
}

/// One-word-at-a-time scalar reference for [`residue_fold`]. Same
/// contract and result.
#[inline]
pub fn residue_fold_scalar(bytes: &[u8]) -> u32 {
    assert!(
        bytes.len().is_multiple_of(WORD),
        "fold over unaligned length {}",
        bytes.len()
    );
    let mut sum: u64 = 0;
    for chunk in bytes.chunks_exact(WORD) {
        sum += load32(chunk) as u64;
        if sum >= u64::MAX - u32::MAX as u64 {
            sum %= RESIDUE_MODULUS; // unreachable below ~16 GiB
        }
    }
    (sum % RESIDUE_MODULUS) as u32
}

/// Residue-fold an arbitrary-length slice, zero-padding the trailing
/// partial word (accepts any length, like [`crate::codeword::fold_padded`]).
#[inline]
pub fn residue_fold_padded(bytes: &[u8]) -> u32 {
    let full = bytes.len() / WORD * WORD;
    let mut acc = residue_fold(&bytes[..full]) as u64;
    let rem = &bytes[full..];
    if !rem.is_empty() {
        let mut w = [0u8; WORD];
        w[..rem.len()].copy_from_slice(rem);
        acc = (acc + u32::from_le_bytes(w) as u64) % RESIDUE_MODULUS;
    }
    acc as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Independent byte-at-a-time reference: sum each byte into its LE
    /// word column, reduce at the end. Zero-pad semantics.
    fn ref_residue(bytes: &[u8]) -> u32 {
        let mut sum: u128 = 0;
        for (i, &b) in bytes.iter().enumerate() {
            sum += (b as u128) << (8 * (i & 3));
        }
        (sum % RESIDUE_MODULUS as u128) as u32
    }

    fn patterned(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(11))
            .collect()
    }

    #[test]
    fn residue_fold_zeros_and_single_word() {
        assert_eq!(residue_fold(&[]), 0);
        assert_eq!(residue_fold(&[0u8; 64]), 0);
        assert_eq!(residue_fold(&0xdead_beefu32.to_le_bytes()), 0xdead_beef);
        // The all-ones word is congruent to zero: canonical fold is 0.
        assert_eq!(residue_fold(&0xffff_ffffu32.to_le_bytes()), 0);
    }

    #[test]
    fn residue_wide_matches_reference_every_aligned_length() {
        for len in (0..=4 * BLOCK + WORD).step_by(WORD) {
            let buf = patterned(len);
            assert_eq!(residue_fold(&buf), ref_residue(&buf), "len {len}");
            assert_eq!(
                residue_fold_scalar(&buf),
                ref_residue(&buf),
                "scalar len {len}"
            );
        }
    }

    #[test]
    fn residue_fold_padded_matches_reference_every_length() {
        for len in 0..=2 * BLOCK + 5 {
            let buf = patterned(len);
            assert_eq!(residue_fold_padded(&buf), ref_residue(&buf), "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "fold over unaligned length")]
    fn residue_fold_rejects_unaligned_length() {
        residue_fold(&[1u8, 2, 3, 4, 5]);
    }

    #[test]
    fn trait_objects_agree_with_enum_dispatch() {
        let buf = patterned(100);
        let aligned = &buf[..96];
        for kind in CodewordAlgebraKind::ALL {
            let alg = algebra_for(kind);
            assert_eq!(alg.kind(), kind);
            assert_eq!(alg.fold(aligned), fold(kind, aligned));
            assert_eq!(alg.fold_scalar(aligned), fold_scalar(kind, aligned));
            assert_eq!(alg.fold_padded(&buf), fold_padded(kind, &buf));
            let new: Vec<u8> = aligned.iter().map(|b| b.wrapping_add(3)).collect();
            assert_eq!(alg.delta(aligned, &new), delta(kind, aligned, &new));
            assert_eq!(alg.identity(), kind.identity());
            assert_eq!(alg.combine(7, 9), kind.combine(7, 9));
            assert_eq!(alg.neg(7), kind.neg(7));
        }
    }

    #[test]
    fn directed_delta_composes_for_both_algebras() {
        let old = patterned(64);
        let new: Vec<u8> = old
            .iter()
            .map(|b| b.wrapping_mul(5).wrapping_add(1))
            .collect();
        for kind in CodewordAlgebraKind::ALL {
            let before = fold(kind, &old);
            let after = fold(kind, &new);
            let d = delta(kind, &old, &new);
            assert_eq!(kind.combine(before, d), after, "{kind:?} forward");
            let back = delta(kind, &new, &old);
            assert_eq!(kind.combine(after, back), before, "{kind:?} rollback");
            assert_eq!(back, kind.neg(d), "{kind:?} reverse is neg");
        }
    }

    #[test]
    fn residue_sees_the_xor_blind_pair() {
        // Same-direction paired flip in one column: XOR delta cancels,
        // residue moves by 2^(k+1).
        let mut buf = patterned(64);
        let before_x = fold(CodewordAlgebraKind::XorFold, &buf);
        let before_r = fold(CodewordAlgebraKind::Residue, &buf);
        // Clear bit 5 of words 3 and 7, then set both (same direction).
        for w in [3usize, 7] {
            buf[w * 4] &= !(1 << 5);
        }
        let cleared_x = fold(CodewordAlgebraKind::XorFold, &buf);
        let cleared_r = fold(CodewordAlgebraKind::Residue, &buf);
        for w in [3usize, 7] {
            buf[w * 4] |= 1 << 5;
        }
        assert_eq!(
            fold(CodewordAlgebraKind::XorFold, &buf),
            cleared_x,
            "XOR blind"
        );
        assert_ne!(
            fold(CodewordAlgebraKind::Residue, &buf),
            cleared_r,
            "residue sees"
        );
        let _ = (before_x, before_r);
    }

    #[test]
    fn bit31_pair_detected_via_end_around_carry() {
        // Two +2^31 perturbations sum to 2^32 ≡ 1 (mod 2^32 − 1): even the
        // top-bit pair, which overflows the word, stays visible.
        let mut buf = vec![0u8; 32];
        let before = fold(CodewordAlgebraKind::Residue, &buf);
        buf[3] = 0x80;
        buf[11] = 0x80;
        let after = fold(CodewordAlgebraKind::Residue, &buf);
        assert_eq!(
            CodewordAlgebraKind::Residue.delta_of_folds(before, after),
            1,
            "2^31 + 2^31 = 2^32 ≡ 1"
        );
        assert_eq!(fold(CodewordAlgebraKind::XorFold, &buf), 0, "XOR blind");
    }

    #[test]
    fn residue_opposite_direction_pair_still_cancels() {
        // The documented residual blind spot: +2^k on one word and −2^k on
        // another leave the sum unchanged.
        let mut buf = vec![0u8; 32];
        buf[0] = 0x10; // word 0 = 16
        buf[4] = 0x10; // word 1 = 16
        let before = fold(CodewordAlgebraKind::Residue, &buf);
        buf[0] = 0x20; // word 0 += 16
        buf[4] = 0x00; // word 1 -= 16
        assert_eq!(fold(CodewordAlgebraKind::Residue, &buf), before);
    }
}
