//! Protection latches (paper §3.1).
//!
//! A protection latch serializes a region's *contents* against observers
//! that need contents and codeword mutually consistent:
//!
//! * **Read Prechecking** — readers and updaters both take the latch
//!   exclusively (§3.1).
//! * **Data Codeword** — updaters take the latch in shared mode (the
//!   codeword itself is maintained with atomic XOR, see
//!   [`crate::table`]); auditors take it exclusively (§3.2).
//!
//! Latches are striped: `regions_per_latch` consecutive regions share one
//! latch word. Latches are acquired in ascending stripe order everywhere,
//! so latch-latch deadlock is impossible.
//!
//! The latch is a hand-rolled reader-writer spin latch with *explicit*
//! unlock rather than an RAII guard because an update holds its latches
//! from `beginUpdate` to `endUpdate` — a window that lives inside the
//! transaction object, where borrow-based guards cannot go.

use std::sync::atomic::{AtomicU32, Ordering};

const WRITER: u32 = 1 << 31;

/// A word-sized reader-writer spin latch.
///
/// Fairness is not guaranteed; critical sections are expected to be short
/// (a region fold is at most a few KiB of XOR).
#[derive(Default)]
pub struct RwSpinLatch {
    state: AtomicU32,
}

impl RwSpinLatch {
    /// New unlocked latch.
    pub const fn new() -> RwSpinLatch {
        RwSpinLatch {
            state: AtomicU32::new(0),
        }
    }

    /// Acquire in shared mode (blocks writers, admits readers).
    pub fn lock_shared(&self) {
        let mut spins = 0u32;
        loop {
            let cur = self.state.load(Ordering::Relaxed);
            if cur & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            backoff(&mut spins);
        }
    }

    /// Release shared mode.
    pub fn unlock_shared(&self) {
        let prev = self.state.fetch_sub(1, Ordering::Release);
        debug_assert!(prev & !WRITER > 0, "unlock_shared without lock_shared");
    }

    /// Acquire in exclusive mode.
    pub fn lock_exclusive(&self) {
        let mut spins = 0u32;
        loop {
            if self
                .state
                .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            backoff(&mut spins);
        }
    }

    /// Release exclusive mode.
    pub fn unlock_exclusive(&self) {
        let prev = self.state.swap(0, Ordering::Release);
        debug_assert_eq!(prev, WRITER, "unlock_exclusive without lock_exclusive");
    }

    /// Try to acquire exclusive mode without blocking.
    pub fn try_lock_exclusive(&self) -> bool {
        self.state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
}

#[inline]
fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 16 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Latch acquisition mode.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LatchMode {
    /// No latch taken (Baseline / MemoryProtection schemes).
    None,
    /// Shared (Data Codeword updaters).
    Shared,
    /// Exclusive (Read Prechecking; audits).
    Exclusive,
}

/// A striped table of protection latches covering a range of region ids.
pub struct LatchTable {
    latches: Vec<RwSpinLatch>,
    /// log2 of regions per latch.
    shift: u32,
}

impl LatchTable {
    /// A table covering `num_regions` regions with `regions_per_latch`
    /// (power of two) regions sharing each latch.
    pub fn new(num_regions: usize, regions_per_latch: usize) -> LatchTable {
        assert!(regions_per_latch.is_power_of_two());
        let shift = regions_per_latch.trailing_zeros();
        let stripes = num_regions.div_ceil(regions_per_latch).max(1);
        let mut latches = Vec::with_capacity(stripes);
        latches.resize_with(stripes, RwSpinLatch::new);
        LatchTable { latches, shift }
    }

    /// Number of latch stripes.
    pub fn stripes(&self) -> usize {
        self.latches.len()
    }

    #[inline]
    fn stripe_range(&self, first_region: usize, last_region: usize) -> (usize, usize) {
        (first_region >> self.shift, last_region >> self.shift)
    }

    /// Lock the latches covering regions `first..=last` in `mode`.
    /// Stripes are locked in ascending order. `LatchMode::None` is a no-op.
    pub fn lock_span(&self, first_region: usize, last_region: usize, mode: LatchMode) {
        if mode == LatchMode::None {
            return;
        }
        let (s0, s1) = self.stripe_range(first_region, last_region);
        for s in s0..=s1 {
            match mode {
                LatchMode::Shared => self.latches[s].lock_shared(),
                LatchMode::Exclusive => self.latches[s].lock_exclusive(),
                LatchMode::None => unreachable!(),
            }
        }
    }

    /// Unlock the latches previously locked by
    /// [`lock_span`](Self::lock_span) with the same arguments.
    pub fn unlock_span(&self, first_region: usize, last_region: usize, mode: LatchMode) {
        if mode == LatchMode::None {
            return;
        }
        let (s0, s1) = self.stripe_range(first_region, last_region);
        for s in s0..=s1 {
            match mode {
                LatchMode::Shared => self.latches[s].unlock_shared(),
                LatchMode::Exclusive => self.latches[s].unlock_exclusive(),
                LatchMode::None => unreachable!(),
            }
        }
    }

    /// Run `f` with regions `first..=last` latched in `mode` (RAII-style
    /// convenience for audits and prechecks).
    pub fn with_span<R>(
        &self,
        first_region: usize,
        last_region: usize,
        mode: LatchMode,
        f: impl FnOnce() -> R,
    ) -> R {
        self.lock_span(first_region, last_region, mode);
        // Unlock even on panic so poisoned tests don't hang.
        struct Unlock<'a> {
            t: &'a LatchTable,
            f: usize,
            l: usize,
            m: LatchMode,
        }
        impl Drop for Unlock<'_> {
            fn drop(&mut self) {
                self.t.unlock_span(self.f, self.l, self.m);
            }
        }
        let _g = Unlock {
            t: self,
            f: first_region,
            l: last_region,
            m: mode,
        };
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn exclusive_excludes_exclusive() {
        let l = RwSpinLatch::new();
        l.lock_exclusive();
        assert!(!l.try_lock_exclusive());
        l.unlock_exclusive();
        assert!(l.try_lock_exclusive());
        l.unlock_exclusive();
    }

    #[test]
    fn shared_admits_shared_blocks_exclusive() {
        let l = RwSpinLatch::new();
        l.lock_shared();
        l.lock_shared();
        assert!(!l.try_lock_exclusive());
        l.unlock_shared();
        assert!(!l.try_lock_exclusive());
        l.unlock_shared();
        assert!(l.try_lock_exclusive());
        l.unlock_exclusive();
    }

    #[test]
    fn stripe_mapping() {
        let t = LatchTable::new(64, 4);
        assert_eq!(t.stripes(), 16);
        let t = LatchTable::new(64, 1);
        assert_eq!(t.stripes(), 64);
        let t = LatchTable::new(3, 4);
        assert_eq!(t.stripes(), 1);
    }

    #[test]
    fn none_mode_is_noop() {
        let t = LatchTable::new(8, 1);
        t.lock_span(0, 7, LatchMode::None);
        t.unlock_span(0, 7, LatchMode::None);
        // Exclusive still available on every stripe.
        t.lock_span(0, 7, LatchMode::Exclusive);
        t.unlock_span(0, 7, LatchMode::Exclusive);
    }

    #[test]
    fn with_span_unlocks_on_exit() {
        let t = LatchTable::new(8, 1);
        let r = t.with_span(2, 5, LatchMode::Exclusive, || 42);
        assert_eq!(r, 42);
        t.lock_span(2, 5, LatchMode::Exclusive);
        t.unlock_span(2, 5, LatchMode::Exclusive);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let t = Arc::new(LatchTable::new(4, 1));
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = vec![];
        for _ in 0..4 {
            let t = Arc::clone(&t);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    t.lock_span(1, 1, LatchMode::Exclusive);
                    // Non-atomic read-modify-write protected by the latch.
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                    t.unlock_span(1, 1, LatchMode::Exclusive);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
    }

    #[test]
    fn readers_and_writer_interleave_correctly() {
        let t = Arc::new(LatchTable::new(1, 1));
        let stop = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let mut handles = vec![];
        // Writer makes paired increments; readers must always observe even.
        {
            let t = Arc::clone(&t);
            let d = Arc::clone(&data);
            let s = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    t.lock_span(0, 0, LatchMode::Exclusive);
                    d.fetch_add(1, Ordering::Relaxed);
                    d.fetch_add(1, Ordering::Relaxed);
                    t.unlock_span(0, 0, LatchMode::Exclusive);
                }
                s.store(1, Ordering::Release);
            }));
        }
        for _ in 0..3 {
            let t = Arc::clone(&t);
            let d = Arc::clone(&data);
            let s = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while s.load(Ordering::Acquire) == 0 {
                    t.lock_span(0, 0, LatchMode::Shared);
                    let v = d.load(Ordering::Relaxed);
                    assert_eq!(v % 2, 0, "reader saw torn update");
                    t.unlock_span(0, 0, LatchMode::Shared);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
