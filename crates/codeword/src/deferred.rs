//! Sharded, coalescing deferred-maintenance dirty set.
//!
//! The deferred-maintenance scheme (§4.3 extension) queues codeword
//! deltas instead of applying them at `endUpdate`. The original
//! implementation kept one global `Mutex<Vec<(region, delta)>>`: every
//! updater pushed through a single mutex, drains replayed every raw
//! delta, and audits had to quiesce *all* updaters so no delta could be
//! in flight. This module replaces it with the scheme-level analogue of
//! the sharded lock manager:
//!
//! * The dirty set is split into `shards` (power of two, region-hash
//!   partitioned) so concurrent updaters almost never contend on the
//!   same mutex.
//! * Deltas *coalesce*: XOR deltas commute and compose by XOR, so N
//!   updates to a hot region cost one map entry and one `fetch_xor` on
//!   the codeword table at drain time, instead of N queue entries and N
//!   table writes.
//! * Drains are *incremental*: [`DeferredSet::drain_shard`] empties one
//!   shard, swapping its map out under the shard mutex and applying the
//!   deltas outside it. An audit of region `r` only needs shard(r)
//!   drained first (after taking `r`'s protection latch exclusively);
//!   it never quiesces writers globally.
//!
//! Lock ordering: latches → per-shard drain mutex → per-shard map
//! mutex. Both shard mutexes are only ever taken *after* any protection
//! latches (updaters push while holding their shared span; auditors
//! drain while holding the exclusive stripe latch) and neither is held
//! while acquiring a latch, so the order is acyclic. Pushes take only
//! the map mutex; drains take the drain mutex for the whole swap+apply
//! so that a completed [`DeferredSet::drain_shard`] call means *applied*,
//! not merely *swapped out* (the audit catch-up guarantee).

use crate::region::RegionId;
use crate::table::CodewordTable;
use dali_common::CodewordAlgebraKind;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fibonacci multiplicative-hash constant (same idiom as the lock-table
/// shards): odd, so multiplication permutes `u64`, and high bits mix
/// well for sequential region ids.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimal multiplicative hasher for `RegionId` keys. Region ids are
/// small sequential integers; SipHash (the `HashMap` default) is
/// pointless overhead on the update hot path.
#[derive(Default)]
pub struct RegionHasher(u64);

impl Hasher for RegionHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold high bits down: the multiply mixes upward, HashMap
        // buckets index with the low bits.
        self.0 ^ (self.0 >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(HASH_MUL);
        }
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.0 = (self.0 ^ i as u64).wrapping_mul(HASH_MUL);
    }
}

type RegionMap = HashMap<RegionId, Pending, BuildHasherDefault<RegionHasher>>;

/// Accumulated state for one dirty region.
#[derive(Clone, Copy, Debug)]
struct Pending {
    /// Every queued delta for the region, coalesced under the set's
    /// algebra (`combine`: XOR or end-around-carry addition).
    delta: u32,
    /// How many raw deltas were coalesced into `delta`.
    pushes: u64,
}

/// Sizing knobs for the dirty set (mirrored by `DaliConfig`).
#[derive(Clone, Copy, Debug)]
pub struct DeferredConfig {
    /// Shard count; rounded up to a power of two. `0` = auto: one per
    /// available CPU, with a floor of 4 (contention is driven by writer
    /// *threads*, which may oversubscribe a small host).
    pub shards: usize,
    /// Per-shard dirty-region high-watermark: a push that leaves its
    /// shard deeper than this drains the shard inline (backpressure so
    /// an idle drainer cannot let the dirty set grow without bound).
    /// `0` = unbounded.
    pub watermark: usize,
}

impl Default for DeferredConfig {
    fn default() -> DeferredConfig {
        DeferredConfig {
            shards: 0,
            watermark: 4096,
        }
    }
}

/// Point-in-time view of the dirty set and its lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeferredStatsSnapshot {
    /// Number of shards.
    pub shards: u64,
    /// Distinct regions currently dirty (map entries across shards).
    pub dirty_regions: u64,
    /// Raw deltas currently queued (before coalescing).
    pub pending_deltas: u64,
    /// Lifetime: non-empty shard drains performed.
    pub drains: u64,
    /// Lifetime: pushes absorbed into an existing entry (the savings
    /// coalescing bought over the flat queue).
    pub coalesced_deltas: u64,
    /// High-watermark of any shard's dirty-region depth.
    pub max_shard_depth: u64,
}

struct Shard {
    dirty: Mutex<RegionMap>,
    /// Serializes whole drains (swap **and** apply). Without it a
    /// drainer could swap the map out and still be applying its deltas
    /// when an auditor — already holding a region's exclusive latch —
    /// drains the now-empty shard and folds the image against a table
    /// that does not yet include the in-flight deltas: a false
    /// corruption report. Pushes never touch this mutex, so writers are
    /// not blocked by the apply phase.
    draining: Mutex<()>,
}

/// The sharded, coalescing dirty set.
pub struct DeferredSet {
    shards: Box<[Shard]>,
    /// The algebra deltas coalesce under. Must match the codeword table
    /// the set drains into — both algebras' `combine` is associative and
    /// commutative, which is exactly the invariant coalescing rests on.
    kind: CodewordAlgebraKind,
    /// `shards.len() - 1`; shard index = mixed hash masked.
    mask: usize,
    watermark: usize,
    /// Raw deltas currently queued (pushes minus drained pushes).
    pending: AtomicU64,
    drains: AtomicU64,
    coalesced: AtomicU64,
    max_depth: AtomicU64,
}

impl DeferredSet {
    /// Build a dirty set per `cfg` (see [`DeferredConfig`] for the
    /// `shards = 0` auto rule), coalescing deltas under `kind`.
    pub fn new(cfg: DeferredConfig, kind: CodewordAlgebraKind) -> DeferredSet {
        let n = if cfg.shards == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .max(4)
        } else {
            cfg.shards
        }
        .next_power_of_two();
        let shards = (0..n)
            .map(|_| Shard {
                dirty: Mutex::new(RegionMap::default()),
                draining: Mutex::new(()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        DeferredSet {
            shards,
            kind,
            mask: n - 1,
            watermark: cfg.watermark,
            pending: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }

    /// The algebra queued deltas coalesce under.
    #[inline]
    pub fn kind(&self) -> CodewordAlgebraKind {
        self.kind
    }

    /// Number of shards (power of two).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a region's deltas land in.
    #[inline]
    pub fn shard_of(&self, region: RegionId) -> usize {
        (((region as u64).wrapping_mul(HASH_MUL)) >> 33) as usize & self.mask
    }

    /// Queue `delta` against `region`, coalescing with any delta already
    /// pending. Returns `true` if the shard is over its high-watermark
    /// and the caller should drain it ([`drain_shard`](Self::drain_shard)
    /// / [`drain_region`](Self::drain_region)).
    pub fn push(&self, region: RegionId, delta: u32) -> bool {
        if delta == 0 {
            return false;
        }
        let s = self.shard_of(region);
        let (depth, coalesced) = {
            let mut map = self.shards[s].dirty.lock();
            let coalesced = match map.entry(region) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let p = e.get_mut();
                    p.delta = self.kind.combine(p.delta, delta);
                    p.pushes += 1;
                    true
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Pending { delta, pushes: 1 });
                    false
                }
            };
            (map.len() as u64, coalesced)
        };
        // Counters outside the shard lock: they are monotonic
        // diagnostics, not part of the dirty-set invariant.
        self.pending.fetch_add(1, Ordering::Relaxed);
        if coalesced {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        self.watermark != 0 && depth as usize > self.watermark
    }

    /// Drain one shard: swap its map out under the map mutex, apply the
    /// coalesced deltas to `table` outside it (pushes are never blocked
    /// by the apply phase — a pusher that races the swap lands its delta
    /// in the fresh map, still strictly after its image bytes, so the
    /// codeword only ever *lags* the image by what remains queued).
    /// Concurrent drains of the same shard serialize on the drain mutex:
    /// when this returns, every delta pushed before the call — including
    /// any swapped out by a racing drainer — has been applied, which is
    /// the guarantee audits build their latch-then-drain catch-up on.
    pub fn drain_shard(&self, shard: usize, table: &CodewordTable) {
        let _drain = self.shards[shard].draining.lock();
        let drained: RegionMap = {
            let mut map = self.shards[shard].dirty.lock();
            if map.is_empty() {
                return;
            }
            std::mem::take(&mut *map)
        };
        let mut pushes = 0u64;
        for (region, p) in drained {
            table.apply_delta(region, p.delta);
            pushes += p.pushes;
        }
        self.pending.fetch_sub(pushes, Ordering::Relaxed);
        self.drains.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain the shard holding `region`'s deltas. An auditor calls this
    /// under `region`'s exclusive protection latch: with no update
    /// bracket in flight for the region (updaters hold the latch shared
    /// across write+push), the drained table codeword exactly matches
    /// the image contents.
    #[inline]
    pub fn drain_region(&self, region: RegionId, table: &CodewordTable) {
        self.drain_shard(self.shard_of(region), table);
    }

    /// Drain every shard, one at a time (no global quiesce; each shard
    /// mutex is held only for the swap).
    pub fn drain_all(&self, table: &CodewordTable) {
        for s in 0..self.shards.len() {
            self.drain_shard(s, table);
        }
    }

    /// Discard every queued delta without applying (resync path: the
    /// table is about to be recomputed from the image, superseding them).
    /// Takes each shard's drain mutex so an in-flight drain's apply phase
    /// finishes before this returns — its deltas land *before* the
    /// recompute that supersedes them, never after.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let _drain = shard.draining.lock();
            let dropped: RegionMap = std::mem::take(&mut *shard.dirty.lock());
            let pushes: u64 = dropped.values().map(|p| p.pushes).sum();
            self.pending.fetch_sub(pushes, Ordering::Relaxed);
        }
    }

    /// Distinct regions currently dirty.
    pub fn dirty_regions(&self) -> usize {
        self.shards.iter().map(|s| s.dirty.lock().len()).sum()
    }

    /// The ids of the currently dirty regions, sorted ascending. The
    /// snapshot is per-shard (no global freeze): a region pushed while
    /// this walks may or may not appear, which is fine for the delta-
    /// certification caller — any delta pushed after the checkpoint's
    /// quiesce point belongs to the *next* certification, and the audit
    /// drains each covered shard under the region latch regardless.
    pub fn dirty_region_ids(&self) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = self
            .shards
            .iter()
            .flat_map(|s| s.dirty.lock().keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Raw deltas currently queued (before coalescing).
    #[inline]
    pub fn pending_deltas(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Snapshot the gauges and lifetime counters.
    pub fn snapshot(&self) -> DeferredStatsSnapshot {
        DeferredStatsSnapshot {
            shards: self.shards.len() as u64,
            dirty_regions: self.dirty_regions() as u64,
            pending_deltas: self.pending_deltas(),
            drains: self.drains.load(Ordering::Relaxed),
            coalesced_deltas: self.coalesced.load(Ordering::Relaxed),
            max_shard_depth: self.max_depth.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(shards: usize, watermark: usize) -> DeferredSet {
        DeferredSet::new(
            DeferredConfig { shards, watermark },
            CodewordAlgebraKind::XorFold,
        )
    }

    fn table(n: usize) -> CodewordTable {
        CodewordTable::new_zeroed(n, CodewordAlgebraKind::XorFold)
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(set(1, 0).num_shards(), 1);
        assert_eq!(set(3, 0).num_shards(), 4);
        assert_eq!(set(8, 0).num_shards(), 8);
        let auto = set(0, 0).num_shards();
        assert!(auto >= 4 && auto.is_power_of_two());
    }

    #[test]
    fn push_coalesces_per_region() {
        let d = set(4, 0);
        d.push(7, 0xaaaa);
        d.push(7, 0x5555);
        d.push(9, 0x1111);
        assert_eq!(d.dirty_regions(), 2);
        assert_eq!(d.pending_deltas(), 3);
        let snap = d.snapshot();
        assert_eq!(snap.coalesced_deltas, 1);
        assert!(snap.max_shard_depth >= 1);
    }

    #[test]
    fn zero_delta_is_dropped() {
        let d = set(4, 0);
        assert!(!d.push(3, 0));
        assert_eq!(d.dirty_regions(), 0);
        assert_eq!(d.pending_deltas(), 0);
    }

    #[test]
    fn drain_applies_coalesced_delta_once() {
        let d = set(2, 0);
        let table = table(16);
        d.push(5, 0xff00);
        d.push(5, 0x00ff);
        d.drain_region(5, &table);
        assert_eq!(table.get(5), 0xffff);
        assert_eq!(d.dirty_regions(), 0);
        assert_eq!(d.pending_deltas(), 0);
        assert_eq!(d.snapshot().drains, 1);
        // Second drain of an empty shard is a no-op and not counted.
        d.drain_region(5, &table);
        assert_eq!(d.snapshot().drains, 1);
    }

    #[test]
    fn drain_shard_leaves_other_shards_queued() {
        let d = set(8, 0);
        // Find two regions hashing to different shards.
        let a = 0;
        let b = (1..64)
            .find(|&r| d.shard_of(r) != d.shard_of(a))
            .expect("some region maps to another shard");
        let table = table(64);
        d.push(a, 1);
        d.push(b, 2);
        d.drain_region(a, &table);
        assert_eq!(table.get(a), 1);
        assert_eq!(table.get(b), 0, "other shard untouched");
        assert_eq!(d.dirty_regions(), 1);
        d.drain_all(&table);
        assert_eq!(table.get(b), 2);
        assert_eq!(d.dirty_regions(), 0);
    }

    #[test]
    fn watermark_signals_overflow() {
        let d = set(1, 2);
        assert!(!d.push(1, 1));
        assert!(!d.push(2, 1));
        assert!(d.push(3, 1), "third distinct region exceeds watermark 2");
        // Coalescing pushes do not deepen the shard.
        assert!(d.push(3, 5));
    }

    #[test]
    fn dirty_region_ids_sorted_across_shards() {
        let d = set(4, 0);
        for r in [9usize, 1, 30, 9, 17] {
            d.push(r, 0xff);
        }
        assert_eq!(d.dirty_region_ids(), vec![1, 9, 17, 30]);
        let table = table(64);
        d.drain_all(&table);
        assert!(d.dirty_region_ids().is_empty());
    }

    #[test]
    fn residue_coalescing_matches_sequential_application() {
        // The deferred-shard invariant under the residue algebra: N
        // coalesced pushes drain to the same codeword as N eager
        // apply_delta calls.
        let kind = CodewordAlgebraKind::Residue;
        let d = DeferredSet::new(
            DeferredConfig {
                shards: 2,
                watermark: 0,
            },
            kind,
        );
        assert_eq!(d.kind(), kind);
        let deferred = CodewordTable::new_zeroed(16, kind);
        let eager = CodewordTable::new_zeroed(16, kind);
        let deltas = [0xFFFF_FFF0u32, 0x20, 1, 0x8000_0000, 0x7FFF_FFFF];
        for &x in &deltas {
            d.push(5, x);
            eager.apply_delta(5, x);
        }
        d.drain_region(5, &deferred);
        assert_eq!(deferred.get(5), eager.get(5));
        assert_eq!(d.pending_deltas(), 0);
    }

    #[test]
    fn clear_discards_without_applying() {
        let d = set(2, 0);
        let table = table(8);
        d.push(1, 0xdead);
        d.clear();
        assert_eq!(d.pending_deltas(), 0);
        assert_eq!(d.dirty_regions(), 0);
        d.drain_all(&table);
        assert_eq!(table.get(1), 0, "cleared delta must not apply");
    }
}
