//! The XOR-fold codeword algebra.
//!
//! A codeword is the bitwise exclusive-or of the 32-bit little-endian words
//! of a byte range: the *i*'th bit of the codeword is the parity of the
//! *i*'th bit of each word (paper §3). Two identities make incremental
//! maintenance cheap:
//!
//! * **Composition** — `fold(a ++ b) = fold(a) ^ fold(b)`.
//! * **Update delta** — replacing a word-aligned sub-range `old` with `new`
//!   changes the region codeword by `fold(old) ^ fold(new)`.
//!
//! Deltas commute, so concurrent updaters can publish them with an atomic
//! `fetch_xor` without any ordering constraint.

use dali_common::align::WORD;

/// XOR-fold a word-aligned byte slice into a `u32` codeword.
///
/// # Panics
///
/// Panics (debug) if `bytes.len()` is not a multiple of 4. In release the
/// trailing partial word is ignored; callers are expected to widen ranges
/// with [`dali_common::align::widen_to_words`] first.
#[inline]
pub fn fold(bytes: &[u8]) -> u32 {
    debug_assert!(
        bytes.len().is_multiple_of(WORD),
        "fold over unaligned length {}",
        bytes.len()
    );
    let mut acc = 0u32;
    for chunk in bytes.chunks_exact(WORD) {
        acc ^= u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    acc
}

/// The codeword delta produced by overwriting `old` with `new` (equal
/// lengths, word-aligned).
#[inline]
pub fn delta(old: &[u8], new: &[u8]) -> u32 {
    debug_assert_eq!(old.len(), new.len());
    fold(old) ^ fold(new)
}

/// XOR-fold an arbitrary-length byte slice, zero-padding the trailing
/// partial word. Used for value checksums in read log records, where the
/// logged range need not be word-aligned.
#[inline]
pub fn fold_padded(bytes: &[u8]) -> u32 {
    let mut acc = 0u32;
    let mut chunks = bytes.chunks_exact(WORD);
    for chunk in &mut chunks {
        acc ^= u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; WORD];
        w[..rem.len()].copy_from_slice(rem);
        acc ^= u32::from_le_bytes(w);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fold_of_zeros_is_zero() {
        assert_eq!(fold(&[0u8; 64]), 0);
        assert_eq!(fold(&[]), 0);
    }

    #[test]
    fn fold_single_word_is_the_word() {
        assert_eq!(fold(&0xdead_beefu32.to_le_bytes()), 0xdead_beef);
    }

    #[test]
    fn fold_is_parity_per_bit() {
        // Three words with bit 0 set -> parity 1; two words with bit 7 set
        // -> parity 0.
        let mut buf = vec![0u8; 16];
        buf[0] = 1; // word 0 bit 0
        buf[4] = 1; // word 1 bit 0
        buf[8] = 1; // word 2 bit 0
        buf[3] = 0x80; // word 0 bit 31
        buf[7] = 0x80; // word 1 bit 31
        let cw = fold(&buf);
        assert_eq!(cw & 1, 1);
        assert_eq!(cw >> 31, 0);
    }

    #[test]
    fn delta_zero_for_identical() {
        let a = [5u8; 32];
        assert_eq!(delta(&a, &a), 0);
    }

    #[test]
    fn fold_padded_matches_fold_when_aligned() {
        let b = [1u8, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(fold_padded(&b), fold(&b));
    }

    #[test]
    fn fold_padded_pads_with_zeros() {
        assert_eq!(fold_padded(&[0xff]), 0x0000_00ff);
        assert_eq!(fold_padded(&[0, 0, 0, 0, 0xab]), 0x0000_00ab);
    }

    proptest! {
        #[test]
        fn composition(a in proptest::collection::vec(any::<u8>(), 0..64),
                       b in proptest::collection::vec(any::<u8>(), 0..64)) {
            let a4 = {
                let mut v = a.clone();
                v.truncate(v.len() / 4 * 4);
                v
            };
            let b4 = {
                let mut v = b.clone();
                v.truncate(v.len() / 4 * 4);
                v
            };
            let mut ab = a4.clone();
            ab.extend_from_slice(&b4);
            prop_assert_eq!(fold(&ab), fold(&a4) ^ fold(&b4));
        }

        #[test]
        fn incremental_maintenance_equals_recompute(
            region in proptest::collection::vec(any::<u8>(), 64..=64),
            new in proptest::collection::vec(any::<u8>(), 4..=16),
            word_off in 0usize..12,
        ) {
            // Truncate `new` to a word multiple and clamp in range.
            let mut new = new;
            new.truncate(new.len() / 4 * 4);
            prop_assume!(!new.is_empty());
            let off = (word_off * 4).min(64 - new.len());
            let off = off / 4 * 4;

            let cw_before = fold(&region);
            let old = region[off..off + new.len()].to_vec();
            let mut after = region.clone();
            after[off..off + new.len()].copy_from_slice(&new);

            let incr = cw_before ^ delta(&old, &new);
            prop_assert_eq!(incr, fold(&after));
        }

        #[test]
        fn delta_is_symmetric_difference(
            old in proptest::collection::vec(any::<u8>(), 16..=16),
            new in proptest::collection::vec(any::<u8>(), 16..=16),
        ) {
            prop_assert_eq!(delta(&old, &new), delta(&new, &old));
            prop_assert_eq!(delta(&old, &old), 0);
        }
    }
}
