//! The XOR-fold codeword algebra.
//!
//! A codeword is the bitwise exclusive-or of the 32-bit little-endian words
//! of a byte range: the *i*'th bit of the codeword is the parity of the
//! *i*'th bit of each word (paper §3). Two identities make incremental
//! maintenance cheap:
//!
//! * **Composition** — `fold(a ++ b) = fold(a) ^ fold(b)`.
//! * **Update delta** — replacing a word-aligned sub-range `old` with `new`
//!   changes the region codeword by `fold(old) ^ fold(new)`.
//!
//! Deltas commute, so concurrent updaters can publish them with an atomic
//! `fetch_xor` without any ordering constraint.
//!
//! # The wide kernel
//!
//! The fold is computed 32 bytes at a time with four independent `u64`
//! accumulators. This is exact, not an approximation: a little-endian
//! `u64` is the pair `[lo u32, hi u32]`, XOR operates on each bit column
//! independently, so XOR-ing whole `u64` lanes accumulates the even words
//! of the range in the low halves and the odd words in the high halves.
//! Folding the final `u64` with `lo ^ hi` therefore yields exactly the
//! XOR of all 32-bit words — the same value the one-word-at-a-time loop
//! produces. Four accumulators break the serial XOR dependency chain so
//! LLVM can auto-vectorize the loop to SSE/AVX and keep multiple loads in
//! flight; the remainder is mopped up one `u64` and then one `u32` at a
//! time. `u64::from_le_bytes` on byte chunks compiles to unaligned loads,
//! so the slice path needs no alignment on the base pointer.

use dali_common::align::WORD;

/// Bytes per wide block: 4 lanes x 8 bytes.
pub(crate) const BLOCK: usize = 32;

#[inline(always)]
pub(crate) fn load64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().unwrap())
}

#[inline(always)]
pub(crate) fn load32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().unwrap())
}

/// XOR all 32-bit little-endian words of `bytes`, whose length must be a
/// word multiple, using the wide 4x`u64` kernel.
#[inline]
fn fold_words_wide(bytes: &[u8]) -> u32 {
    debug_assert!(bytes.len().is_multiple_of(WORD));
    let mut lanes = [0u64; 4];
    let mut blocks = bytes.chunks_exact(BLOCK);
    for b in &mut blocks {
        lanes[0] ^= load64(&b[0..8]);
        lanes[1] ^= load64(&b[8..16]);
        lanes[2] ^= load64(&b[16..24]);
        lanes[3] ^= load64(&b[24..32]);
    }
    let tail = blocks.remainder();
    let mut words2 = tail.chunks_exact(8);
    let mut acc64 = (lanes[0] ^ lanes[1]) ^ (lanes[2] ^ lanes[3]);
    for w in &mut words2 {
        acc64 ^= load64(w);
    }
    let mut acc = (acc64 as u32) ^ ((acc64 >> 32) as u32);
    let rem = words2.remainder();
    if !rem.is_empty() {
        // len is a word multiple, so the leftover is exactly one word.
        acc ^= load32(rem);
    }
    acc
}

/// XOR-fold a word-aligned byte slice into a `u32` codeword.
///
/// # Panics
///
/// Panics — in **all** build profiles — if `bytes.len()` is not a multiple
/// of 4. (Release builds used to silently drop the trailing partial word
/// while [`Arena::xor_fold`](../../dali_mem/struct.Arena.html) rejected the
/// same length with `InvalidArg`; the slice path now rejects too, so both
/// fold entry points enforce the same contract.) Callers with unaligned
/// ranges widen them with [`dali_common::align::widen_to_words`] first, or
/// use [`fold_padded`] when zero-padding is the intended semantics.
#[inline]
pub fn fold(bytes: &[u8]) -> u32 {
    assert!(
        bytes.len().is_multiple_of(WORD),
        "fold over unaligned length {}",
        bytes.len()
    );
    fold_words_wide(bytes)
}

/// One-word-at-a-time scalar reference fold: the kernel the wide path
/// replaced, kept public for the `audit_scale` bench and the kernel
/// equivalence suites. Same contract as [`fold`].
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 4.
#[inline]
pub fn fold_scalar(bytes: &[u8]) -> u32 {
    assert!(
        bytes.len().is_multiple_of(WORD),
        "fold over unaligned length {}",
        bytes.len()
    );
    let mut acc = 0u32;
    for chunk in bytes.chunks_exact(WORD) {
        acc ^= load32(chunk);
    }
    acc
}

/// The codeword delta produced by overwriting `old` with `new` (equal
/// lengths, word-aligned). Algebraically `fold(old) ^ fold(new)`, computed
/// in a single interleaved pass over both slices — this sits on every
/// prescribed-update hot path, and fusing the walks halves the loop
/// overhead and lets both streams share the accumulator registers.
///
/// # Panics
///
/// Panics if the lengths differ or are not a multiple of 4.
#[inline]
pub fn delta(old: &[u8], new: &[u8]) -> u32 {
    assert_eq!(old.len(), new.len(), "delta over unequal lengths");
    assert!(
        old.len().is_multiple_of(WORD),
        "delta over unaligned length {}",
        old.len()
    );
    let mut lanes = [0u64; 4];
    let mut ob = old.chunks_exact(BLOCK);
    let mut nb = new.chunks_exact(BLOCK);
    for (o, n) in (&mut ob).zip(&mut nb) {
        lanes[0] ^= load64(&o[0..8]) ^ load64(&n[0..8]);
        lanes[1] ^= load64(&o[8..16]) ^ load64(&n[8..16]);
        lanes[2] ^= load64(&o[16..24]) ^ load64(&n[16..24]);
        lanes[3] ^= load64(&o[24..32]) ^ load64(&n[24..32]);
    }
    let mut acc64 = (lanes[0] ^ lanes[1]) ^ (lanes[2] ^ lanes[3]);
    let mut ow = ob.remainder().chunks_exact(8);
    let mut nw = nb.remainder().chunks_exact(8);
    for (o, n) in (&mut ow).zip(&mut nw) {
        acc64 ^= load64(o) ^ load64(n);
    }
    let mut acc = (acc64 as u32) ^ ((acc64 >> 32) as u32);
    let (orem, nrem) = (ow.remainder(), nw.remainder());
    if !orem.is_empty() {
        acc ^= load32(orem) ^ load32(nrem);
    }
    acc
}

/// XOR-fold an arbitrary-length byte slice, zero-padding the trailing
/// partial word. Used for value checksums in read log records, where the
/// logged range need not be word-aligned. Unlike [`fold`] this accepts any
/// length by construction — padding, not rejection, is the contract here.
#[inline]
pub fn fold_padded(bytes: &[u8]) -> u32 {
    let full = bytes.len() / WORD * WORD;
    let mut acc = fold_words_wide(&bytes[..full]);
    let rem = &bytes[full..];
    if !rem.is_empty() {
        let mut w = [0u8; WORD];
        w[..rem.len()].copy_from_slice(rem);
        acc ^= u32::from_le_bytes(w);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Independent byte-at-a-time reference: byte `i` contributes to bit
    /// column `8 * (i mod 4)` of the codeword. Zero-pad semantics, so it
    /// matches `fold` on aligned lengths and `fold_padded` on any length.
    fn ref_fold(bytes: &[u8]) -> u32 {
        let mut acc = 0u32;
        for (i, &b) in bytes.iter().enumerate() {
            acc ^= (b as u32) << (8 * (i & 3));
        }
        acc
    }

    fn patterned(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
            .collect()
    }

    #[test]
    fn fold_of_zeros_is_zero() {
        assert_eq!(fold(&[0u8; 64]), 0);
        assert_eq!(fold(&[]), 0);
    }

    #[test]
    fn fold_single_word_is_the_word() {
        assert_eq!(fold(&0xdead_beefu32.to_le_bytes()), 0xdead_beef);
    }

    #[test]
    fn fold_is_parity_per_bit() {
        // Three words with bit 0 set -> parity 1; two words with bit 7 set
        // -> parity 0.
        let mut buf = vec![0u8; 16];
        buf[0] = 1; // word 0 bit 0
        buf[4] = 1; // word 1 bit 0
        buf[8] = 1; // word 2 bit 0
        buf[3] = 0x80; // word 0 bit 31
        buf[7] = 0x80; // word 1 bit 31
        let cw = fold(&buf);
        assert_eq!(cw & 1, 1);
        assert_eq!(cw >> 31, 0);
    }

    /// Every word-aligned length through several wide blocks, so each
    /// remainder shape (0..3 u64 words + 0/1 u32) is exercised.
    #[test]
    fn wide_fold_matches_reference_every_aligned_length() {
        for len in (0..=4 * BLOCK + WORD).step_by(WORD) {
            let buf = patterned(len);
            assert_eq!(fold(&buf), ref_fold(&buf), "len {len}");
            assert_eq!(fold_scalar(&buf), ref_fold(&buf), "scalar len {len}");
        }
    }

    /// Every length 0..=2 blocks, including every partial-word tail.
    #[test]
    fn fold_padded_matches_reference_every_length() {
        for len in 0..=2 * BLOCK + 5 {
            let buf = patterned(len);
            assert_eq!(fold_padded(&buf), ref_fold(&buf), "len {len}");
        }
    }

    /// Misaligned base pointers: the slice kernel is defined by byte
    /// offsets within the slice, not by pointer alignment, so folding a
    /// sub-slice at every offset 0..8 must match the reference on the same
    /// sub-slice.
    #[test]
    fn wide_fold_is_alignment_oblivious() {
        let backing = patterned(3 * BLOCK + 16);
        for off in 0..8 {
            let sub = &backing[off..off + 2 * BLOCK + 8];
            assert_eq!(fold(sub), ref_fold(sub), "offset {off}");
            assert_eq!(fold_padded(&backing[off..]), ref_fold(&backing[off..]));
        }
    }

    #[test]
    #[should_panic(expected = "fold over unaligned length")]
    fn fold_rejects_unaligned_length_in_all_builds() {
        // Regression: release builds used to silently drop the trailing
        // partial word here and return fold of the first 4 bytes.
        fold(&[1u8, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "delta over unaligned length")]
    fn delta_rejects_unaligned_length() {
        delta(&[1u8, 2, 3], &[4u8, 5, 6]);
    }

    #[test]
    fn delta_zero_for_identical() {
        let a = [5u8; 32];
        assert_eq!(delta(&a, &a), 0);
    }

    /// The fused interleaved delta equals the two-pass definition for
    /// every aligned length through several blocks.
    #[test]
    fn fused_delta_matches_two_pass_every_length() {
        for len in (0..=3 * BLOCK + WORD).step_by(WORD) {
            let old = patterned(len);
            let new: Vec<u8> = old.iter().map(|b| b.wrapping_add(131)).collect();
            assert_eq!(delta(&old, &new), fold(&old) ^ fold(&new), "len {len}");
            assert_eq!(
                delta(&old, &new),
                ref_fold(&old) ^ ref_fold(&new),
                "len {len}"
            );
        }
    }

    #[test]
    fn fold_padded_matches_fold_when_aligned() {
        let b = [1u8, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(fold_padded(&b), fold(&b));
    }

    #[test]
    fn fold_padded_pads_with_zeros() {
        assert_eq!(fold_padded(&[0xff]), 0x0000_00ff);
        assert_eq!(fold_padded(&[0, 0, 0, 0, 0xab]), 0x0000_00ab);
    }

    proptest! {
        #[test]
        fn wide_fold_equals_reference(
            bytes in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let aligned = &bytes[..bytes.len() / 4 * 4];
            prop_assert_eq!(fold(aligned), ref_fold(aligned));
            prop_assert_eq!(fold(aligned), fold_scalar(aligned));
            prop_assert_eq!(fold_padded(&bytes), ref_fold(&bytes));
        }

        #[test]
        fn fused_delta_equals_reference(
            a in proptest::collection::vec(any::<u8>(), 0..512),
            b in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let n = a.len().min(b.len()) / 4 * 4;
            let (old, new) = (&a[..n], &b[..n]);
            prop_assert_eq!(delta(old, new), ref_fold(old) ^ ref_fold(new));
        }

        #[test]
        fn composition(a in proptest::collection::vec(any::<u8>(), 0..64),
                       b in proptest::collection::vec(any::<u8>(), 0..64)) {
            let a4 = {
                let mut v = a.clone();
                v.truncate(v.len() / 4 * 4);
                v
            };
            let b4 = {
                let mut v = b.clone();
                v.truncate(v.len() / 4 * 4);
                v
            };
            let mut ab = a4.clone();
            ab.extend_from_slice(&b4);
            prop_assert_eq!(fold(&ab), fold(&a4) ^ fold(&b4));
        }

        #[test]
        fn incremental_maintenance_equals_recompute(
            region in proptest::collection::vec(any::<u8>(), 64..=64),
            new in proptest::collection::vec(any::<u8>(), 4..=16),
            word_off in 0usize..12,
        ) {
            // Truncate `new` to a word multiple and clamp in range.
            let mut new = new;
            new.truncate(new.len() / 4 * 4);
            prop_assume!(!new.is_empty());
            let off = (word_off * 4).min(64 - new.len());
            let off = off / 4 * 4;

            let cw_before = fold(&region);
            let old = region[off..off + new.len()].to_vec();
            let mut after = region.clone();
            after[off..off + new.len()].copy_from_slice(&new);

            let incr = cw_before ^ delta(&old, &new);
            prop_assert_eq!(incr, fold(&after));
        }

        #[test]
        fn delta_is_symmetric_difference(
            old in proptest::collection::vec(any::<u8>(), 16..=16),
            new in proptest::collection::vec(any::<u8>(), 16..=16),
        ) {
            prop_assert_eq!(delta(&old, &new), delta(&new, &old));
            prop_assert_eq!(delta(&old, &old), 0);
        }
    }
}
