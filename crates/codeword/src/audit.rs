//! Audits: asynchronous consistency checks between region contents and
//! maintained codewords (paper §3.2).
//!
//! An audit of a region takes its protection latch exclusively (quiescing
//! updaters, who hold it at least shared across their update window),
//! folds the region, and compares with the maintained codeword. The
//! checkpointer audits every region of the database after writing a
//! checkpoint image so that checkpoints can be *certified free of
//! corruption* (§4.2); the engine can also run audits on demand or from a
//! background thread.
//!
//! Deferred maintenance: the caller passes the scheme's
//! [`DeferredSet`]; each region's dirty-set shard is drained *after* the
//! exclusive latch is taken and *before* the fold, so queued-but-
//! unapplied deltas never read as spurious mismatches — and the audit
//! never quiesces writers outside the one stripe it is checking.
//!
//! Latch batching: sweeps take one [`LatchTable::with_span`] bracket per
//! *contiguous run* of regions (bounded by the caller's `max_run`,
//! [`dali_common::DaliConfig::audit_latch_run`]) instead of one per
//! region. The PR 4 ordering argument is unchanged — every deferred
//! shard covering the run is drained inside the exclusive bracket, after
//! which no delta for any run region can be missing (updaters hold the
//! latch shared across write+enqueue) — while the latch traffic of a
//! sweep drops by a factor of the run length. The bound keeps the
//! longest writer stall proportional to `max_run` region folds.
//! `max_run = 1` is exactly the paper's latch-per-region cadence.

use crate::deferred::DeferredSet;
use crate::latch::{LatchMode, LatchTable};
use crate::region::{RegionGeometry, RegionId};
use crate::table::CodewordTable;
use dali_common::{DbAddr, PageId, Result};
use dali_mem::DbImage;

/// A region whose computed codeword did not match the maintained codeword.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorruptRegion {
    /// Region index.
    pub region: RegionId,
    /// Base address of the region.
    pub addr: DbAddr,
    /// Region length in bytes.
    pub len: usize,
    /// Maintained codeword.
    pub expected: u32,
    /// Codeword computed from the image.
    pub actual: u32,
}

/// Result of an audit pass.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Regions that failed the check.
    pub corrupt: Vec<CorruptRegion>,
    /// Number of regions checked.
    pub regions_checked: usize,
    /// Number of exclusive latch brackets (`with_span` acquisitions) the
    /// pass took. Equal to `regions_checked` at `max_run = 1`; smaller by
    /// up to the run bound when runs are batched.
    pub latch_brackets: usize,
}

impl AuditReport {
    /// True if every checked region was consistent.
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty()
    }

    /// The corrupted byte ranges, for insertion into a CorruptDataTable.
    pub fn corrupt_ranges(&self) -> Vec<(DbAddr, usize)> {
        self.corrupt.iter().map(|c| (c.addr, c.len)).collect()
    }
}

/// Audit a single region under its protection latch. For deferred
/// maintenance, pass the dirty set: the region's shard is drained under
/// the latch, after which the ordering argument is exactly the eager
/// scheme's (updaters hold the latch shared across write+enqueue, so no
/// delta for this region can be missing once the exclusive latch is
/// held).
pub fn audit_region(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    region: RegionId,
) -> Result<Option<CorruptRegion>> {
    latches.with_span(region, region, LatchMode::Exclusive, || {
        if let Some(set) = deferred {
            set.drain_region(region, table);
        }
        check_region(image, geom, table, region)
    })
}

/// Check a region with no latching (caller already holds the latch or the
/// database is quiesced, e.g. during recovery).
pub fn check_region(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    region: RegionId,
) -> Result<Option<CorruptRegion>> {
    let addr = geom.region_base(region);
    let len = geom.region_size();
    let actual = image.fold(table.kind(), addr, len)?;
    let expected = table.get(region);
    Ok(if actual != expected {
        Some(CorruptRegion {
            region,
            addr,
            len,
            expected,
            actual,
        })
    } else {
        None
    })
}

/// Audit the contiguous run `first..=last` under **one** exclusive latch
/// bracket, appending results to `report`.
///
/// Every deferred shard covering a run region is drained inside the
/// bracket (deduplicated — a 64-region run touches at most
/// `min(64, shards)` distinct shards), so the catch-up guarantee is the
/// per-region audit's, taken once per run instead of once per region.
#[allow(clippy::too_many_arguments)]
fn audit_run(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    first: RegionId,
    last: RegionId,
    report: &mut AuditReport,
) -> Result<()> {
    debug_assert!(first <= last);
    latches.with_span(first, last, LatchMode::Exclusive, || {
        if let Some(set) = deferred {
            let mut shards: Vec<usize> = (first..=last).map(|r| set.shard_of(r)).collect();
            shards.sort_unstable();
            shards.dedup();
            for s in shards {
                set.drain_shard(s, table);
            }
        }
        for r in first..=last {
            if let Some(c) = check_region(image, geom, table, r)? {
                report.corrupt.push(c);
            }
            report.regions_checked += 1;
        }
        Ok::<(), dali_common::DaliError>(())
    })?;
    report.latch_brackets += 1;
    Ok(())
}

/// Audit every region of the database in ascending order, one exclusive
/// latch bracket per run of at most `max_run` consecutive regions
/// (`max_run <= 1` gives the paper's latch-per-region sweep). Normal
/// processing continues around the audit outside the bracket currently
/// held.
pub fn audit_all(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    max_run: usize,
) -> Result<AuditReport> {
    let mut report = AuditReport::default();
    audit_range(
        image,
        geom,
        table,
        latches,
        deferred,
        0,
        geom.num_regions(),
        max_run,
        &mut report,
    )?;
    Ok(report)
}

/// Audit regions `lo..hi` in runs of at most `max_run` (shared by the
/// serial sweep and each parallel stripe, so stripe reports concatenate
/// to exactly the serial report).
#[allow(clippy::too_many_arguments)]
fn audit_range(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    lo: RegionId,
    hi: RegionId,
    max_run: usize,
    report: &mut AuditReport,
) -> Result<()> {
    let max_run = max_run.max(1);
    let mut first = lo;
    while first < hi {
        let last = (first + max_run).min(hi) - 1;
        audit_run(image, geom, table, latches, deferred, first, last, report)?;
        first = last + 1;
    }
    Ok(())
}

/// Audit every region of the database with `threads` scoped workers, each
/// scanning one contiguous stripe of the region space in ascending order,
/// in latch brackets of at most `max_run` regions (runs never cross a
/// stripe boundary).
///
/// Every bracket still holds only its own regions' latches (with the
/// covered deferred shards drained inside the bracket), so normal
/// processing continues around a parallel audit exactly as it does around
/// a serial one; brackets within a stripe are taken in ascending order
/// and brackets of different stripes are disjoint, so latch acquisition
/// cannot deadlock. Stripe results are merged in stripe order, so the
/// report — corrupt regions in ascending region order — is byte-identical
/// to [`audit_all`]'s.
///
/// `threads <= 1` (or a single-region geometry) falls back to the serial
/// scan.
pub fn audit_all_parallel(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    threads: usize,
    max_run: usize,
) -> Result<AuditReport> {
    let n = geom.num_regions();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return audit_all(image, geom, table, latches, deferred, max_run);
    }
    let per = n.div_ceil(threads);
    let stripe_reports = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (lo, hi) = (t * per, ((t + 1) * per).min(n));
                s.spawn(move || -> Result<AuditReport> {
                    let mut report = AuditReport::default();
                    audit_range(
                        image,
                        geom,
                        table,
                        latches,
                        deferred,
                        lo,
                        hi,
                        max_run,
                        &mut report,
                    )?;
                    Ok(report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("audit stripe worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut report = AuditReport::default();
    for stripe in stripe_reports {
        let stripe = stripe?;
        report.corrupt.extend(stripe.corrupt);
        report.regions_checked += stripe.regions_checked;
        report.latch_brackets += stripe.latch_brackets;
    }
    Ok(report)
}

/// Audit exactly the given regions — the delta-certification sweep.
///
/// `regions` must be sorted ascending and deduplicated (the dirty-page →
/// region mapping and [`DeferredSet::dirty_region_ids`] both produce
/// this form). Consecutive region ids are grouped into contiguous runs of
/// at most `max_run`, one latch bracket each; with `threads > 1` the
/// region list is striped into contiguous chunks first. The report lists
/// corrupt regions in ascending order and is identical for every
/// `(threads, max_run)` combination.
#[allow(clippy::too_many_arguments)]
pub fn audit_regions(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    regions: &[RegionId],
    threads: usize,
    max_run: usize,
) -> Result<AuditReport> {
    debug_assert!(regions.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
    let n = regions.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        let mut report = AuditReport::default();
        audit_region_list(
            image,
            geom,
            table,
            latches,
            deferred,
            regions,
            max_run,
            &mut report,
        )?;
        return Ok(report);
    }
    let per = n.div_ceil(threads);
    let stripe_reports = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                // Clamp both ends: with per = ceil(n/threads) the last
                // stripe's start can land past n (e.g. n=5, threads=4
                // gives per=2 and t*per=6), which would panic unclamped.
                let start = (t * per).min(n);
                let chunk = &regions[start..((t + 1) * per).min(n)];
                s.spawn(move || -> Result<AuditReport> {
                    let mut report = AuditReport::default();
                    audit_region_list(
                        image,
                        geom,
                        table,
                        latches,
                        deferred,
                        chunk,
                        max_run,
                        &mut report,
                    )?;
                    Ok(report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("audit stripe worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut report = AuditReport::default();
    for stripe in stripe_reports {
        let stripe = stripe?;
        report.corrupt.extend(stripe.corrupt);
        report.regions_checked += stripe.regions_checked;
        report.latch_brackets += stripe.latch_brackets;
    }
    Ok(report)
}

/// Audit a sorted region list, bracketing each maximal run of consecutive
/// ids (capped at `max_run`).
#[allow(clippy::too_many_arguments)]
fn audit_region_list(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    regions: &[RegionId],
    max_run: usize,
    report: &mut AuditReport,
) -> Result<()> {
    let max_run = max_run.max(1);
    let mut i = 0;
    while i < regions.len() {
        let first = regions[i];
        let mut j = i + 1;
        while j < regions.len() && j - i < max_run && regions[j] == first + (j - i) {
            j += 1;
        }
        audit_run(
            image,
            geom,
            table,
            latches,
            deferred,
            first,
            regions[j - 1],
            report,
        )?;
        i = j;
    }
    Ok(())
}

/// Audit only the regions overlapping the given pages (used when
/// propagating specific dirty pages, §4.2's page-steal discussion).
pub fn audit_pages(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    pages: &[PageId],
) -> Result<AuditReport> {
    let mut report = AuditReport::default();
    let page_size = image.page_size();
    for &page in pages {
        let base = page.base(page_size);
        let (first, last) = geom.region_span(base, page_size);
        for r in first..=last {
            if let Some(c) = audit_region(image, geom, table, latches, deferred, r)? {
                report.corrupt.push(c);
            }
            report.regions_checked += 1;
            report.latch_brackets += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::CodewordAlgebraKind;

    fn setup_kind(
        kind: CodewordAlgebraKind,
    ) -> (DbImage, RegionGeometry, CodewordTable, LatchTable) {
        let image = DbImage::new(4, 4096).unwrap();
        let geom = RegionGeometry::new(image.len(), 64).unwrap();
        let table = CodewordTable::from_image(&image, &geom, kind).unwrap();
        let latches = LatchTable::new(geom.num_regions(), 1);
        (image, geom, table, latches)
    }

    fn setup() -> (DbImage, RegionGeometry, CodewordTable, LatchTable) {
        setup_kind(CodewordAlgebraKind::XorFold)
    }

    #[test]
    fn clean_image_audits_clean() {
        let (image, geom, table, latches) = setup();
        let report = audit_all(&image, &geom, &table, &latches, None, 1).unwrap();
        assert!(report.clean());
        assert_eq!(report.regions_checked, geom.num_regions());
    }

    #[test]
    fn wild_write_detected_by_audit() {
        let (image, geom, table, latches) = setup();
        // Corrupt without maintaining the codeword.
        image.write(DbAddr(200), &[0xde, 0xad]).unwrap();
        let report = audit_all(&image, &geom, &table, &latches, None, 1).unwrap();
        assert_eq!(report.corrupt.len(), 1);
        let c = &report.corrupt[0];
        assert_eq!(c.region, geom.region_of(DbAddr(200)));
        assert_ne!(c.expected, c.actual);
    }

    #[test]
    fn maintained_update_audits_clean() {
        let (image, geom, table, latches) = setup();
        let addr = DbAddr(128);
        let old = [0u8; 4];
        let new = [9u8, 8, 7, 6];
        image.write(addr, &new).unwrap();
        table.apply_delta(geom.region_of(addr), crate::codeword::delta(&old, &new));
        assert!(audit_all(&image, &geom, &table, &latches, None, 1)
            .unwrap()
            .clean());
    }

    #[test]
    fn audit_pages_scopes_to_pages() {
        let (image, geom, table, latches) = setup();
        // Corrupt page 0 and page 2.
        image.write(DbAddr(10), &[1]).unwrap();
        image.write(DbAddr(2 * 4096 + 10), &[1]).unwrap();
        let report = audit_pages(&image, &geom, &table, &latches, None, &[PageId(0)]).unwrap();
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.regions_checked, 4096 / 64);
        let report = audit_pages(&image, &geom, &table, &latches, None, &[PageId(1)]).unwrap();
        assert!(report.clean());
        let report = audit_pages(
            &image,
            &geom,
            &table,
            &latches,
            None,
            &[PageId(0), PageId(2)],
        )
        .unwrap();
        assert_eq!(report.corrupt.len(), 2);
    }

    #[test]
    fn double_corruption_in_one_region_may_cancel() {
        // XOR codewords are a parity check: flipping the same bit twice in
        // the same word column is undetectable. This documents the known
        // limitation rather than asserting detection.
        let (image, geom, table, latches) = setup();
        image.write(DbAddr(0), &[0x01]).unwrap();
        image.write(DbAddr(4), &[0x01]).unwrap();
        let report = audit_all(&image, &geom, &table, &latches, None, 1).unwrap();
        assert!(report.clean(), "parity cancellation goes undetected");
        // But the corruption is caught if the flips land in different bit
        // positions.
        image.write(DbAddr(8), &[0x02]).unwrap();
        let report = audit_all(&image, &geom, &table, &latches, None, 1).unwrap();
        assert!(!report.clean());
    }

    #[test]
    fn parallel_audit_report_identical_to_serial() {
        let (image, geom, table, latches) = setup();
        // Corrupt several regions scattered across stripe boundaries.
        for addr in [3usize, 64, 4096 + 7, 2 * 4096 + 130, 4 * 4096 - 20] {
            image.write(DbAddr(addr), &[0x5a]).unwrap();
        }
        let serial = audit_all(&image, &geom, &table, &latches, None, 1).unwrap();
        assert!(!serial.clean());
        for threads in [1, 2, 3, 4, 7, 64, geom.num_regions() + 5] {
            let par =
                audit_all_parallel(&image, &geom, &table, &latches, None, threads, 1).unwrap();
            assert_eq!(
                par.regions_checked, serial.regions_checked,
                "{threads} threads"
            );
            assert_eq!(par.corrupt, serial.corrupt, "{threads} threads");
        }
    }

    #[test]
    fn parallel_audit_clean_image() {
        let (image, geom, table, latches) = setup();
        let report = audit_all_parallel(&image, &geom, &table, &latches, None, 4, 1).unwrap();
        assert!(report.clean());
        assert_eq!(report.regions_checked, geom.num_regions());
    }

    #[test]
    fn batched_runs_report_identical_to_per_region() {
        let (image, geom, table, latches) = setup();
        for addr in [3usize, 64, 4096 + 7, 2 * 4096 + 130, 4 * 4096 - 20] {
            image.write(DbAddr(addr), &[0x5a]).unwrap();
        }
        let baseline = audit_all(&image, &geom, &table, &latches, None, 1).unwrap();
        assert_eq!(baseline.latch_brackets, geom.num_regions());
        for max_run in [2, 3, 16, 64, geom.num_regions(), geom.num_regions() * 2] {
            for threads in [1, 4] {
                let batched =
                    audit_all_parallel(&image, &geom, &table, &latches, None, threads, max_run)
                        .unwrap();
                assert_eq!(batched.corrupt, baseline.corrupt, "run {max_run}");
                assert_eq!(batched.regions_checked, baseline.regions_checked);
                assert!(
                    batched.latch_brackets <= geom.num_regions().div_ceil(max_run) + threads,
                    "run {max_run} threads {threads}: {} brackets",
                    batched.latch_brackets
                );
            }
        }
    }

    #[test]
    fn batched_run_drains_deferred_shards() {
        let (image, geom, table, latches) = setup();
        let set = DeferredSet::new(
            crate::deferred::DeferredConfig {
                shards: 4,
                watermark: 0,
            },
            CodewordAlgebraKind::XorFold,
        );
        // Maintained updates whose deltas are queued, not yet applied.
        for region in [0, 1, 5, 9] {
            let addr = geom.region_base(region);
            let new = [region as u8 + 1; 4];
            image.write(addr, &new).unwrap();
            set.push(region, crate::codeword::delta(&[0u8; 4], &new));
        }
        let report = audit_all(&image, &geom, &table, &latches, Some(&set), 8).unwrap();
        assert!(report.clean(), "queued deltas drained inside brackets");
        assert_eq!(set.dirty_regions(), 0);
    }

    #[test]
    fn audit_regions_scopes_to_subset() {
        let (image, geom, table, latches) = setup();
        // Corrupt region 2 and region 40.
        image.write(geom.region_base(2), &[1]).unwrap();
        image.write(geom.region_base(40), &[1]).unwrap();
        // A subset covering only region 2 sees only that corruption.
        let subset = [0, 1, 2, 3, 10, 11];
        let report = audit_regions(&image, &geom, &table, &latches, None, &subset, 1, 16).unwrap();
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].region, 2);
        assert_eq!(report.regions_checked, subset.len());
        // Two consecutive runs (0..=3 and 10..=11) → two brackets.
        assert_eq!(report.latch_brackets, 2);
        // Including region 40 finds both, for every (threads, max_run).
        let all: Vec<RegionId> = (0..geom.num_regions()).collect();
        for threads in [1, 3, 8] {
            for max_run in [1, 7, 64] {
                let report = audit_regions(
                    &image, &geom, &table, &latches, None, &all, threads, max_run,
                )
                .unwrap();
                assert_eq!(report.corrupt.len(), 2, "t={threads} run={max_run}");
                assert_eq!(report.corrupt[0].region, 2);
                assert_eq!(report.corrupt[1].region, 40);
                assert_eq!(report.regions_checked, geom.num_regions());
            }
        }
        // Empty list is a clean no-op.
        let report = audit_regions(&image, &geom, &table, &latches, None, &[], 4, 8).unwrap();
        assert!(report.clean());
        assert_eq!(report.regions_checked, 0);
        assert_eq!(report.latch_brackets, 0);
    }

    #[test]
    fn audit_regions_stripes_with_ragged_region_count() {
        // n=5 regions across 4 threads gives per=ceil(5/4)=2, so the last
        // stripe's unclamped start (3*2=6) would overrun the list — this
        // used to panic the delta-certification checkpoint.
        let (image, geom, table, latches) = setup();
        image.write(geom.region_base(4), &[1]).unwrap();
        let subset = [0, 1, 2, 4, 7];
        for threads in [2, 3, 4, 5, 9] {
            let report =
                audit_regions(&image, &geom, &table, &latches, None, &subset, threads, 2).unwrap();
            assert_eq!(report.corrupt.len(), 1, "{threads} threads");
            assert_eq!(report.corrupt[0].region, 4);
            assert_eq!(report.regions_checked, subset.len());
        }
    }

    #[test]
    fn paired_same_column_flip_audits_split_by_algebra() {
        // The same wild write — bit 3 set in two words of one region,
        // same column, same direction — cancels under XOR parity but
        // shifts the residue sum by 2 * 2^3.
        for kind in CodewordAlgebraKind::ALL {
            let (image, geom, table, latches) = setup_kind(kind);
            image.write(DbAddr(128), &[0x08]).unwrap();
            image.write(DbAddr(136), &[0x08]).unwrap();
            let report = audit_all(&image, &geom, &table, &latches, None, 1).unwrap();
            match kind {
                CodewordAlgebraKind::XorFold => {
                    assert!(report.clean(), "XOR parity cancels the paired flip")
                }
                CodewordAlgebraKind::Residue => {
                    assert_eq!(report.corrupt.len(), 1, "residue sees the paired flip");
                    assert_eq!(report.corrupt[0].region, geom.region_of(DbAddr(128)));
                }
            }
        }
    }

    #[test]
    fn serial_and_striped_reports_identical_both_algebras() {
        for kind in CodewordAlgebraKind::ALL {
            let (image, geom, table, latches) = setup_kind(kind);
            for addr in [3usize, 64, 4096 + 7, 2 * 4096 + 130, 4 * 4096 - 20] {
                image.write(DbAddr(addr), &[0x5a]).unwrap();
            }
            let serial = audit_all(&image, &geom, &table, &latches, None, 1).unwrap();
            assert!(!serial.clean());
            for threads in [2, 3, 7, 64] {
                for max_run in [1, 4, 16] {
                    let par =
                        audit_all_parallel(&image, &geom, &table, &latches, None, threads, max_run)
                            .unwrap();
                    assert_eq!(par.corrupt, serial.corrupt, "{kind:?} t={threads}");
                    assert_eq!(par.regions_checked, serial.regions_checked);
                }
            }
        }
    }

    #[test]
    fn corrupt_ranges_reports_addresses() {
        let (image, geom, table, latches) = setup();
        image.write(DbAddr(65), &[7]).unwrap();
        let report = audit_all(&image, &geom, &table, &latches, None, 1).unwrap();
        let ranges = report.corrupt_ranges();
        assert_eq!(ranges, vec![(DbAddr(64), 64)]);
        let _ = geom;
    }
}
