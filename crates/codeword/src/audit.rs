//! Audits: asynchronous consistency checks between region contents and
//! maintained codewords (paper §3.2).
//!
//! An audit of a region takes its protection latch exclusively (quiescing
//! updaters, who hold it at least shared across their update window),
//! folds the region, and compares with the maintained codeword. The
//! checkpointer audits every region of the database after writing a
//! checkpoint image so that checkpoints can be *certified free of
//! corruption* (§4.2); the engine can also run audits on demand or from a
//! background thread.
//!
//! Deferred maintenance: the caller passes the scheme's
//! [`DeferredSet`]; each region's dirty-set shard is drained *after* the
//! exclusive latch is taken and *before* the fold, so queued-but-
//! unapplied deltas never read as spurious mismatches — and the audit
//! never quiesces writers outside the one stripe it is checking.

use crate::deferred::DeferredSet;
use crate::latch::{LatchMode, LatchTable};
use crate::region::{RegionGeometry, RegionId};
use crate::table::CodewordTable;
use dali_common::{DbAddr, PageId, Result};
use dali_mem::DbImage;

/// A region whose computed codeword did not match the maintained codeword.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorruptRegion {
    /// Region index.
    pub region: RegionId,
    /// Base address of the region.
    pub addr: DbAddr,
    /// Region length in bytes.
    pub len: usize,
    /// Maintained codeword.
    pub expected: u32,
    /// Codeword computed from the image.
    pub actual: u32,
}

/// Result of an audit pass.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Regions that failed the check.
    pub corrupt: Vec<CorruptRegion>,
    /// Number of regions checked.
    pub regions_checked: usize,
}

impl AuditReport {
    /// True if every checked region was consistent.
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty()
    }

    /// The corrupted byte ranges, for insertion into a CorruptDataTable.
    pub fn corrupt_ranges(&self) -> Vec<(DbAddr, usize)> {
        self.corrupt.iter().map(|c| (c.addr, c.len)).collect()
    }
}

/// Audit a single region under its protection latch. For deferred
/// maintenance, pass the dirty set: the region's shard is drained under
/// the latch, after which the ordering argument is exactly the eager
/// scheme's (updaters hold the latch shared across write+enqueue, so no
/// delta for this region can be missing once the exclusive latch is
/// held).
pub fn audit_region(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    region: RegionId,
) -> Result<Option<CorruptRegion>> {
    latches.with_span(region, region, LatchMode::Exclusive, || {
        if let Some(set) = deferred {
            set.drain_region(region, table);
        }
        check_region(image, geom, table, region)
    })
}

/// Check a region with no latching (caller already holds the latch or the
/// database is quiesced, e.g. during recovery).
pub fn check_region(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    region: RegionId,
) -> Result<Option<CorruptRegion>> {
    let addr = geom.region_base(region);
    let len = geom.region_size();
    let actual = image.xor_fold(addr, len)?;
    let expected = table.get(region);
    Ok(if actual != expected {
        Some(CorruptRegion {
            region,
            addr,
            len,
            expected,
            actual,
        })
    } else {
        None
    })
}

/// Audit every region of the database, region by region (each under its
/// latch, so normal processing continues around the audit).
pub fn audit_all(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
) -> Result<AuditReport> {
    let mut report = AuditReport::default();
    for r in 0..geom.num_regions() {
        if let Some(c) = audit_region(image, geom, table, latches, deferred, r)? {
            report.corrupt.push(c);
        }
        report.regions_checked += 1;
    }
    Ok(report)
}

/// Audit every region of the database with `threads` scoped workers, each
/// scanning one contiguous stripe of the region space in ascending order.
///
/// Every region is still audited under its own exclusive protection latch
/// (with the region's deferred shard drained under the latch), so normal
/// processing continues around a parallel audit exactly as it does around
/// a serial one; only the order in which region latches are taken changes,
/// and single-region exclusive acquisitions cannot deadlock. Stripe
/// results are merged in stripe order, so the report — corrupt regions in
/// ascending region order — is byte-identical to [`audit_all`]'s.
///
/// `threads <= 1` (or a single-region geometry) falls back to the serial
/// scan.
pub fn audit_all_parallel(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    threads: usize,
) -> Result<AuditReport> {
    let n = geom.num_regions();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return audit_all(image, geom, table, latches, deferred);
    }
    let per = n.div_ceil(threads);
    let stripe_reports = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (lo, hi) = (t * per, ((t + 1) * per).min(n));
                s.spawn(move || -> Result<AuditReport> {
                    let mut report = AuditReport::default();
                    for r in lo..hi {
                        if let Some(c) = audit_region(image, geom, table, latches, deferred, r)? {
                            report.corrupt.push(c);
                        }
                        report.regions_checked += 1;
                    }
                    Ok(report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("audit stripe worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut report = AuditReport::default();
    for stripe in stripe_reports {
        let stripe = stripe?;
        report.corrupt.extend(stripe.corrupt);
        report.regions_checked += stripe.regions_checked;
    }
    Ok(report)
}

/// Audit only the regions overlapping the given pages (used when
/// propagating specific dirty pages, §4.2's page-steal discussion).
pub fn audit_pages(
    image: &DbImage,
    geom: &RegionGeometry,
    table: &CodewordTable,
    latches: &LatchTable,
    deferred: Option<&DeferredSet>,
    pages: &[PageId],
) -> Result<AuditReport> {
    let mut report = AuditReport::default();
    let page_size = image.page_size();
    for &page in pages {
        let base = page.base(page_size);
        let (first, last) = geom.region_span(base, page_size);
        for r in first..=last {
            if let Some(c) = audit_region(image, geom, table, latches, deferred, r)? {
                report.corrupt.push(c);
            }
            report.regions_checked += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DbImage, RegionGeometry, CodewordTable, LatchTable) {
        let image = DbImage::new(4, 4096).unwrap();
        let geom = RegionGeometry::new(image.len(), 64).unwrap();
        let table = CodewordTable::from_image(&image, &geom).unwrap();
        let latches = LatchTable::new(geom.num_regions(), 1);
        (image, geom, table, latches)
    }

    #[test]
    fn clean_image_audits_clean() {
        let (image, geom, table, latches) = setup();
        let report = audit_all(&image, &geom, &table, &latches, None).unwrap();
        assert!(report.clean());
        assert_eq!(report.regions_checked, geom.num_regions());
    }

    #[test]
    fn wild_write_detected_by_audit() {
        let (image, geom, table, latches) = setup();
        // Corrupt without maintaining the codeword.
        image.write(DbAddr(200), &[0xde, 0xad]).unwrap();
        let report = audit_all(&image, &geom, &table, &latches, None).unwrap();
        assert_eq!(report.corrupt.len(), 1);
        let c = &report.corrupt[0];
        assert_eq!(c.region, geom.region_of(DbAddr(200)));
        assert_ne!(c.expected, c.actual);
    }

    #[test]
    fn maintained_update_audits_clean() {
        let (image, geom, table, latches) = setup();
        let addr = DbAddr(128);
        let old = [0u8; 4];
        let new = [9u8, 8, 7, 6];
        image.write(addr, &new).unwrap();
        table.apply_delta(geom.region_of(addr), crate::codeword::delta(&old, &new));
        assert!(audit_all(&image, &geom, &table, &latches, None)
            .unwrap()
            .clean());
    }

    #[test]
    fn audit_pages_scopes_to_pages() {
        let (image, geom, table, latches) = setup();
        // Corrupt page 0 and page 2.
        image.write(DbAddr(10), &[1]).unwrap();
        image.write(DbAddr(2 * 4096 + 10), &[1]).unwrap();
        let report = audit_pages(&image, &geom, &table, &latches, None, &[PageId(0)]).unwrap();
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.regions_checked, 4096 / 64);
        let report = audit_pages(&image, &geom, &table, &latches, None, &[PageId(1)]).unwrap();
        assert!(report.clean());
        let report = audit_pages(
            &image,
            &geom,
            &table,
            &latches,
            None,
            &[PageId(0), PageId(2)],
        )
        .unwrap();
        assert_eq!(report.corrupt.len(), 2);
    }

    #[test]
    fn double_corruption_in_one_region_may_cancel() {
        // XOR codewords are a parity check: flipping the same bit twice in
        // the same word column is undetectable. This documents the known
        // limitation rather than asserting detection.
        let (image, geom, table, latches) = setup();
        image.write(DbAddr(0), &[0x01]).unwrap();
        image.write(DbAddr(4), &[0x01]).unwrap();
        let report = audit_all(&image, &geom, &table, &latches, None).unwrap();
        assert!(report.clean(), "parity cancellation goes undetected");
        // But the corruption is caught if the flips land in different bit
        // positions.
        image.write(DbAddr(8), &[0x02]).unwrap();
        let report = audit_all(&image, &geom, &table, &latches, None).unwrap();
        assert!(!report.clean());
    }

    #[test]
    fn parallel_audit_report_identical_to_serial() {
        let (image, geom, table, latches) = setup();
        // Corrupt several regions scattered across stripe boundaries.
        for addr in [3usize, 64, 4096 + 7, 2 * 4096 + 130, 4 * 4096 - 20] {
            image.write(DbAddr(addr), &[0x5a]).unwrap();
        }
        let serial = audit_all(&image, &geom, &table, &latches, None).unwrap();
        assert!(!serial.clean());
        for threads in [1, 2, 3, 4, 7, 64, geom.num_regions() + 5] {
            let par = audit_all_parallel(&image, &geom, &table, &latches, None, threads).unwrap();
            assert_eq!(
                par.regions_checked, serial.regions_checked,
                "{threads} threads"
            );
            assert_eq!(par.corrupt, serial.corrupt, "{threads} threads");
        }
    }

    #[test]
    fn parallel_audit_clean_image() {
        let (image, geom, table, latches) = setup();
        let report = audit_all_parallel(&image, &geom, &table, &latches, None, 4).unwrap();
        assert!(report.clean());
        assert_eq!(report.regions_checked, geom.num_regions());
    }

    #[test]
    fn corrupt_ranges_reports_addresses() {
        let (image, geom, table, latches) = setup();
        image.write(DbAddr(65), &[7]).unwrap();
        let report = audit_all(&image, &geom, &table, &latches, None).unwrap();
        let ranges = report.corrupt_ranges();
        assert_eq!(ranges, vec![(DbAddr(64), 64)]);
        let _ = geom;
    }
}
