//! Protection-region geometry.
//!
//! Regions are fixed-size, power-of-two byte ranges tiling the database
//! image. The region size is the central time/space trade-off of the
//! Read Prechecking scheme (Table 2 evaluates 64 B, 512 B and 8 K regions):
//! small regions make prechecks cheap but need more codeword space; large
//! regions amortize space but every read folds the whole region.

use dali_common::align::split_by_chunks;
use dali_common::{DaliError, DbAddr, Result};

/// Index of a protection region.
pub type RegionId = usize;

/// Geometry of the protection regions tiling an address space.
#[derive(Clone, Copy, Debug)]
pub struct RegionGeometry {
    region_size: usize,
    total_bytes: usize,
}

impl RegionGeometry {
    /// Tile `total_bytes` of address space with `region_size`-byte regions.
    /// `region_size` must be a power of two dividing `total_bytes`.
    pub fn new(total_bytes: usize, region_size: usize) -> Result<RegionGeometry> {
        if !region_size.is_power_of_two() || region_size < dali_common::align::WORD {
            return Err(DaliError::InvalidArg(format!(
                "region size {region_size} must be a power of two >= 4"
            )));
        }
        if !total_bytes.is_multiple_of(region_size) || total_bytes == 0 {
            return Err(DaliError::InvalidArg(format!(
                "total bytes {total_bytes} not a positive multiple of region size {region_size}"
            )));
        }
        Ok(RegionGeometry {
            region_size,
            total_bytes,
        })
    }

    /// Size of each region in bytes.
    #[inline]
    pub fn region_size(&self) -> usize {
        self.region_size
    }

    /// Number of regions.
    #[inline]
    pub fn num_regions(&self) -> usize {
        self.total_bytes / self.region_size
    }

    /// Total bytes covered.
    #[inline]
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// The region containing `addr`.
    #[inline]
    pub fn region_of(&self, addr: DbAddr) -> RegionId {
        debug_assert!(addr.0 < self.total_bytes);
        addr.0 / self.region_size
    }

    /// Base address of region `id`.
    #[inline]
    pub fn region_base(&self, id: RegionId) -> DbAddr {
        DbAddr(id * self.region_size)
    }

    /// Inclusive range of region ids overlapped by `[addr, addr+len)`.
    /// A zero-length range maps to the single region containing `addr`.
    #[inline]
    pub fn region_span(&self, addr: DbAddr, len: usize) -> (RegionId, RegionId) {
        let first = addr.0 / self.region_size;
        let last = if len == 0 {
            first
        } else {
            (addr.0 + len - 1) / self.region_size
        };
        (first, last)
    }

    /// Iterate `(region, absolute_start, len)` pieces of `[addr, addr+len)`
    /// split at region boundaries.
    pub fn split(
        &self,
        addr: DbAddr,
        len: usize,
    ) -> impl Iterator<Item = (RegionId, DbAddr, usize)> {
        split_by_chunks(addr.0, len, self.region_size).map(|(ci, s, l)| (ci, DbAddr(s), l))
    }

    /// Bytes of codeword storage for this geometry (one `u32` per region).
    pub fn codeword_bytes(&self) -> usize {
        self.num_regions() * 4
    }

    /// Space overhead of codewords relative to the data they protect.
    pub fn space_overhead(&self) -> f64 {
        self.codeword_bytes() as f64 / self.total_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let g = RegionGeometry::new(4096, 64).unwrap();
        assert_eq!(g.num_regions(), 64);
        assert_eq!(g.region_size(), 64);
        assert_eq!(g.region_of(DbAddr(0)), 0);
        assert_eq!(g.region_of(DbAddr(63)), 0);
        assert_eq!(g.region_of(DbAddr(64)), 1);
        assert_eq!(g.region_base(3), DbAddr(192));
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(RegionGeometry::new(4096, 48).is_err());
        assert!(RegionGeometry::new(4096, 2).is_err());
        assert!(RegionGeometry::new(100, 64).is_err());
        assert!(RegionGeometry::new(0, 64).is_err());
    }

    #[test]
    fn span_and_split_agree() {
        let g = RegionGeometry::new(4096, 64).unwrap();
        let (f, l) = g.region_span(DbAddr(60), 10);
        assert_eq!((f, l), (0, 1));
        let parts: Vec<_> = g.split(DbAddr(60), 10).collect();
        assert_eq!(parts, vec![(0, DbAddr(60), 4), (1, DbAddr(64), 6)]);
    }

    #[test]
    fn zero_length_span() {
        let g = RegionGeometry::new(4096, 64).unwrap();
        assert_eq!(g.region_span(DbAddr(130), 0), (2, 2));
        assert_eq!(g.split(DbAddr(130), 0).count(), 0);
    }

    #[test]
    fn space_overhead_matches_paper_64b() {
        // 4-byte codeword per 64-byte region = 6.25%, the ~6% quoted in
        // §5.3 for the small-domain precheck configuration.
        let g = RegionGeometry::new(1 << 20, 64).unwrap();
        assert!((g.space_overhead() - 0.0625).abs() < 1e-9);
    }

    #[test]
    fn space_overhead_shrinks_with_region_size() {
        let small = RegionGeometry::new(1 << 20, 64).unwrap();
        let large = RegionGeometry::new(1 << 20, 8192).unwrap();
        assert!(large.space_overhead() < small.space_overhead() / 100.0);
    }
}
