//! Parity stripe for online repair: rebuild a corrupted region in place.
//!
//! Codewords *detect* direct corruption; they cannot say what the bytes
//! used to be. This module adds the redundancy that can: every group of
//! `group_size` consecutive protection regions is XOR-accumulated into a
//! region-sized *parity buffer*, so any single member region is
//! reconstructible as `parity ⊕ (⊕ siblings)` — no checkpoint read, no
//! WAL replay (the Pangolin approach, grafted onto the paper's region
//! geometry).
//!
//! Maintenance rides the exact discipline of the codeword path:
//!
//! * Updaters, still inside their shared protection-latch bracket,
//!   enqueue the *directed byte delta* `old ⊕ new` of each region piece
//!   into a sharded, coalescing dirty set (the [`crate::deferred`]
//!   pattern: region-hash shards, per-shard map mutex, deltas coalesce by
//!   XOR — XOR byte vectors form a commutative group just like codeword
//!   deltas, so order never matters).
//! * Drains fold the coalesced delta into the group's parity buffer and
//!   move the group's maintained *parity codeword* through the configured
//!   [`CodewordAlgebraKind`]'s `combine`/`delta_of_folds` contract — the
//!   stripe itself is codeword-protected, so a wild write into parity
//!   memory is detected (stale parity) instead of being trusted by a
//!   repair.
//!
//! Consistency: for an observer holding the whole group's protection
//! latches exclusively, draining the group's shards makes the parity
//! buffer exactly the XOR of the member regions' bytes (updaters hold
//! the latch shared across write+enqueue, so no delta can be in flight).
//! That is precisely the bracket [`crate::protection::CodewordProtection`]
//! takes to repair.
//!
//! Lock ordering: protection latches → per-shard drain mutex → per-shard
//! map mutex → per-group buffer mutex. Pushes take only the map mutex;
//! drains hold the drain mutex across swap *and* apply (same catch-up
//! guarantee as [`crate::deferred::DeferredSet::drain_shard`]).

use crate::algebra;
use crate::deferred::RegionHasher;
use crate::region::{RegionGeometry, RegionId};
use dali_common::{CodewordAlgebraKind, DaliError, Result};
use dali_mem::DbImage;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Index of a parity group (`region / group_size`).
pub type ParityGroupId = usize;

/// Same Fibonacci multiplicative-hash constant as the deferred dirty set.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

type ParityMap = HashMap<RegionId, PendingParity, BuildHasherDefault<RegionHasher>>;

/// Coalesced byte delta for one dirty region: the XOR of every
/// `old ⊕ new` window enqueued since the last drain, positioned at its
/// region-relative offset in a region-sized buffer.
struct PendingParity {
    delta: Vec<u8>,
    pushes: u64,
}

struct ParityShard {
    dirty: Mutex<ParityMap>,
    /// Serializes whole drains (swap **and** apply), for the same reason
    /// as the deferred set's drain mutex: a completed drain call must
    /// mean *applied to the stripe*, not merely *swapped out*.
    draining: Mutex<()>,
}

struct Group {
    /// XOR of the member regions' bytes (once the group's shards are
    /// drained under the group's exclusive latches).
    buf: Mutex<Vec<u8>>,
    /// Maintained codeword of `buf` under the stripe's algebra; moved by
    /// `delta_of_folds` on every drain, verified against a fresh fold
    /// before any repair trusts the buffer.
    word: AtomicU32,
    /// Set when a drain mutates `buf`; the delta-certification sweep
    /// collects and verifies dirty groups (parity buffers are not backed
    /// by image pages, so the dirty-page → region footprint cannot see
    /// them — this flag is their certification channel).
    dirty: AtomicBool,
}

/// Point-in-time view of the stripe's gauges and lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParityStatsSnapshot {
    /// Number of parity groups.
    pub groups: u64,
    /// Regions per group (the configured `parity_group_size`).
    pub group_size: u64,
    /// Raw byte-deltas currently queued (before coalescing).
    pub pending_deltas: u64,
    /// Lifetime: non-empty shard drains performed.
    pub drains: u64,
    /// Lifetime: pushes absorbed into an existing entry.
    pub coalesced_deltas: u64,
    /// Lifetime: delta bytes XORed toward the stripe (the parity write
    /// amplification numerator).
    pub delta_bytes: u64,
    /// Groups currently flagged dirty for certification.
    pub dirty_groups: u64,
}

/// The parity stripe: one region-sized XOR accumulator per group of
/// `group_size` consecutive regions, plus the sharded dirty set feeding
/// it.
pub struct ParityStripe {
    group_size: usize,
    region_size: usize,
    num_regions: usize,
    kind: CodewordAlgebraKind,
    groups: Box<[Group]>,
    shards: Box<[ParityShard]>,
    mask: usize,
    watermark: usize,
    pending: AtomicU64,
    drains: AtomicU64,
    coalesced: AtomicU64,
    delta_bytes: AtomicU64,
}

impl ParityStripe {
    /// Build a stripe over `geom` with `group_size` regions per group.
    /// `shards` follows the deferred set's rule (rounded up to a power of
    /// two; `0` = one per CPU with a floor of four); `watermark` bounds a
    /// shard's dirty-region depth before a push asks its caller to drain
    /// inline (`0` = unbounded).
    pub fn new(
        geom: &RegionGeometry,
        group_size: usize,
        shards: usize,
        watermark: usize,
        kind: CodewordAlgebraKind,
    ) -> Result<ParityStripe> {
        if group_size == 0 {
            return Err(DaliError::InvalidArg("parity group size 0".into()));
        }
        let num_regions = geom.num_regions();
        let num_groups = num_regions.div_ceil(group_size);
        let region_size = geom.region_size();
        let groups = (0..num_groups)
            .map(|_| Group {
                buf: Mutex::new(vec![0u8; region_size]),
                word: AtomicU32::new(kind.identity()),
                dirty: AtomicBool::new(false),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let n = if shards == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .max(4)
        } else {
            shards
        }
        .next_power_of_two();
        let shards = (0..n)
            .map(|_| ParityShard {
                dirty: Mutex::new(ParityMap::default()),
                draining: Mutex::new(()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ok(ParityStripe {
            group_size,
            region_size,
            num_regions,
            kind,
            groups,
            shards,
            mask: n - 1,
            watermark,
            pending: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            delta_bytes: AtomicU64::new(0),
        })
    }

    /// Regions per parity group.
    #[inline]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of parity groups (`ceil(num_regions / group_size)`).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The algebra the maintained parity codewords live in.
    #[inline]
    pub fn kind(&self) -> CodewordAlgebraKind {
        self.kind
    }

    /// The parity group containing `region`.
    #[inline]
    pub fn group_of(&self, region: RegionId) -> ParityGroupId {
        region / self.group_size
    }

    /// Inclusive member-region span of `group` (the last group may be
    /// short when the region count is not a multiple of the group size).
    #[inline]
    pub fn members(&self, group: ParityGroupId) -> (RegionId, RegionId) {
        let first = group * self.group_size;
        let last = (first + self.group_size).min(self.num_regions) - 1;
        (first, last)
    }

    /// The shard a region's parity deltas land in (same multiplicative
    /// hash as the codeword dirty set).
    #[inline]
    pub fn shard_of(&self, region: RegionId) -> usize {
        (((region as u64).wrapping_mul(HASH_MUL)) >> 33) as usize & self.mask
    }

    /// Enqueue the directed byte delta of overwriting `old` with `new` at
    /// region-relative offset `rel` of `region`. Called by updaters under
    /// their shared protection-latch bracket, right next to the codeword
    /// delta push. Returns `true` when the shard is over its watermark
    /// and the caller should [`drain_shard`](Self::drain_shard) inline.
    pub fn record_delta(&self, region: RegionId, rel: usize, old: &[u8], new: &[u8]) -> bool {
        debug_assert_eq!(old.len(), new.len());
        debug_assert!(rel + new.len() <= self.region_size);
        let s = self.shard_of(region);
        let depth = {
            let mut map = self.shards[s].dirty.lock();
            let (entry, coalesced) = match map.entry(region) {
                std::collections::hash_map::Entry::Occupied(e) => (e.into_mut(), true),
                std::collections::hash_map::Entry::Vacant(v) => (
                    v.insert(PendingParity {
                        delta: vec![0u8; self.region_size],
                        pushes: 0,
                    }),
                    false,
                ),
            };
            for i in 0..new.len() {
                entry.delta[rel + i] ^= old[i] ^ new[i];
            }
            entry.pushes += 1;
            if coalesced {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            map.len() as u64
        };
        self.pending.fetch_add(1, Ordering::Relaxed);
        self.delta_bytes
            .fetch_add(new.len() as u64, Ordering::Relaxed);
        self.watermark != 0 && depth as usize > self.watermark
    }

    /// Fold a coalesced region delta into its group: XOR the bytes into
    /// the parity buffer and move the maintained parity codeword by the
    /// algebra's directed delta (`combine(word, delta_of_folds(before,
    /// after))` — the same contract codeword maintenance uses, so a
    /// stale/corrupt word stays inconsistent and is caught by
    /// [`verify_group`](Self::verify_group)).
    fn apply_to_group(&self, region: RegionId, delta: &[u8]) {
        let g = self.group_of(region);
        let group = &self.groups[g];
        let mut buf = group.buf.lock();
        let before = algebra::fold(self.kind, &buf);
        for (b, d) in buf.iter_mut().zip(delta) {
            *b ^= d;
        }
        let after = algebra::fold(self.kind, &buf);
        let word = group.word.load(Ordering::Acquire);
        group.word.store(
            self.kind
                .combine(word, self.kind.delta_of_folds(before, after)),
            Ordering::Release,
        );
        group.dirty.store(true, Ordering::Release);
    }

    /// Drain one shard: swap its map out under the map mutex, apply the
    /// coalesced byte deltas to the group buffers outside it. Whole
    /// drains serialize on the shard's drain mutex, so a completed call
    /// means every delta pushed before it has reached the stripe.
    pub fn drain_shard(&self, shard: usize) {
        let _drain = self.shards[shard].draining.lock();
        let drained: ParityMap = {
            let mut map = self.shards[shard].dirty.lock();
            if map.is_empty() {
                return;
            }
            std::mem::take(&mut *map)
        };
        let mut pushes = 0u64;
        for (region, p) in drained {
            self.apply_to_group(region, &p.delta);
            pushes += p.pushes;
        }
        self.pending.fetch_sub(pushes, Ordering::Relaxed);
        self.drains.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain the shard holding `region`'s parity deltas.
    #[inline]
    pub fn drain_region(&self, region: RegionId) {
        self.drain_shard(self.shard_of(region));
    }

    /// Drain every shard covering the members of `group`, deduplicated.
    /// The caller holds the group's protection latches exclusively; on
    /// return the parity buffer reflects every update to the group.
    pub fn drain_group(&self, group: ParityGroupId) {
        let (first, last) = self.members(group);
        let mut shards: Vec<usize> = (first..=last).map(|r| self.shard_of(r)).collect();
        shards.sort_unstable();
        shards.dedup();
        for s in shards {
            self.drain_shard(s);
        }
    }

    /// Drain every shard, one at a time.
    pub fn drain_all(&self) {
        for s in 0..self.shards.len() {
            self.drain_shard(s);
        }
    }

    /// Verify `group`'s parity buffer against its maintained codeword.
    /// `false` means the stripe itself took a wild write (or missed
    /// maintenance): *stale parity* — repair must fall back.
    pub fn verify_group(&self, group: ParityGroupId) -> bool {
        let buf = self.groups[group].buf.lock();
        algebra::fold(self.kind, &buf) == self.groups[group].word.load(Ordering::Acquire)
    }

    /// The maintained parity codeword of `group`.
    #[inline]
    pub fn parity_word(&self, group: ParityGroupId) -> u32 {
        self.groups[group].word.load(Ordering::Acquire)
    }

    /// Copy `group`'s parity buffer into `out` (checkpoint persistence).
    pub fn copy_group(&self, group: ParityGroupId, out: &mut [u8]) {
        out.copy_from_slice(&self.groups[group].buf.lock());
    }

    /// Copy `group`'s parity buffer into `out` and return its maintained
    /// codeword, as one consistent pair (the word only moves under the
    /// buffer mutex). Checkpoint persistence snapshots groups through
    /// this so the persisted stripe is internally verifiable.
    pub fn export_group(&self, group: ParityGroupId, out: &mut [u8]) -> u32 {
        let buf = self.groups[group].buf.lock();
        out.copy_from_slice(&buf);
        self.groups[group].word.load(Ordering::Acquire)
    }

    /// Reconstruct the bytes of `exclude` from its group: the parity
    /// buffer XOR every *sibling* region's current image bytes. The
    /// caller holds the whole group's latches exclusively and has drained
    /// the group's shards; it must verify the siblings' codewords and
    /// [`verify_group`](Self::verify_group) before trusting the result.
    pub fn reconstruct(
        &self,
        image: &DbImage,
        geom: &RegionGeometry,
        exclude: RegionId,
        out: &mut [u8],
    ) -> Result<()> {
        debug_assert_eq!(out.len(), self.region_size);
        let g = self.group_of(exclude);
        out.copy_from_slice(&self.groups[g].buf.lock());
        let (first, last) = self.members(g);
        let mut sibling = vec![0u8; self.region_size];
        for r in first..=last {
            if r == exclude {
                continue;
            }
            image.read(geom.region_base(r), &mut sibling)?;
            for (o, s) in out.iter_mut().zip(&sibling) {
                *o ^= s;
            }
        }
        Ok(())
    }

    /// Rebuild the whole stripe from the image: zero every buffer, XOR
    /// every region's bytes into its group, recompute the parity
    /// codewords, and discard queued deltas (they are superseded, exactly
    /// like the codeword dirty set under
    /// [`crate::deferred::DeferredSet::clear`]). The caller quiesces
    /// updaters (recovery resync, initial build).
    pub fn resync(&self, image: &DbImage, geom: &RegionGeometry) -> Result<()> {
        for shard in self.shards.iter() {
            let _drain = shard.draining.lock();
            let dropped: ParityMap = std::mem::take(&mut *shard.dirty.lock());
            let pushes: u64 = dropped.values().map(|p| p.pushes).sum();
            self.pending.fetch_sub(pushes, Ordering::Relaxed);
        }
        let mut region = vec![0u8; self.region_size];
        for (g, group) in self.groups.iter().enumerate() {
            let mut buf = group.buf.lock();
            buf.fill(0);
            let (first, last) = self.members(g);
            for r in first..=last {
                image.read(geom.region_base(r), &mut region)?;
                for (b, s) in buf.iter_mut().zip(&region) {
                    *b ^= s;
                }
            }
            group
                .word
                .store(algebra::fold(self.kind, &buf), Ordering::Release);
            group.dirty.store(false, Ordering::Release);
        }
        Ok(())
    }

    /// Rebuild one group's parity buffer and codeword from the image.
    /// The caller holds the group's protection latches exclusively and
    /// has drained the group's shards (otherwise an in-flight or queued
    /// delta would be double-counted when it later drains) — the online
    /// complement of [`resync`](Self::resync) for healing a single stale
    /// group whose members are known clean.
    pub fn rebuild_group(
        &self,
        image: &DbImage,
        geom: &RegionGeometry,
        group: ParityGroupId,
    ) -> Result<()> {
        let grp = &self.groups[group];
        let mut buf = grp.buf.lock();
        buf.fill(0);
        let (first, last) = self.members(group);
        let mut region = vec![0u8; self.region_size];
        for r in first..=last {
            image.read(geom.region_base(r), &mut region)?;
            for (b, s) in buf.iter_mut().zip(&region) {
                *b ^= s;
            }
        }
        grp.word
            .store(algebra::fold(self.kind, &buf), Ordering::Release);
        grp.dirty.store(false, Ordering::Release);
        Ok(())
    }

    /// XOR `bytes` into `group`'s parity buffer at offset `rel` *without*
    /// maintaining the parity codeword — a wild write into stripe memory.
    /// Fault-injection campaigns and tests use this to manufacture the
    /// stale-parity fallback case.
    pub fn wild_xor_group(&self, group: ParityGroupId, rel: usize, bytes: &[u8]) {
        let mut buf = self.groups[group].buf.lock();
        for (i, b) in bytes.iter().enumerate() {
            buf[rel + i] ^= b;
        }
    }

    /// Collect and clear the groups flagged dirty since the last call,
    /// sorted ascending — the certification footprint of the stripe
    /// (parity buffers live outside the image, so the dirty-page → region
    /// mapping cannot cover them).
    pub fn take_dirty_groups(&self) -> Vec<ParityGroupId> {
        (0..self.groups.len())
            .filter(|&g| self.groups[g].dirty.swap(false, Ordering::AcqRel))
            .collect()
    }

    /// The dirty-group gauge without clearing.
    pub fn dirty_group_count(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| g.dirty.load(Ordering::Acquire))
            .count()
    }

    /// Raw byte-deltas currently queued (before coalescing).
    #[inline]
    pub fn pending_deltas(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Snapshot the gauges and lifetime counters.
    pub fn snapshot(&self) -> ParityStatsSnapshot {
        ParityStatsSnapshot {
            groups: self.groups.len() as u64,
            group_size: self.group_size as u64,
            pending_deltas: self.pending_deltas(),
            drains: self.drains.load(Ordering::Relaxed),
            coalesced_deltas: self.coalesced.load(Ordering::Relaxed),
            delta_bytes: self.delta_bytes.load(Ordering::Relaxed),
            dirty_groups: self.dirty_group_count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::DbAddr;

    fn setup(kind: CodewordAlgebraKind) -> (DbImage, RegionGeometry, ParityStripe) {
        let image = DbImage::new(2, 4096).unwrap();
        let geom = RegionGeometry::new(image.len(), 64).unwrap();
        let stripe = ParityStripe::new(&geom, 8, 4, 0, kind).unwrap();
        (image, geom, stripe)
    }

    /// Reference parity: XOR of all member regions read straight from
    /// the image.
    fn expect_parity(
        image: &DbImage,
        geom: &RegionGeometry,
        stripe: &ParityStripe,
        g: usize,
    ) -> Vec<u8> {
        let mut out = vec![0u8; geom.region_size()];
        let (first, last) = stripe.members(g);
        let mut region = vec![0u8; geom.region_size()];
        for r in first..=last {
            image.read(geom.region_base(r), &mut region).unwrap();
            for (o, s) in out.iter_mut().zip(&region) {
                *o ^= s;
            }
        }
        out
    }

    #[test]
    fn geometry_of_groups() {
        let (_i, geom, stripe) = setup(CodewordAlgebraKind::XorFold);
        assert_eq!(geom.num_regions(), 128);
        assert_eq!(stripe.num_groups(), 16);
        assert_eq!(stripe.group_of(0), 0);
        assert_eq!(stripe.group_of(7), 0);
        assert_eq!(stripe.group_of(8), 1);
        assert_eq!(stripe.members(0), (0, 7));
        assert_eq!(stripe.members(15), (120, 127));
    }

    #[test]
    fn ragged_last_group() {
        let geom = RegionGeometry::new(64 * 10, 64).unwrap();
        let stripe = ParityStripe::new(&geom, 4, 2, 0, CodewordAlgebraKind::XorFold).unwrap();
        assert_eq!(stripe.num_groups(), 3);
        assert_eq!(stripe.members(2), (8, 9), "short last group");
    }

    #[test]
    fn maintained_deltas_track_image_both_algebras() {
        for kind in CodewordAlgebraKind::ALL {
            let (image, geom, stripe) = setup(kind);
            // A maintained write: old bytes, new bytes, delta enqueued.
            let addr = DbAddr(64 * 3 + 16);
            let old = [0u8; 8];
            let new = [1u8, 2, 3, 4, 5, 6, 7, 8];
            image.write(addr, &new).unwrap();
            stripe.record_delta(3, 16, &old, &new);
            stripe.drain_region(3);
            let g = stripe.group_of(3);
            let mut buf = vec![0u8; 64];
            stripe.copy_group(g, &mut buf);
            assert_eq!(buf, expect_parity(&image, &geom, &stripe, g), "{kind:?}");
            assert!(stripe.verify_group(g), "{kind:?} word maintained");
        }
    }

    #[test]
    fn coalesced_deltas_drain_once() {
        let (image, geom, stripe) = setup(CodewordAlgebraKind::XorFold);
        let mut old = [0u8; 4];
        for round in 1..=3u8 {
            let new = [round; 4];
            image.write(DbAddr(64 * 9), &new).unwrap();
            stripe.record_delta(9, 0, &old, &new);
            old = new;
        }
        assert_eq!(stripe.pending_deltas(), 3);
        let snap = stripe.snapshot();
        assert_eq!(snap.coalesced_deltas, 2);
        assert_eq!(snap.delta_bytes, 12);
        stripe.drain_all();
        let g = stripe.group_of(9);
        let mut buf = vec![0u8; 64];
        stripe.copy_group(g, &mut buf);
        assert_eq!(buf, expect_parity(&image, &geom, &stripe, g));
        assert_eq!(stripe.pending_deltas(), 0);
    }

    #[test]
    fn reconstruct_recovers_wild_written_region() {
        for kind in CodewordAlgebraKind::ALL {
            let (image, geom, stripe) = setup(kind);
            // Populate the group with maintained writes.
            for r in 0..8usize {
                let new = [r as u8 + 10; 16];
                image.write(geom.region_base(r), &new).unwrap();
                stripe.record_delta(r, 0, &[0u8; 16], &new);
            }
            stripe.drain_all();
            // Save intended content of region 5, then corrupt it.
            let mut intended = vec![0u8; 64];
            image.read(geom.region_base(5), &mut intended).unwrap();
            image.write(geom.region_base(5), &[0xEE; 64]).unwrap();
            let mut rebuilt = vec![0u8; 64];
            stripe.reconstruct(&image, &geom, 5, &mut rebuilt).unwrap();
            assert_eq!(rebuilt, intended, "{kind:?}");
        }
    }

    #[test]
    fn wild_xor_makes_group_stale() {
        let (_i, _g, stripe) = setup(CodewordAlgebraKind::XorFold);
        assert!(stripe.verify_group(0));
        stripe.wild_xor_group(0, 8, &[0xFF, 0x01]);
        assert!(
            !stripe.verify_group(0),
            "unmaintained stripe write detected"
        );
    }

    #[test]
    fn resync_rebuilds_from_image_and_discards_queued() {
        let (image, geom, stripe) = setup(CodewordAlgebraKind::Residue);
        image.write(DbAddr(64 * 2), &[7u8; 64]).unwrap();
        // A queued delta that resync must supersede, plus a stale buffer.
        stripe.record_delta(40, 0, &[0u8; 4], &[9u8; 4]);
        stripe.wild_xor_group(3, 0, &[0xAA]);
        stripe.resync(&image, &geom).unwrap();
        assert_eq!(stripe.pending_deltas(), 0);
        for g in 0..stripe.num_groups() {
            assert!(stripe.verify_group(g), "group {g}");
            let mut buf = vec![0u8; 64];
            stripe.copy_group(g, &mut buf);
            assert_eq!(buf, expect_parity(&image, &geom, &stripe, g), "group {g}");
        }
        assert_eq!(stripe.take_dirty_groups(), Vec::<usize>::new());
    }

    #[test]
    fn dirty_groups_flag_and_clear() {
        let (_i, _g, stripe) = setup(CodewordAlgebraKind::XorFold);
        stripe.record_delta(0, 0, &[0u8; 4], &[1u8; 4]);
        stripe.record_delta(17, 0, &[0u8; 4], &[2u8; 4]);
        assert_eq!(stripe.dirty_group_count(), 0, "dirty only after drain");
        stripe.drain_all();
        assert_eq!(stripe.take_dirty_groups(), vec![0, 2]);
        assert_eq!(stripe.take_dirty_groups(), Vec::<usize>::new());
    }

    #[test]
    fn watermark_signals_inline_drain() {
        let geom = RegionGeometry::new(4096, 64).unwrap();
        let stripe = ParityStripe::new(&geom, 8, 1, 2, CodewordAlgebraKind::XorFold).unwrap();
        assert!(!stripe.record_delta(1, 0, &[0u8; 4], &[1u8; 4]));
        assert!(!stripe.record_delta(2, 0, &[0u8; 4], &[1u8; 4]));
        assert!(stripe.record_delta(3, 0, &[0u8; 4], &[1u8; 4]));
    }

    #[test]
    fn rejects_zero_group_size() {
        let geom = RegionGeometry::new(4096, 64).unwrap();
        assert!(ParityStripe::new(&geom, 0, 1, 0, CodewordAlgebraKind::XorFold).is_err());
    }
}
