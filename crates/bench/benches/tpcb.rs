//! Criterion version of Table 2: TPC-B operation cost per scheme.
//!
//! Uses the small workload so each sample is fast; the `table2` binary
//! runs the paper-sized configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dali_bench::{setup_engine, table2_specs};
use dali_workload::TpcbConfig;

fn bench_tpcb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpcb_ops");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    for spec in table2_specs() {
        let wl = TpcbConfig::small();
        let (db, mut driver) = setup_engine(&spec, &wl, "crit-tpcb");
        group.throughput(criterion::Throughput::Elements(50));
        group.bench_function(BenchmarkId::from_parameter(spec.label()), |b| {
            b.iter(|| {
                let txn = db.begin().expect("begin");
                for _ in 0..50 {
                    driver.run_op(&txn).expect("op");
                }
                txn.commit().expect("commit");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tpcb);
criterion_main!(benches);
