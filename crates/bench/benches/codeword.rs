//! Codeword maintenance microbenchmarks: the integer-only operations the
//! paper argues are cheap and portable (§7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dali_codeword::codeword::{delta, fold};
use dali_codeword::{CodewordProtection, ProtectionScheme};
use dali_common::DbAddr;
use dali_mem::DbImage;

fn bench_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("codeword_fold");
    for size in [64usize, 512, 4096, 8192] {
        let buf = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| fold(std::hint::black_box(&buf)))
        });
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    // The per-update maintenance cost: delta over a 100-byte record's
    // widened span, independent of region size.
    let old = vec![1u8; 104];
    let new = vec![2u8; 104];
    c.bench_function("codeword_update_delta_100B", |b| {
        b.iter(|| delta(std::hint::black_box(&old), std::hint::black_box(&new)))
    });
}

fn bench_maintenance_vs_region_size(c: &mut Criterion) {
    // Full apply_update path (fold old + fold image + atomic xor) per
    // region size: demonstrates that maintenance cost does NOT grow with
    // region size (only precheck cost does).
    let mut group = c.benchmark_group("codeword_apply_update");
    for region in [64usize, 512, 8192] {
        let image = DbImage::new(16, 8192).unwrap();
        let prot =
            CodewordProtection::new(&image, ProtectionScheme::DataCodeword, region, 1).unwrap();
        let old = vec![0u8; 104];
        group.bench_function(BenchmarkId::from_parameter(region), |b| {
            b.iter(|| prot.apply_update(&image, DbAddr(4096), std::hint::black_box(&old)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fold,
    bench_delta,
    bench_maintenance_vs_region_size
);
criterion_main!(benches);
