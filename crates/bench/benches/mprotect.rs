//! Criterion version of Table 1: cost of a protect/unprotect pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dali_mem::{Arena, DbImage, PageProtector};
use std::sync::Arc;

fn bench_mprotect_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("mprotect");
    group.sample_size(20);

    // Raw syscall pair on one OS page (what Table 1 measures per page).
    let ps = dali_mem::arena::os_page_size();
    let arena = Arena::new(64 * ps).unwrap();
    let base = arena.base_ptr();
    group.bench_function("protect_unprotect_pair", |b| {
        b.iter(|| unsafe {
            let rc = libc::mprotect(base as *mut libc::c_void, ps, libc::PROT_READ);
            assert_eq!(rc, 0);
            let rc = libc::mprotect(
                base as *mut libc::c_void,
                ps,
                libc::PROT_READ | libc::PROT_WRITE,
            );
            assert_eq!(rc, 0);
        })
    });

    // The engine's expose/reprotect path (counter maintenance + syscall),
    // i.e. what one beginUpdate/endUpdate pays under Hardware Protection.
    for real in [false, true] {
        let image = Arc::new(DbImage::new(64, ps).unwrap());
        let prot = PageProtector::new(Arc::clone(&image), real);
        prot.enable().unwrap();
        group.bench_function(
            BenchmarkId::new(
                "expose_reprotect",
                if real { "real" } else { "bitmap_only" },
            ),
            |b| {
                b.iter(|| {
                    prot.expose(dali_common::DbAddr(100), 100).unwrap();
                    prot.reprotect(dali_common::DbAddr(100), 100).unwrap();
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mprotect_pair);
criterion_main!(benches);
