//! Region-size sweep for Read Prechecking — the time/space trade-off
//! behind Table 2's three precheck rows (64 B economical, 8 K
//! catastrophic) and §5.3's discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dali_codeword::{CodewordProtection, ProtectionScheme};
use dali_common::DbAddr;
use dali_mem::DbImage;

fn bench_checked_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("precheck_read_100B");
    for region in [64usize, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let image = DbImage::new(16, 8192).unwrap();
        let prot =
            CodewordProtection::new(&image, ProtectionScheme::ReadPrecheck, region, 1).unwrap();
        let mut buf = vec![0u8; 100];
        group.bench_function(BenchmarkId::from_parameter(region), |b| {
            b.iter(|| {
                prot.checked_read(&image, DbAddr(4096), std::hint::black_box(&mut buf))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_plain_read_reference(c: &mut Criterion) {
    let image = DbImage::new(16, 8192).unwrap();
    let mut buf = vec![0u8; 100];
    c.bench_function("plain_read_100B", |b| {
        b.iter(|| {
            image
                .read(DbAddr(4096), std::hint::black_box(&mut buf))
                .unwrap()
        })
    });
}

fn bench_read_with_codewords(c: &mut Criterion) {
    // The CW ReadLog read path: copy + contents fold of the overlapped
    // regions (paper: +5% over plain read logging).
    let image = DbImage::new(16, 8192).unwrap();
    let prot = CodewordProtection::new(&image, ProtectionScheme::CwReadLogging, 64, 1).unwrap();
    let mut buf = vec![0u8; 100];
    c.bench_function("cw_readlog_read_100B", |b| {
        b.iter(|| {
            prot.read_with_codewords(&image, DbAddr(4096), std::hint::black_box(&mut buf))
                .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_checked_read,
    bench_plain_read_reference,
    bench_read_with_codewords
);
criterion_main!(benches);
