//! Recovery-path benchmarks: restart recovery and delete-transaction
//! corruption recovery (the paper evaluates normal-processing cost only;
//! this quantifies the recovery side as an extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dali_common::{DaliConfig, ProtectionScheme};
use dali_engine::DaliEngine;
use dali_workload::{TpcbConfig, TpcbDriver};

/// Prepare a database directory with `ops` operations of log past the
/// last checkpoint, then crash it.
fn prepare(scheme: ProtectionScheme, ops: usize, corrupt: bool, tag: &str) -> DaliConfig {
    let wl = TpcbConfig::small();
    let dir = dali_bench::scratch_dir(tag);
    let mut config = DaliConfig::small(&dir).with_scheme(scheme);
    config.db_pages = wl.required_pages(config.page_size);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let mut driver = TpcbDriver::setup(&db, wl).unwrap();
    db.checkpoint().unwrap();
    driver.run_ops(ops).unwrap();
    if corrupt {
        let victim = driver.random_account();
        let addr = db.record_addr(victim).unwrap();
        // Single-word pattern: immune to XOR parity cancellation (a
        // uniform multi-word pattern over a zero balance would cancel —
        // see tests/parity_blind_spot.rs).
        db.raw_image()
            .write(addr.add(8), &[0xDE, 0xAD, 0xBE, 0xEF])
            .unwrap();
        let txn = db.begin().unwrap();
        let dirty = txn.read_vec(victim).unwrap();
        let other = driver.random_account();
        if other != victim {
            txn.update(other, &dirty).unwrap();
        }
        txn.commit().unwrap();
        assert!(!db.audit().unwrap().clean());
    } else {
        db.crash();
    }
    config
}

fn bench_restart_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("restart_recovery");
    group.sample_size(10);
    for ops in [500usize, 2000] {
        group.bench_function(BenchmarkId::new("normal", ops), |b| {
            b.iter_batched(
                || prepare(ProtectionScheme::DataCodeword, ops, false, "recov-n"),
                |config| {
                    let (db, outcome) = DaliEngine::open(config).unwrap();
                    assert!(outcome.deleted_txns.is_empty());
                    drop(db);
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_delete_txn_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("delete_txn_recovery");
    group.sample_size(10);
    for ops in [500usize, 2000] {
        group.bench_function(BenchmarkId::new("readlog_corrupt", ops), |b| {
            b.iter_batched(
                || prepare(ProtectionScheme::ReadLogging, ops, true, "recov-c"),
                |config| {
                    let (db, outcome) = DaliEngine::open(config).unwrap();
                    assert!(!outcome.deleted_txns.is_empty());
                    drop(db);
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_restart_recovery, bench_delete_txn_recovery);
criterion_main!(benches);
