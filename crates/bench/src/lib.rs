//! Benchmark harness regenerating the paper's evaluation (§5).
//!
//! * **Table 1** — protect/unprotect pairs per second
//!   ([`table1_paper_rows`] + [`table1_measure`]), measured with real
//!   `mprotect` on this machine and printed next to the paper's four 1998
//!   platforms.
//! * **Table 2** — TPC-B throughput under each protection scheme
//!   ([`run_table2`]), with the paper's numbers for shape comparison.
//!
//! Absolute numbers will differ from 1999 hardware by orders of
//! magnitude; what should reproduce is the *ordering* of schemes and the
//! rough overhead factors (detection cheap, small-region prechecks
//! moderate, mprotect expensive, 8 K prechecks catastrophic).
//!
//! ## Measurement methodology
//!
//! The paper ran on a dedicated UltraSPARC and averaged six runs. This
//! reproduction typically runs on a shared single-CPU VM where other
//! tenants steal cycles unpredictably, so the harness defends itself:
//!
//! * the primary metric is **process CPU time** per operation
//!   (`CLOCK_PROCESS_CPUTIME_ID`), which is unaffected by preemption;
//!   wall-clock throughput is reported alongside;
//! * repetitions are **interleaved across schemes** (round-robin) so
//!   slow drifts of the host hit every scheme equally;
//! * the median repetition is reported;
//! * each run's ~150 MB scratch directory is deleted immediately so
//!   writeback of one run does not tax the next.

use dali_common::{CodewordAlgebraKind, DaliConfig, ProtectionScheme};
use dali_engine::DaliEngine;
use dali_workload::{TpcbConfig, TpcbDriver};
use std::path::PathBuf;

/// One scheme configuration of Table 2.
#[derive(Clone, Debug)]
pub struct SchemeSpec {
    pub scheme: ProtectionScheme,
    pub region_size: usize,
    /// Codeword algebra for the codeword-bearing schemes (the paper's
    /// Table 2 is the XOR fold; `table2 --algebra residue` re-runs the
    /// table under the mod-(2^32−1) residue code).
    pub algebra: CodewordAlgebraKind,
    /// The paper's measured ops/sec for this row (UltraSPARC, 1998).
    pub paper_ops_per_sec: f64,
    /// The paper's reported slowdown for this row.
    pub paper_pct_slower: f64,
}

impl SchemeSpec {
    /// Row label as printed in the paper (suffixed when running under a
    /// non-default algebra).
    pub fn label(&self) -> String {
        let base = self.scheme.label(self.region_size);
        match self.algebra {
            CodewordAlgebraKind::XorFold => base,
            other => format!("{base} [{}]", other.label()),
        }
    }

    /// This spec under a different codeword algebra.
    pub fn with_algebra(mut self, algebra: CodewordAlgebraKind) -> SchemeSpec {
        self.algebra = algebra;
        self
    }
}

/// The eight rows of Table 2, in the paper's order.
pub fn table2_specs() -> Vec<SchemeSpec> {
    use ProtectionScheme::*;
    vec![
        SchemeSpec {
            algebra: CodewordAlgebraKind::XorFold,
            scheme: Baseline,
            region_size: 64,
            paper_ops_per_sec: 417.0,
            paper_pct_slower: 0.0,
        },
        SchemeSpec {
            algebra: CodewordAlgebraKind::XorFold,
            scheme: DataCodeword,
            region_size: 64,
            paper_ops_per_sec: 380.0,
            paper_pct_slower: 8.5,
        },
        SchemeSpec {
            algebra: CodewordAlgebraKind::XorFold,
            scheme: ReadPrecheck,
            region_size: 64,
            paper_ops_per_sec: 366.0,
            paper_pct_slower: 12.2,
        },
        SchemeSpec {
            algebra: CodewordAlgebraKind::XorFold,
            scheme: ReadLogging,
            region_size: 64,
            paper_ops_per_sec: 345.0,
            paper_pct_slower: 17.1,
        },
        SchemeSpec {
            algebra: CodewordAlgebraKind::XorFold,
            scheme: CwReadLogging,
            region_size: 64,
            paper_ops_per_sec: 323.0,
            paper_pct_slower: 22.4,
        },
        SchemeSpec {
            algebra: CodewordAlgebraKind::XorFold,
            scheme: ReadPrecheck,
            region_size: 512,
            paper_ops_per_sec: 311.0,
            paper_pct_slower: 25.4,
        },
        SchemeSpec {
            algebra: CodewordAlgebraKind::XorFold,
            scheme: MemoryProtection,
            region_size: 64,
            paper_ops_per_sec: 257.0,
            paper_pct_slower: 38.2,
        },
        SchemeSpec {
            algebra: CodewordAlgebraKind::XorFold,
            scheme: ReadPrecheck,
            region_size: 8192,
            paper_ops_per_sec: 115.0,
            paper_pct_slower: 72.4,
        },
    ]
}

/// One measured repetition of one row.
#[derive(Clone, Copy, Debug)]
pub struct RowMeasurement {
    /// Operations per second of process CPU time (primary metric).
    pub cpu_ops_per_sec: f64,
    /// Operations per wall-clock second (reference).
    pub wall_ops_per_sec: f64,
    /// mprotect pages exposed per operation, if the scheme protects.
    pub pages_per_op: Option<f64>,
}

/// A reported Table 2 row (median over interleaved repetitions).
#[derive(Clone, Debug)]
pub struct Table2Row {
    pub spec: SchemeSpec,
    pub measurement: RowMeasurement,
    /// Slowdown relative to the measured baseline (CPU-time based).
    pub pct_slower: f64,
}

/// Process CPU time in seconds.
pub fn process_cpu_seconds() -> f64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: clock_gettime with a valid clock id and out-pointer.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_PROCESS_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime failed");
    ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
}

/// A fresh scratch directory under the system temp dir.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-bench-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

/// Build an engine + populated TPC-B driver for one scheme row.
pub fn setup_engine(spec: &SchemeSpec, wl: &TpcbConfig, tag: &str) -> (DaliEngine, TpcbDriver) {
    let mut config = DaliConfig::small(scratch_dir(tag))
        .with_scheme(spec.scheme)
        .with_codeword_algebra(spec.algebra);
    config.region_size = spec.region_size;
    config.db_pages = wl.required_pages(config.page_size);
    // Audits run at explicit checkpoints; keep certification on (it is
    // part of the scheme's cost model).
    let (db, _) = DaliEngine::create(config).expect("create db");
    let driver = TpcbDriver::setup(&db, wl.clone()).expect("populate");
    (db, driver)
}

/// Run one Table 2 repetition: `ops` operations with a mid-run checkpoint
/// (logging and checkpointing on, as in the paper's runs).
pub fn run_row(spec: &SchemeSpec, wl: &TpcbConfig, ops: usize, checkpoint: bool) -> RowMeasurement {
    let (db, mut driver) = setup_engine(
        spec,
        wl,
        &format!("t2-{}", spec.label().replace([' ', ',', '/'], "-")),
    );
    db.protect_stats().reset();

    let half = ops / 2;
    let wall_start = std::time::Instant::now();
    let cpu_start = process_cpu_seconds();
    let s1 = driver.run_ops(half).expect("run first half");
    if checkpoint {
        db.checkpoint().expect("mid-run checkpoint");
    }
    let s2 = driver.run_ops(ops - half).expect("run second half");
    let cpu = process_cpu_seconds() - cpu_start;
    let wall = wall_start.elapsed().as_secs_f64();
    let total_ops = (s1.ops + s2.ops) as f64;

    let pages_per_op = if spec.scheme.uses_mprotect() {
        let (_, _, exposed) = db.protect_stats().snapshot();
        Some(exposed as f64 / total_ops)
    } else {
        None
    };
    driver.verify_invariant().expect("invariant");
    // Remove the scratch directory immediately: a run writes ~150 MB of
    // log + checkpoint images, and leaving them queued for writeback
    // steals CPU and I/O from subsequent rows.
    let dir = db.config().dir.clone();
    drop(driver);
    drop(db);
    let _ = std::fs::remove_dir_all(dir);
    RowMeasurement {
        cpu_ops_per_sec: total_ops / cpu,
        wall_ops_per_sec: total_ops / wall,
        pages_per_op,
    }
}

fn median_of(mut reps: Vec<RowMeasurement>) -> RowMeasurement {
    // Medians per metric, independently: a rep with a representative CPU
    // cost may still have suffered heavy wall-clock preemption.
    let mid = reps.len() / 2;
    reps.sort_by(|a, b| a.cpu_ops_per_sec.partial_cmp(&b.cpu_ops_per_sec).unwrap());
    let cpu = reps[mid].cpu_ops_per_sec;
    let pages = reps[mid].pages_per_op;
    reps.sort_by(|a, b| a.wall_ops_per_sec.partial_cmp(&b.wall_ops_per_sec).unwrap());
    RowMeasurement {
        cpu_ops_per_sec: cpu,
        wall_ops_per_sec: reps[mid].wall_ops_per_sec,
        pages_per_op: pages,
    }
}

/// Run several rows with repetitions interleaved round-robin across the
/// rows; returns the per-row median (by CPU throughput).
pub fn run_rows_interleaved(
    specs: &[SchemeSpec],
    wl: &TpcbConfig,
    ops: usize,
    checkpoint: bool,
    reps: usize,
) -> Vec<RowMeasurement> {
    let verbose = std::env::var_os("DALI_BENCH_VERBOSE").is_some();
    let mut per_row: Vec<Vec<RowMeasurement>> = vec![Vec::new(); specs.len()];
    for rep in 0..reps.max(1) {
        for (i, spec) in specs.iter().enumerate() {
            let m = run_row(spec, wl, ops, checkpoint);
            if verbose {
                eprintln!(
                    "  rep {rep} {:<34} cpu {:>9.0} ops/s   wall {:>9.0} ops/s",
                    spec.label(),
                    m.cpu_ops_per_sec,
                    m.wall_ops_per_sec
                );
            }
            per_row[i].push(m);
        }
    }
    per_row.into_iter().map(median_of).collect()
}

/// Run the full Table 2 (all eight rows): one discarded warmup pass, then
/// `reps` interleaved repetitions per row with the median reported.
pub fn run_table2(wl: &TpcbConfig, ops: usize, checkpoint: bool, reps: usize) -> Vec<Table2Row> {
    let specs = table2_specs();
    let _ = run_row(&specs[0], wl, ops, checkpoint); // warmup, discarded
    build_rows(
        specs.clone(),
        run_rows_interleaved(&specs, wl, ops, checkpoint, reps),
    )
}

/// Pair specs with measurements and compute slowdowns against the
/// Baseline row (which must be present).
pub fn build_rows(specs: Vec<SchemeSpec>, measurements: Vec<RowMeasurement>) -> Vec<Table2Row> {
    let base = specs
        .iter()
        .zip(&measurements)
        .find(|(s, _)| s.scheme == ProtectionScheme::Baseline)
        .map(|(_, m)| m.cpu_ops_per_sec)
        .expect("baseline row required");
    specs
        .into_iter()
        .zip(measurements)
        .map(|(spec, measurement)| Table2Row {
            pct_slower: (1.0 - measurement.cpu_ops_per_sec / base) * 100.0,
            spec,
            measurement,
        })
        .collect()
}

/// Extension row: the Deferred Maintenance variant (named in the paper's
/// §4.3 but not measured there) — codeword deltas queue until audits.
pub fn deferred_spec() -> SchemeSpec {
    SchemeSpec {
        algebra: CodewordAlgebraKind::XorFold,
        scheme: ProtectionScheme::DeferredMaintenance,
        region_size: 64,
        paper_ops_per_sec: f64::NAN,
        paper_pct_slower: f64::NAN,
    }
}

/// Schemes swept by the thread-scaling harness (`table_scale`), all with
/// the paper's 64-byte regions.
pub fn scale_schemes() -> Vec<ProtectionScheme> {
    use ProtectionScheme::*;
    vec![
        Baseline,
        DataCodeword,
        ReadPrecheck,
        ReadLogging,
        DeferredMaintenance,
    ]
}

/// One measured cell of the thread-scaling table.
#[derive(Clone, Copy, Debug)]
pub struct ScaleCell {
    pub wall_ops_per_sec: f64,
    pub cpu_us_per_op: f64,
    /// Transactions re-run after lock denials (expected 0: TPC-B worker
    /// partitions are disjoint).
    pub retries: usize,
}

/// Measure one (scheme, threads) cell: fresh engine, populated TPC-B
/// tables, `ops` operations split across `threads` workers.
///
/// Durable commits (`sync_commit`) are the interesting regime for
/// scaling: with them off the workload is pure CPU and cannot beat one
/// thread on a single-core host; with them on, worker threads overlap
/// their commit fsyncs (and piggyback on each other's), which is where
/// the extra threads pay off.
pub fn run_scale_cell(
    scheme: ProtectionScheme,
    wl: &TpcbConfig,
    threads: usize,
    ops: usize,
    sync_commit: bool,
) -> ScaleCell {
    let mut config =
        DaliConfig::small(scratch_dir(&format!("scale-{scheme:?}-{threads}"))).with_scheme(scheme);
    config.db_pages = wl.required_pages(config.page_size);
    config.sync_commit = sync_commit;
    let (db, _) = DaliEngine::create(config).expect("create db");
    let mut driver = TpcbDriver::setup(&db, wl.clone()).expect("populate");
    let stats = driver.run_concurrent(threads, ops).expect("concurrent run");
    driver.verify_invariant().expect("invariant");
    let dir = db.config().dir.clone();
    drop(driver);
    drop(db);
    let _ = std::fs::remove_dir_all(dir);
    ScaleCell {
        wall_ops_per_sec: stats.ops_per_sec(),
        cpu_us_per_op: stats.cpu_us_per_op(),
        retries: stats.retries,
    }
}

/// Run the thread-scaling sweep with repetitions interleaved round-robin
/// across cells (host drift hits every cell equally); returns the
/// per-cell median by wall throughput, indexed `[scheme][thread]`.
pub fn run_scale_sweep(
    schemes: &[ProtectionScheme],
    wl: &TpcbConfig,
    threads: &[usize],
    ops: usize,
    sync_commit: bool,
    reps: usize,
) -> Vec<Vec<ScaleCell>> {
    let verbose = std::env::var_os("DALI_BENCH_VERBOSE").is_some();
    let mut samples: Vec<Vec<Vec<ScaleCell>>> =
        vec![vec![Vec::new(); threads.len()]; schemes.len()];
    for rep in 0..reps.max(1) {
        for (i, &scheme) in schemes.iter().enumerate() {
            for (j, &t) in threads.iter().enumerate() {
                let cell = run_scale_cell(scheme, wl, t, ops, sync_commit);
                if verbose {
                    eprintln!(
                        "  rep {rep} {:<22} {t} thr: {:>9.0} ops/s  {:>6.1} cpu-us/op",
                        scheme.label(64),
                        cell.wall_ops_per_sec,
                        cell.cpu_us_per_op
                    );
                }
                samples[i][j].push(cell);
            }
        }
    }
    samples
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|mut reps| {
                    reps.sort_by(|a, b| {
                        a.wall_ops_per_sec.partial_cmp(&b.wall_ops_per_sec).unwrap()
                    });
                    reps[reps.len() / 2]
                })
                .collect()
        })
        .collect()
}

/// Render a scale sweep as a markdown table: ops/s per thread count with
/// the speedup over the scheme's own 1-thread cell in parentheses.
pub fn format_scale_markdown(
    schemes: &[ProtectionScheme],
    threads: &[usize],
    cells: &[Vec<ScaleCell>],
) -> String {
    let mut out = String::new();
    out.push_str("| Scheme |");
    for t in threads {
        out.push_str(&format!(" {t} thr |"));
    }
    out.push_str(&format!(" cpu µs/op ({} thr) |\n|:--|", threads[0]));
    for _ in threads {
        out.push_str("--:|");
    }
    out.push_str("--:|\n");
    for (i, &scheme) in schemes.iter().enumerate() {
        out.push_str(&format!("| {} |", scheme.label(64)));
        let base = cells[i][0].wall_ops_per_sec;
        for (j, _) in threads.iter().enumerate() {
            let c = &cells[i][j];
            if j == 0 {
                out.push_str(&format!(" {:.0} |", c.wall_ops_per_sec));
            } else {
                out.push_str(&format!(
                    " {:.0} ({:.2}x) |",
                    c.wall_ops_per_sec,
                    c.wall_ops_per_sec / base
                ));
            }
        }
        out.push_str(&format!(" {:.1} |\n", cells[i][0].cpu_us_per_op));
    }
    out
}

// -------------------------------------------------------------------
// Lock-manager scaling (`lock_scale` bin)
// -------------------------------------------------------------------

use dali_common::{RecId, SlotId, TableId, TxnId};
use dali_engine::{LockManager, LockMode};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One cell of the raw lock-manager microbenchmark.
#[derive(Clone, Copy, Debug)]
pub struct LockMicroCell {
    /// Granted lock acquisitions per wall-clock second (all threads).
    pub locks_per_sec: f64,
    /// Requests denied (timeout or deadlock victim), re-run after
    /// `unlock_all`.
    pub denials: usize,
}

/// Raw lock-manager throughput: `threads` workers each run `txns`
/// mini-transactions of `locks_per_txn` exclusive locks followed by
/// `unlock_all`, with no engine underneath — the lock table itself is
/// the entire workload.
///
/// `overlap = false`: each worker draws from its own `space`-record
/// range, so no request ever blocks and the measurement isolates lock
/// *table* contention (the single mutex vs. sharded handoffs).
/// `overlap = true`: all workers draw from one shared `space`-record
/// range, adding real conflicts, condvar waits, wake-ups and (with
/// unordered acquisition) genuine deadlocks, resolved by `detect` /
/// the 100 ms timeout.
pub fn run_lock_micro(
    shards: usize,
    threads: usize,
    txns: usize,
    locks_per_txn: usize,
    space: u32,
    overlap: bool,
    detect: Option<Duration>,
) -> LockMicroCell {
    let mgr = Arc::new(LockManager::with_config(
        Duration::from_millis(100),
        shards,
        detect,
    ));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let table = TableId(1);
    let (results, elapsed): (Vec<(usize, usize)>, Duration) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|k| {
                let mgr = Arc::clone(&mgr);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut granted = 0usize;
                    let mut denials = 0usize;
                    // Cheap deterministic per-thread stream (splitmix-ish).
                    let mut x: u64 = 0x9E37_79B9 ^ (k as u64) << 32 | 1;
                    let mut step = |m: u32| -> u32 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((x >> 33) as u32) % m
                    };
                    for i in 0..txns {
                        let txn = TxnId(((k as u64) << 40) | i as u64);
                        let mut held = 0usize;
                        while held < locks_per_txn {
                            let slot = if overlap {
                                step(space)
                            } else {
                                k as u32 * space + step(space)
                            };
                            let rec = RecId::new(table, SlotId(slot));
                            match mgr.lock(txn, rec, LockMode::Exclusive) {
                                Ok(()) => held += 1,
                                Err(_) => {
                                    // Deadlock victim or timeout:
                                    // release and re-run the txn.
                                    mgr.unlock_all(txn);
                                    denials += 1;
                                    held = 0;
                                }
                            }
                        }
                        granted += held;
                        mgr.unlock_all(txn);
                    }
                    (granted, denials)
                })
            })
            .collect();
        // Start the clock before releasing the barrier: on a 1-CPU host
        // the workers can otherwise finish before this thread is
        // rescheduled to read the clock, inflating the rate absurdly.
        // The error is bounded by barrier-arrival skew and only
        // underestimates throughput.
        let start = Instant::now();
        barrier.wait();
        let results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (results, start.elapsed())
    });
    let granted: usize = results.iter().map(|r| r.0).sum();
    let denials: usize = results.iter().map(|r| r.1).sum();
    LockMicroCell {
        locks_per_sec: granted as f64 / elapsed.as_secs_f64(),
        denials,
    }
}

/// Median time for a deadlock victim to be denied, over `reps`
/// two-transaction X/X cross-waits. With `detect` enabled this is the
/// detector latency (interval + walk); with `None` it is the full
/// `timeout`.
pub fn measure_deadlock_latency(
    detect: Option<Duration>,
    timeout: Duration,
    reps: usize,
) -> Duration {
    let mut times = Vec::with_capacity(reps);
    for i in 0..reps as u64 {
        let m = Arc::new(LockManager::with_config(timeout, 4, detect));
        let (t1, t2) = (TxnId(2 * i + 1), TxnId(2 * i + 2));
        let (r1, r2) = (
            RecId::new(TableId(1), SlotId(1)),
            RecId::new(TableId(1), SlotId(2)),
        );
        m.lock(t1, r1, LockMode::Exclusive).unwrap();
        m.lock(t2, r2, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let start = Instant::now();
        let h = std::thread::spawn(move || {
            let r = m2.lock(t2, r1, LockMode::Exclusive);
            let at = start.elapsed();
            m2.unlock_all(t2);
            (r.is_err(), at)
        });
        let r1res = m.lock(t1, r2, LockMode::Exclusive);
        let t1_at = start.elapsed();
        let (t2_denied, t2_at) = h.join().unwrap();
        m.unlock_all(t1);
        // Time until the first denial (the victim's abort).
        let mut denied_at = Vec::new();
        if r1res.is_err() {
            denied_at.push(t1_at);
        }
        if t2_denied {
            denied_at.push(t2_at);
        }
        times.push(denied_at.into_iter().min().expect("no side was denied"));
    }
    times.sort();
    times[times.len() / 2]
}

/// Measure one contended TPC-B cell: like [`run_scale_cell`] but the
/// workers draw from overlapping (full) row ranges, with `lock_shards`
/// shards, the given detector setting and lock timeout. Buffered
/// commits: the interesting regime is lock-table traffic, not fsync
/// overlap.
pub fn run_contended_cell(
    scheme: ProtectionScheme,
    wl: &TpcbConfig,
    threads: usize,
    ops: usize,
    lock_shards: usize,
    detect: Option<Duration>,
    lock_timeout: Duration,
) -> ScaleCell {
    let mut config = DaliConfig::small(scratch_dir(&format!(
        "lockscale-{lock_shards}sh-{threads}t"
    )))
    .with_scheme(scheme)
    .with_lock_shards(lock_shards);
    config.deadlock_detect_interval = detect;
    config.lock_timeout = lock_timeout;
    config.db_pages = wl.required_pages(config.page_size);
    config.sync_commit = false;
    let (db, _) = DaliEngine::create(config).expect("create db");
    let mut driver = TpcbDriver::setup(&db, wl.clone()).expect("populate");
    let stats = driver
        .run_concurrent_contended(threads, ops)
        .expect("contended run");
    driver.verify_invariant().expect("invariant");
    assert_eq!(
        db.db().locks.locked_records(),
        0,
        "locks leaked after quiesce"
    );
    let dir = db.config().dir.clone();
    drop(driver);
    drop(db);
    let _ = std::fs::remove_dir_all(dir);
    ScaleCell {
        wall_ops_per_sec: stats.ops_per_sec(),
        cpu_us_per_op: stats.cpu_us_per_op(),
        retries: stats.retries,
    }
}

// -------------------------------------------------------------------
// Deferred-maintenance scaling (`deferred_scale` bin)
// -------------------------------------------------------------------

/// One measured cell of the deferred-maintenance sweep: throughput plus
/// the dirty-set counters that explain it.
#[derive(Clone, Copy, Debug)]
pub struct DeferredCell {
    pub cell: ScaleCell,
    /// Non-empty shard drains over the run.
    pub drains: u64,
    /// Deltas absorbed into an already-dirty region (coalescing savings).
    pub coalesced_deltas: u64,
    /// Deepest any shard's dirty-region count got.
    pub max_shard_depth: u64,
}

/// Measure one deferred-maintenance cell: like [`run_scale_cell`] with
/// `ProtectionScheme::DeferredMaintenance`, but with explicit dirty-set
/// shard count, background drain interval (`None` = no drainer thread),
/// and per-shard watermark. Reports the dirty-set counters next to the
/// throughput so the sweep shows *why* a configuration scales.
pub fn run_deferred_cell(
    wl: &TpcbConfig,
    shards: usize,
    threads: usize,
    ops: usize,
    drain_interval: Option<Duration>,
    watermark: usize,
    sync_commit: bool,
) -> DeferredCell {
    let mut config = DaliConfig::small(scratch_dir(&format!("defscale-{shards}sh-{threads}t")))
        .with_scheme(ProtectionScheme::DeferredMaintenance)
        .with_deferred_shards(shards)
        .with_deferred_drain_interval(drain_interval)
        .with_deferred_watermark(watermark);
    config.db_pages = wl.required_pages(config.page_size);
    config.sync_commit = sync_commit;
    let (db, _) = DaliEngine::create(config).expect("create db");
    let mut driver = TpcbDriver::setup(&db, wl.clone()).expect("populate");
    let stats = driver.run_concurrent(threads, ops).expect("concurrent run");
    driver.verify_invariant().expect("invariant");
    let deferred = db.deferred_stats();
    let dir = db.config().dir.clone();
    drop(driver);
    drop(db);
    let _ = std::fs::remove_dir_all(dir);
    DeferredCell {
        cell: ScaleCell {
            wall_ops_per_sec: stats.ops_per_sec(),
            cpu_us_per_op: stats.cpu_us_per_op(),
            retries: stats.retries,
        },
        drains: deferred.drains,
        coalesced_deltas: deferred.coalesced_deltas,
        max_shard_depth: deferred.max_shard_depth,
    }
}

/// Sweep shard counts × thread counts at a fixed drain interval,
/// repetitions interleaved round-robin; per-cell median by wall
/// throughput, indexed `[shard][thread]`.
#[allow(clippy::too_many_arguments)]
pub fn run_deferred_sweep(
    shard_counts: &[usize],
    threads: &[usize],
    wl: &TpcbConfig,
    ops: usize,
    drain_interval: Option<Duration>,
    watermark: usize,
    sync_commit: bool,
    reps: usize,
) -> Vec<Vec<DeferredCell>> {
    let verbose = std::env::var_os("DALI_BENCH_VERBOSE").is_some();
    let mut samples: Vec<Vec<Vec<DeferredCell>>> =
        vec![vec![Vec::new(); threads.len()]; shard_counts.len()];
    for rep in 0..reps.max(1) {
        for (i, &shards) in shard_counts.iter().enumerate() {
            for (j, &t) in threads.iter().enumerate() {
                let cell =
                    run_deferred_cell(wl, shards, t, ops, drain_interval, watermark, sync_commit);
                if verbose {
                    eprintln!(
                        "  rep {rep} {shards} shards, {t} thr: {:>9.0} ops/s  ({} drains, {} coalesced)",
                        cell.cell.wall_ops_per_sec, cell.drains, cell.coalesced_deltas
                    );
                }
                samples[i][j].push(cell);
            }
        }
    }
    samples
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|mut reps| {
                    reps.sort_by(|a, b| {
                        a.cell
                            .wall_ops_per_sec
                            .partial_cmp(&b.cell.wall_ops_per_sec)
                            .unwrap()
                    });
                    reps[reps.len() / 2]
                })
                .collect()
        })
        .collect()
}

/// Render a deferred sweep as a markdown table: rows = shard counts,
/// columns = threads (speedup over that row's 1-thread cell), with the
/// 4-thread dirty-set counters appended.
pub fn format_deferred_markdown(
    shard_counts: &[usize],
    threads: &[usize],
    cells: &[Vec<DeferredCell>],
) -> String {
    let mut out = String::new();
    out.push_str("| Shards |");
    for t in threads {
        out.push_str(&format!(" {t} thr |"));
    }
    out.push_str(" drains | coalesced | max depth |\n|:--|");
    for _ in threads {
        out.push_str("--:|");
    }
    out.push_str("--:|--:|--:|\n");
    for (i, &shards) in shard_counts.iter().enumerate() {
        out.push_str(&format!("| {shards} |"));
        let base = cells[i][0].cell.wall_ops_per_sec;
        for (j, _) in threads.iter().enumerate() {
            let c = &cells[i][j];
            if j == 0 {
                out.push_str(&format!(" {:.0} |", c.cell.wall_ops_per_sec));
            } else {
                out.push_str(&format!(
                    " {:.0} ({:.2}x) |",
                    c.cell.wall_ops_per_sec,
                    c.cell.wall_ops_per_sec / base
                ));
            }
        }
        let last = &cells[i][threads.len() - 1];
        out.push_str(&format!(
            " {} | {} | {} |\n",
            last.drains, last.coalesced_deltas, last.max_shard_depth
        ));
    }
    out
}

// -------------------------------------------------------------------
// Minimal JSON rendering (machine-readable bench output)
// -------------------------------------------------------------------

/// A JSON value, hand-rendered: the bench binaries emit machine-readable
/// result files (`BENCH_net.json`, `audit_scale --json`) without pulling
/// in a serialization dependency.
#[derive(Clone, Debug)]
pub enum Json {
    Bool(bool),
    Int(i64),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Num(x) => {
                // JSON has no NaN/Inf; benches use null for "not measured".
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("\"{k}\": "));
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Resident set size of this process (VmRSS), in KiB.
pub fn vm_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Paper Table 1 reference rows: platform, pairs/second (1998 hardware).
pub fn table1_paper_rows() -> Vec<(&'static str, f64)> {
    vec![
        ("SPARCstation 20", 15_600.0),
        ("UltraSPARC 2", 43_000.0),
        ("HP 9000 C110", 3_300.0),
        ("SGI Challenge DM", 8_200.0),
    ]
}

/// Measure Table 1 on this machine: 2000 pages protected/unprotected, 50
/// repetitions (the paper's method).
pub fn table1_measure() -> f64 {
    dali_mem::protect::measure_protect_pairs(2000, 50).expect("mprotect measurement")
}

/// Render a Table 2 report as text.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>11} {:>9} {:>11}   {:>11} {:>8}\n",
        "Algorithm", "Ops/s(cpu)", "% Slower", "Ops/s(wall)", "Paper Ops/s", "Paper %"
    ));
    out.push_str(&"-".repeat(92));
    out.push('\n');
    for r in rows {
        let paper = if r.spec.paper_ops_per_sec.is_nan() {
            format!("{:>11} {:>8}", "-", "-")
        } else {
            format!(
                "{:>11.0} {:>7.1}%",
                r.spec.paper_ops_per_sec, r.spec.paper_pct_slower
            )
        };
        out.push_str(&format!(
            "{:<34} {:>11.0} {:>8.1}% {:>11.0}   {paper}\n",
            r.spec.label(),
            r.measurement.cpu_ops_per_sec,
            r.pct_slower,
            r.measurement.wall_ops_per_sec,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_schemes() {
        let specs = table2_specs();
        assert_eq!(specs.len(), 8);
        for s in ProtectionScheme::ALL {
            if s == ProtectionScheme::DeferredMaintenance {
                // Extension row (not in the paper's table); appended via
                // deferred_spec() / table2 --deferred.
                assert_eq!(deferred_spec().scheme, s);
                continue;
            }
            assert!(specs.iter().any(|spec| spec.scheme == s), "{s:?} missing");
        }
        let precheck: Vec<_> = specs
            .iter()
            .filter(|s| s.scheme == ProtectionScheme::ReadPrecheck)
            .map(|s| s.region_size)
            .collect();
        assert_eq!(precheck, vec![64, 512, 8192]);
    }

    #[test]
    fn paper_ordering_is_monotone() {
        let specs = table2_specs();
        for w in specs.windows(2) {
            assert!(w[0].paper_ops_per_sec >= w[1].paper_ops_per_sec);
        }
    }

    #[test]
    fn cpu_clock_advances() {
        let a = process_cpu_seconds();
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = process_cpu_seconds();
        assert!(b > a);
    }

    #[test]
    fn tiny_row_runs_end_to_end() {
        let wl = TpcbConfig::small();
        let spec = &table2_specs()[1]; // Data CW
        let m = run_row(spec, &wl, 100, true);
        assert!(m.cpu_ops_per_sec > 0.0);
        assert!(m.wall_ops_per_sec > 0.0);
        assert!(m.pages_per_op.is_none());
    }

    #[test]
    fn mprotect_row_reports_pages_per_op() {
        let wl = TpcbConfig::small();
        let spec = table2_specs()
            .into_iter()
            .find(|s| s.scheme == ProtectionScheme::MemoryProtection)
            .unwrap();
        let m = run_row(&spec, &wl, 60, false);
        let p = m.pages_per_op.unwrap();
        assert!(p > 1.0, "{p}");
    }

    #[test]
    fn json_renders_nested_and_escaped() {
        let v = Json::Obj(vec![
            ("name", Json::Str("a\"b\\c\nd".into())),
            ("n", Json::UInt(7)),
            ("x", Json::Num(1.5)),
            ("nan", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::Int(-1), Json::Obj(vec![])])),
        ]);
        let s = v.render();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""), "{s}");
        assert!(s.contains("\"n\": 7"));
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("-1"));
        assert!(s.contains("{}"));
        // Balanced braces/brackets (cheap well-formedness proxy).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn vm_rss_is_positive_on_linux() {
        assert!(vm_rss_kib() > 0);
    }

    #[test]
    fn build_rows_computes_slowdown() {
        let specs = vec![table2_specs()[0].clone(), table2_specs()[1].clone()];
        let ms = vec![
            RowMeasurement {
                cpu_ops_per_sec: 100.0,
                wall_ops_per_sec: 90.0,
                pages_per_op: None,
            },
            RowMeasurement {
                cpu_ops_per_sec: 80.0,
                wall_ops_per_sec: 75.0,
                pages_per_op: None,
            },
        ];
        let rows = build_rows(specs, ms);
        assert_eq!(rows[0].pct_slower, 0.0);
        assert!((rows[1].pct_slower - 20.0).abs() < 1e-9);
    }
}
