//! Dump a database's stable system log in human-readable form.
//!
//! A small operator tool in the spirit of the paper's audit-trail view of
//! the log (§4.2: read log records make the transaction log "a limited
//! form of audit trail"): every record is printed with its LSN, so one
//! can follow exactly which transactions read and wrote what, where
//! audits ran, and where checkpoints completed.
//!
//! Usage: cargo run -p dali-bench --bin logdump -- <db-dir> [--from LSN] [--txn N] [--residue]

use dali_common::{CodewordAlgebraKind, Lsn};
use dali_wal::record::LogRecord;
use dali_wal::SystemLog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: logdump <db-dir> [--from LSN] [--txn N] [--residue]");
        std::process::exit(2);
    };
    let get = |flag: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.parse().expect("numeric argument"))
    };
    let from = Lsn(get("--from").unwrap_or(0));
    let txn_filter = get("--txn");
    // Frame checksums follow the database's codeword algebra; a log
    // written by a residue-configured engine needs --residue to verify.
    let algebra = if args.iter().any(|a| a == "--residue") {
        CodewordAlgebraKind::Residue
    } else {
        CodewordAlgebraKind::XorFold
    };

    let path = std::path::Path::new(dir).join("system.log");
    let records = SystemLog::scan_stable_with(&path, from, algebra).unwrap_or_else(|e| {
        eprintln!("cannot scan {}: {e}", path.display());
        std::process::exit(1);
    });

    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for (lsn, rec) in &records {
        if let Some(t) = txn_filter {
            if rec.txn().map(|x| x.0) != Some(t) {
                continue;
            }
        }
        *counts.entry(kind(rec)).or_default() += 1;
        println!("{:>10}  {}", lsn.0, render(rec));
    }
    eprintln!("\n{} records:", records.len());
    for (k, n) in counts {
        eprintln!("  {k:<14} {n}");
    }
}

fn kind(rec: &LogRecord) -> &'static str {
    match rec {
        LogRecord::TxnBegin { .. } => "TxnBegin",
        LogRecord::OpBegin { .. } => "OpBegin",
        LogRecord::PhysicalRedo { .. } => "PhysicalRedo",
        LogRecord::ReadLog { .. } => "ReadLog",
        LogRecord::OpCommit { .. } => "OpCommit",
        LogRecord::TxnCommit { .. } => "TxnCommit",
        LogRecord::TxnAbort { .. } => "TxnAbort",
        LogRecord::AuditBegin { .. } => "AuditBegin",
        LogRecord::AuditEnd { .. } => "AuditEnd",
        LogRecord::CkptComplete { .. } => "CkptComplete",
        LogRecord::CreateTable { .. } => "CreateTable",
    }
}

fn render(rec: &LogRecord) -> String {
    match rec {
        LogRecord::TxnBegin { txn } => format!("BEGIN       {txn}"),
        LogRecord::OpBegin { txn, op, kind, rec } => {
            format!("OP-BEGIN    {txn} op{} {kind:?} {rec}", op.0)
        }
        LogRecord::PhysicalRedo {
            txn,
            op,
            addr,
            data,
        } => format!("REDO        {txn} op{} {addr}+{}", op.0, data.len()),
        LogRecord::ReadLog {
            txn,
            addr,
            len,
            codewords,
        } => {
            if codewords.is_empty() {
                format!("READ        {txn} {addr}+{len}")
            } else {
                format!("READ        {txn} {addr}+{len} cw={:08x?}", codewords)
            }
        }
        LogRecord::OpCommit { txn, op, undo } => format!(
            "OP-COMMIT   {txn} op{} undo {}",
            op.0,
            match undo {
                dali_wal::record::LogicalUndo::HeapInsert { rec } => format!("delete {rec}"),
                dali_wal::record::LogicalUndo::HeapDelete { rec, .. } => format!("reinsert {rec}"),
                dali_wal::record::LogicalUndo::HeapUpdate { rec, .. } => format!("writeback {rec}"),
            }
        ),
        LogRecord::TxnCommit { txn } => format!("COMMIT      {txn}"),
        LogRecord::TxnAbort { txn } => format!("ABORT       {txn}"),
        LogRecord::AuditBegin { audit_id } => format!("AUDIT-BEGIN #{audit_id}"),
        LogRecord::AuditEnd { audit_id, clean } => {
            format!(
                "AUDIT-END   #{audit_id} {}",
                if *clean { "clean" } else { "CORRUPT" }
            )
        }
        LogRecord::CkptComplete { ckpt_lsn } => format!("CKPT        at {ckpt_lsn}"),
        LogRecord::CreateTable {
            table,
            name,
            rec_size,
            capacity,
            ..
        } => format!("DDL         create {table} '{name}' rec={rec_size}B cap={capacity}"),
    }
}
