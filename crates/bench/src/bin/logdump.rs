//! Dump a database's segmented stable system log in human-readable form.
//!
//! A small operator tool in the spirit of the paper's audit-trail view of
//! the log (§4.2: read log records make the transaction log "a limited
//! form of audit trail"). The log is a directory of fixed-size segment
//! files; this prints a per-segment summary (LSN range, frame-type
//! histogram, sealed/active/torn status) followed by every record with
//! its global LSN, so one can follow exactly which transactions read and
//! wrote what, where audits ran, and where checkpoints completed.
//!
//! Usage: cargo run -p dali-bench --bin logdump -- <db-dir> [--from LSN] [--txn N] [--residue] [--segments-only]

use dali_common::{CodewordAlgebraKind, Lsn};
use dali_wal::record::{unframe_with, LogRecord};
use dali_wal::{segment, Frame};

/// One walked segment: frames parsed straight off the file bytes.
struct SegmentDump {
    info: segment::SegmentInfo,
    /// (global LSN, record) for every record frame.
    records: Vec<(Lsn, LogRecord)>,
    /// Per-frame-type histogram keyed by record kind (plus "Seal").
    histogram: std::collections::BTreeMap<&'static str, usize>,
    /// Bytes at the tail that do not parse as a frame (torn final
    /// flush), or bytes after a seal (corruption).
    torn_bytes: u64,
    /// The segment ends with a clean seal.
    sealed: bool,
}

fn walk_segment(
    dir: &std::path::Path,
    info: segment::SegmentInfo,
    algebra: CodewordAlgebraKind,
) -> SegmentDump {
    let bytes = std::fs::read(segment::path(dir, info.base)).unwrap_or_default();
    let mut dump = SegmentDump {
        info,
        records: Vec::new(),
        histogram: Default::default(),
        torn_bytes: 0,
        sealed: false,
    };
    let mut pos = 0usize;
    while pos < bytes.len() {
        match unframe_with(algebra, &bytes[pos..]) {
            Ok((Frame::Record(rec), used)) => {
                *dump.histogram.entry(kind(&rec)).or_default() += 1;
                dump.records.push((Lsn(info.base.0 + pos as u64), rec));
                pos += used;
            }
            Ok((Frame::Seal, used)) => {
                *dump.histogram.entry("Seal").or_default() += 1;
                pos += used;
                // A seal marks the end of the segment; anything after it
                // is garbage (and open() would refuse mid-file seals).
                dump.sealed = pos == bytes.len();
                if !dump.sealed {
                    dump.torn_bytes = (bytes.len() - pos) as u64;
                }
                break;
            }
            Err(_) => {
                dump.torn_bytes = (bytes.len() - pos) as u64;
                break;
            }
        }
    }
    dump
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: logdump <db-dir> [--from LSN] [--txn N] [--residue] [--segments-only]");
        std::process::exit(2);
    };
    let get = |flag: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.parse().expect("numeric argument"))
    };
    let from = Lsn(get("--from").unwrap_or(0));
    let txn_filter = get("--txn");
    let segments_only = args.iter().any(|a| a == "--segments-only");
    // Frame checksums follow the database's codeword algebra; a log
    // written by a residue-configured engine needs --residue to verify.
    let algebra = if args.iter().any(|a| a == "--residue") {
        CodewordAlgebraKind::Residue
    } else {
        CodewordAlgebraKind::XorFold
    };

    let path = std::path::Path::new(dir).join("system.log");
    let segments = segment::list(&path).unwrap_or_else(|e| {
        eprintln!("cannot list segments in {}: {e}", path.display());
        std::process::exit(1);
    });
    if segments.is_empty() {
        eprintln!("no log segments in {}", path.display());
        std::process::exit(1);
    }

    // ---- per-segment summary ----
    let dumps: Vec<SegmentDump> = segments
        .iter()
        .map(|&s| walk_segment(&path, s, algebra))
        .collect();
    eprintln!(
        "{} segment(s), {} bytes on disk:",
        dumps.len(),
        segment::bytes_on_disk(&path).unwrap_or(0)
    );
    for (i, d) in dumps.iter().enumerate() {
        let status = if d.torn_bytes > 0 {
            format!("TORN ({} trailing bytes)", d.torn_bytes)
        } else if d.sealed {
            "sealed".into()
        } else if i == dumps.len() - 1 {
            "active".into()
        } else {
            // Interior segment without a seal: open() would reject this
            // chain, but the dump should still describe it.
            "UNSEALED".into()
        };
        let hist = d
            .histogram
            .iter()
            .map(|(k, n)| format!("{k}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        eprintln!(
            "  {:>24}  lsn {:>10}..{:<10}  {:>8}B  {:<10} {}",
            segment::file_name(d.info.base),
            d.info.base.0,
            d.info.end().0,
            d.info.len,
            status,
            hist
        );
    }
    if segments_only {
        return;
    }

    // ---- record dump (global LSN order, across segments) ----
    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    let mut total = 0usize;
    println!();
    for d in &dumps {
        for (lsn, rec) in &d.records {
            if *lsn < from {
                continue;
            }
            total += 1;
            if let Some(t) = txn_filter {
                if rec.txn().map(|x| x.0) != Some(t) {
                    continue;
                }
            }
            *counts.entry(kind(rec)).or_default() += 1;
            println!("{:>10}  {}", lsn.0, render(rec));
        }
    }
    eprintln!("\n{total} records:");
    for (k, n) in counts {
        eprintln!("  {k:<14} {n}");
    }
}

fn kind(rec: &LogRecord) -> &'static str {
    match rec {
        LogRecord::TxnBegin { .. } => "TxnBegin",
        LogRecord::OpBegin { .. } => "OpBegin",
        LogRecord::PhysicalRedo { .. } => "PhysicalRedo",
        LogRecord::ReadLog { .. } => "ReadLog",
        LogRecord::OpCommit { .. } => "OpCommit",
        LogRecord::TxnCommit { .. } => "TxnCommit",
        LogRecord::TxnAbort { .. } => "TxnAbort",
        LogRecord::AuditBegin { .. } => "AuditBegin",
        LogRecord::AuditEnd { .. } => "AuditEnd",
        LogRecord::CkptComplete { .. } => "CkptComplete",
        LogRecord::CreateTable { .. } => "CreateTable",
    }
}

fn render(rec: &LogRecord) -> String {
    match rec {
        LogRecord::TxnBegin { txn } => format!("BEGIN       {txn}"),
        LogRecord::OpBegin { txn, op, kind, rec } => {
            format!("OP-BEGIN    {txn} op{} {kind:?} {rec}", op.0)
        }
        LogRecord::PhysicalRedo {
            txn,
            op,
            addr,
            data,
        } => format!("REDO        {txn} op{} {addr}+{}", op.0, data.len()),
        LogRecord::ReadLog {
            txn,
            addr,
            len,
            codewords,
        } => {
            if codewords.is_empty() {
                format!("READ        {txn} {addr}+{len}")
            } else {
                format!("READ        {txn} {addr}+{len} cw={:08x?}", codewords)
            }
        }
        LogRecord::OpCommit { txn, op, undo } => format!(
            "OP-COMMIT   {txn} op{} undo {}",
            op.0,
            match undo {
                dali_wal::record::LogicalUndo::HeapInsert { rec } => format!("delete {rec}"),
                dali_wal::record::LogicalUndo::HeapDelete { rec, .. } => format!("reinsert {rec}"),
                dali_wal::record::LogicalUndo::HeapUpdate { rec, .. } => format!("writeback {rec}"),
            }
        ),
        LogRecord::TxnCommit { txn } => format!("COMMIT      {txn}"),
        LogRecord::TxnAbort { txn } => format!("ABORT       {txn}"),
        LogRecord::AuditBegin { audit_id } => format!("AUDIT-BEGIN #{audit_id}"),
        LogRecord::AuditEnd { audit_id, clean } => {
            format!(
                "AUDIT-END   #{audit_id} {}",
                if *clean { "clean" } else { "CORRUPT" }
            )
        }
        LogRecord::CkptComplete { ckpt_lsn } => format!("CKPT        at {ckpt_lsn}"),
        LogRecord::CreateTable {
            table,
            name,
            rec_size,
            capacity,
            ..
        } => format!("DDL         create {table} '{name}' rec={rec_size}B cap={capacity}"),
    }
}
