//! Deferred-maintenance scaling sweep: dirty-set shards × worker
//! threads × background drain interval, on the concurrent TPC-B driver.
//!
//! The deferred scheme's update path is a push into the sharded,
//! coalescing dirty set; its catch-up path is shard-by-shard drains
//! (inline at the watermark, periodic from the background drainer,
//! per-region inside audits). This sweep shows how throughput moves
//! with the shard count (contention on the shard mutexes), the thread
//! count, and the drain cadence, and prints the dirty-set counters
//! (drains / coalesced deltas / max shard depth) that explain the
//! shape.
//!
//! Commits are durable by default, matching `table_scale`'s scaling
//! regime (threads overlap their commit fsyncs).
//!
//! Usage:
//!   cargo run -p dali-bench --release --bin deferred_scale [-- options]
//!
//! Options:
//!   --ops N           operations per cell (default 6000)
//!   --reps N          interleaved repetitions per cell, median reported (default 3)
//!   --threads LIST    comma-separated thread counts (default 1,2,4)
//!   --shards LIST     comma-separated dirty-set shard counts (default 1,4,16)
//!   --intervals LIST  comma-separated drain intervals in ms, "off" = no
//!                     background drainer (default off,25,1)
//!   --watermark N     per-shard dirty-region watermark, 0 = unbounded (default 4096)
//!   --no-sync         buffered commits (no fsync)
//!   --quick           CI smoke mode: tiny cells, 1 rep, one interval
//!
//! Set DALI_BENCH_VERBOSE=1 to print every repetition.

use dali_bench::{format_deferred_markdown, run_deferred_cell, run_deferred_sweep};
use dali_workload::TpcbConfig;
use std::time::Duration;

const USAGE: &str = "usage: deferred_scale [--ops N] [--reps N] [--threads LIST] \
                     [--shards LIST] [--intervals LIST] [--watermark N] [--no-sync] [--quick]";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_list(s: &str, flag: &str) -> Vec<usize> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("{flag} must be comma-separated numbers")))
        })
        .collect()
}

fn main() {
    let mut ops: usize = 6_000;
    let mut reps: usize = 3;
    let mut threads: Vec<usize> = vec![1, 2, 4];
    let mut shards: Vec<usize> = vec![1, 4, 16];
    let mut intervals: Vec<Option<Duration>> = vec![
        None,
        Some(Duration::from_millis(25)),
        Some(Duration::from_millis(1)),
    ];
    let mut watermark: usize = 4096;
    let mut sync_commit = true;
    let mut quick = false;
    let wl = TpcbConfig::scale();

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => {
                ops = value(&mut args, "--ops")
                    .parse()
                    .unwrap_or_else(|_| fail("--ops must be a number"));
            }
            "--reps" => {
                reps = value(&mut args, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps must be a number"));
            }
            "--threads" => threads = parse_list(&value(&mut args, "--threads"), "--threads"),
            "--shards" => shards = parse_list(&value(&mut args, "--shards"), "--shards"),
            "--intervals" => {
                intervals = value(&mut args, "--intervals")
                    .split(',')
                    .map(|t| match t.trim() {
                        "off" | "none" => None,
                        ms => Some(Duration::from_millis(ms.parse().unwrap_or_else(|_| {
                            fail("--intervals entries must be numbers (ms) or 'off'")
                        }))),
                    })
                    .collect();
            }
            "--watermark" => {
                watermark = value(&mut args, "--watermark")
                    .parse()
                    .unwrap_or_else(|_| fail("--watermark must be a number"));
            }
            "--no-sync" => sync_commit = false,
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    if quick {
        // CI smoke: exercise every code path once, in seconds.
        ops = 400;
        reps = 1;
        threads = vec![1, 2];
        shards = vec![1, 8];
        intervals = vec![Some(Duration::from_millis(1))];
        sync_commit = false;
    }
    if ops == 0 || reps == 0 {
        fail("--ops and --reps must be positive");
    }
    if threads.is_empty() || shards.is_empty() || intervals.is_empty() {
        fail("--threads, --shards and --intervals each need at least one entry");
    }
    if shards.contains(&0) {
        fail("--shards entries must be positive (0 = auto is resolved by config, pass it explicitly)");
    }
    if let Some(&bad) = threads.iter().find(|&&t| t == 0 || t > wl.branches) {
        fail(&format!(
            "thread count {bad} out of range (1..={} branches)",
            wl.branches
        ));
    }

    println!("Deferred-maintenance scaling: TPC-B ops/s vs dirty-set shards and threads");
    println!(
        "({} accounts / {} tellers / {} branches, {} ops per cell x {} reps \
         (interleaved, median), watermark {}, durable commits: {})\n",
        wl.accounts, wl.tellers, wl.branches, ops, reps, watermark, sync_commit
    );
    eprintln!(
        "running {} shard counts x {:?} threads x {} intervals x {reps} reps; \
         use --quick for a smoke pass",
        shards.len(),
        threads,
        intervals.len()
    );

    // Warmup pass, discarded (page cache, frequency ramp).
    let _ = run_deferred_cell(
        &wl,
        shards[0],
        threads[0],
        ops,
        None,
        watermark,
        sync_commit,
    );
    for interval in &intervals {
        let label = match interval {
            None => "background drainer off".to_string(),
            Some(i) => format!("drain interval {} ms", i.as_millis()),
        };
        println!("### {label}\n");
        let cells = run_deferred_sweep(
            &shards,
            &threads,
            &wl,
            ops,
            *interval,
            watermark,
            sync_commit,
            reps,
        );
        println!("{}", format_deferred_markdown(&shards, &threads, &cells));
    }
}
