//! Corruption-recovery behaviour study (extension; the paper's §4
//! describes the algorithms but reports no recovery-time table).
//!
//! Injects a wild write into a running TPC-B database, lets `carriers`
//! transactions read the corrupt record, detects via audit, and measures
//! the delete-transaction recovery: how many transactions were deleted,
//! how much data was quarantined, and how long recovery took.
//!
//! Usage: cargo run -p dali-bench --release --bin table_recovery [-- --carriers N] [--ops N]

use dali_common::{DaliConfig, ProtectionScheme};
use dali_engine::DaliEngine;
use dali_faultinject::FaultInjector;
use dali_workload::{TpcbConfig, TpcbDriver};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.parse().expect("numeric argument"))
    };
    let ops = get("--ops").unwrap_or(2_000);
    let carrier_counts = match get("--carriers") {
        Some(n) => vec![n],
        None => vec![0, 1, 4, 16, 64],
    };

    println!("Delete-transaction recovery behaviour (ReadLogging scheme)");
    println!("(TPC-B small workload, {ops} ops before corruption)\n");
    println!(
        "{:>9} {:>14} {:>14} {:>16} {:>14}",
        "carriers", "deleted txns", "quarantined B", "records scanned", "recovery ms"
    );

    for &carriers in &carrier_counts {
        let wl = TpcbConfig::small();
        let dir = dali_bench::scratch_dir(&format!("recov-{carriers}"));
        let mut config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::ReadLogging);
        config.db_pages = wl.required_pages(config.page_size);
        let (db, _) = DaliEngine::create(config.clone()).expect("create");
        let mut driver = TpcbDriver::setup(&db, wl).expect("setup");
        driver.run_ops(ops).expect("warmup");
        db.checkpoint().expect("checkpoint");

        // Corrupt one account record.
        let victim = driver.random_account();
        let addr = db.record_addr(victim).expect("addr");
        let inj = FaultInjector::new(&db);
        // Non-cancelling single-word pattern (see tests/parity_blind_spot.rs).
        inj.wild_write_bytes(addr.add(8), &[0xDE, 0xAD, 0xBE, 0xEF])
            .expect("inject");

        // `carriers` transactions read it and write derived values.
        for _ in 0..carriers {
            let txn = db.begin().expect("begin");
            let dirty = txn.read_vec(victim).expect("read corrupt");
            let other = driver.random_account();
            if other != victim {
                txn.update(other, &dirty).expect("spread");
            }
            txn.commit().expect("commit");
        }

        let report = db.audit().expect("audit");
        assert!(!report.clean(), "audit must detect the wild write");

        let start = std::time::Instant::now();
        let (_db, outcome) = DaliEngine::open(config).expect("recover");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>9} {:>14} {:>14} {:>16} {:>14.1}",
            carriers,
            outcome.deleted_txns.len(),
            outcome.corrupt_ranges.iter().map(|(_, l)| l).sum::<usize>(),
            outcome.records_scanned,
            elapsed
        );
    }
    println!(
        "\nEvery carrier that read the corrupt record is deleted from history;\n\
         the corrupt-data set grows with the writes those carriers performed."
    );
}
