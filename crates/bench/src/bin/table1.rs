//! Regenerate Table 1: "Performance of Protect/Unprotect".
//!
//! The paper protected and unprotected 2000 pages, repeated 50 times, and
//! reported the average number of protect/unprotect pairs per second, on
//! four 1998 workstations. We run the identical measurement with real
//! `mprotect` on this machine and print it alongside the paper's rows.
//!
//! Usage: `cargo run -p dali-bench --release --bin table1 [pages] [reps]`

fn main() {
    let mut args = std::env::args().skip(1);
    let pages: usize = args
        .next()
        .map(|s| s.parse().expect("pages must be a number"))
        .unwrap_or(2000);
    let reps: usize = args
        .next()
        .map(|s| s.parse().expect("reps must be a number"))
        .unwrap_or(50);

    println!("Table 1. Performance of Protect/Unprotect");
    println!("({pages} pages protected+unprotected, {reps} repetitions)\n");
    println!("{:<24} {:>14}", "Platform", "pairs/second");
    println!("{}", "-".repeat(40));
    for (platform, rate) in dali_bench::table1_paper_rows() {
        println!("{:<24} {:>14}", format!("{platform} (paper)"), fmt(rate));
    }
    let measured =
        dali_mem::protect::measure_protect_pairs(pages, reps).expect("mprotect measurement failed");
    println!("{:<24} {:>14}", "this machine", fmt(measured));
    println!();
    println!(
        "Note: the paper's observation is the *variability* of mprotect cost\n\
         across platforms (the HP had 2x the SPECint of the SPARCstation but\n\
         1/4 of its mprotect throughput). Absolute rates on modern hardware\n\
         are far higher; the codeword schemes' costs scale with integer\n\
         performance instead (paper section 7)."
    );
}

fn fmt(rate: f64) -> String {
    let n = rate.round() as u64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}
