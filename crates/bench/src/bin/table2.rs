//! Regenerate Table 2: "Cost of Corruption Protection".
//!
//! Runs the TPC-B style workload of §5.2 under all eight scheme
//! configurations and prints ops/sec and relative slowdown next to the
//! paper's numbers. See the crate docs for the measurement methodology
//! (CPU-time metric, interleaved repetitions, median).
//!
//! Usage:
//!   cargo run -p dali-bench --release --bin table2 [-- options]
//!
//! Options:
//!   --ops N        operations per repetition (default 50000, the paper's run)
//!   --scale small  use the ~1% workload (quick shape check)
//!   --no-ckpt      skip the mid-run checkpoint
//!   --reps N       interleaved repetitions per row, median reported (default 5)
//!   --stats        print §5.3-style mprotect statistics
//!   --row LABEL    run only rows whose label contains LABEL (plus Baseline)
//!   --deferred     append the Deferred Maintenance extension row
//!   --algebra A    codeword algebra: xor (default, the paper's) or residue
//!
//! Set DALI_BENCH_VERBOSE=1 to print every repetition.

use dali_bench::{build_rows, format_table2, run_row, run_rows_interleaved, table2_specs};
use dali_workload::TpcbConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    let ops: usize = get("--ops")
        .map(|s| s.parse().expect("--ops must be a number"))
        .unwrap_or(50_000);
    let wl = match get("--scale").as_deref() {
        Some("small") => TpcbConfig::small(),
        _ => TpcbConfig::paper(),
    };
    let checkpoint = !has("--no-ckpt");
    let reps: usize = get("--reps")
        .map(|s| s.parse().expect("--reps must be a number"))
        .unwrap_or(5);
    let row_filter = get("--row");

    let mut specs: Vec<_> = match &row_filter {
        Some(filter) => table2_specs()
            .into_iter()
            .filter(|s| {
                s.scheme == dali_common::ProtectionScheme::Baseline
                    || s.label().to_lowercase().contains(&filter.to_lowercase())
            })
            .collect(),
        None => table2_specs(),
    };
    if has("--deferred") {
        specs.push(dali_bench::deferred_spec());
    }
    match get("--algebra").as_deref() {
        None | Some("xor") => {}
        Some("residue") => {
            specs = specs
                .into_iter()
                .map(|s| s.with_algebra(dali_common::CodewordAlgebraKind::Residue))
                .collect();
        }
        Some(other) => panic!("--algebra must be xor or residue, got {other}"),
    }

    println!("Table 2. Cost of Corruption Protection");
    println!(
        "(TPC-B style: {} accounts / {} tellers / {} branches, {} ops x {} reps (interleaved, median), {} ops/txn, mid-run checkpoint: {})\n",
        wl.accounts, wl.tellers, wl.branches, ops, reps, wl.ops_per_txn, checkpoint
    );
    eprintln!(
        "running {} row(s) x {reps} reps; use --scale small --ops 2000 --reps 1 for a quick pass",
        specs.len()
    );

    // Warmup pass, discarded (page cache, frequency ramp).
    let _ = run_row(&specs[0], &wl, ops, checkpoint);
    let measurements = run_rows_interleaved(&specs, &wl, ops, checkpoint, reps);
    let rows = build_rows(specs, measurements);

    println!("{}", format_table2(&rows));

    if has("--stats") {
        for r in &rows {
            if let Some(p) = r.measurement.pages_per_op {
                println!(
                    "Memory Protection: {:.1} pages exposed per operation (paper section 5.3 observed ~11)",
                    p
                );
            }
        }
    }
}
