//! Recovery-scaling sweep: what page-partitioned parallel redo buys and
//! what segment retirement bounds.
//!
//! 1. **Redo scaling** — restart recovery wall-clock and the redo apply
//!    phase's own timer (`redo_parallel_ns`) swept over `redo_threads`
//!    (1/2/4/8) × the amount of log replayed (committed update ops since
//!    the last certified checkpoint). Identical crashed directories are
//!    recovered once per thread count, so the rows isolate the worker
//!    pool. On a single vCPU the *trend* is still recorded — the point
//!    of the sweep is the shape, not a speedup claim.
//! 2. **Retention** — final log-directory size (bytes, segments) after a
//!    fixed workload, swept over checkpoint cadence with retirement on
//!    and off. With retirement on the directory must stay a fraction of
//!    everything ever logged; the harness asserts that bound (the CI
//!    smoke runs this leg).
//!
//! Results are also written as machine-readable JSON (`BENCH_recovery.json`
//! by default).
//!
//! Usage:
//!   cargo run -p dali-bench --release --bin recovery_scale [-- options]
//!
//! Options:
//!   --threads LIST  redo thread counts to sweep (default 1,2,4,8)
//!   --ops LIST      post-checkpoint committed ops per log size (default 2000,8000)
//!   --cadences LIST rounds of work between checkpoints (default 1,4)
//!   --json PATH     result file (default BENCH_recovery.json)
//!   --quick         CI smoke mode: one small cell each, seconds total

use dali_bench::{scratch_dir, Json};
use dali_common::{DaliConfig, ProtectionScheme};
use dali_engine::DaliEngine;
use std::sync::atomic::Ordering;
use std::time::Instant;

const USAGE: &str =
    "usage: recovery_scale [--threads LIST] [--ops LIST] [--cadences LIST] [--json PATH] [--quick]";

// 512 × 256B records span ~16 pages, so the page-partitioned buckets
// populate up to 8 redo workers.
const REC: usize = 256;
const NRECS: usize = 512;
const SEG_BYTES: u64 = 64 << 10;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_list(s: &str, flag: &str) -> Vec<usize> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("{flag} must be comma-separated numbers")))
        })
        .collect()
}

fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn base_config(dir: &std::path::Path) -> DaliConfig {
    DaliConfig::small(dir)
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_log_segment_bytes(SEG_BYTES)
}

/// Build a crashed directory with `ops` committed updates since the last
/// certified checkpoint — the log a restart has to replay.
fn build_crashed_dir(tag: &str, ops: usize) -> std::path::PathBuf {
    let dir = scratch_dir(tag);
    let (db, _) = DaliEngine::create(base_config(&dir)).unwrap();
    let t = db.create_table("t", REC, NRECS).unwrap();
    let setup = db.begin().unwrap();
    let mut recs = Vec::new();
    for i in 0..NRECS {
        recs.push(setup.insert(t, &[i as u8; REC]).unwrap());
    }
    setup.commit().unwrap();
    db.checkpoint().unwrap();
    let mut done = 0usize;
    while done < ops {
        let txn = db.begin().unwrap();
        for _ in 0..16.min(ops - done) {
            let mut v = vec![(done % 251) as u8; REC];
            v[0..8].copy_from_slice(&(done as u64).to_le_bytes());
            txn.update(recs[done % NRECS], &v).unwrap();
            done += 1;
        }
        txn.commit().unwrap();
    }
    db.crash();
    dir
}

struct RedoRow {
    ops: usize,
    threads: usize,
    threads_used: u64,
    redo_ms: f64,
    open_ms: f64,
    records_scanned: usize,
}

fn redo_leg(ops_list: &[usize], threads_list: &[usize]) -> Vec<RedoRow> {
    let mut rows = Vec::new();
    for &ops in ops_list {
        let base = build_crashed_dir(&format!("recovery-scale-{ops}"), ops);
        for &threads in threads_list {
            let case = scratch_dir(&format!("recovery-scale-{ops}-t{threads}"));
            copy_dir(&base, &case);
            let config = base_config(&case).with_redo_threads(threads);
            let started = Instant::now();
            let (db, outcome) = DaliEngine::open(config).unwrap();
            let open_ms = started.elapsed().as_secs_f64() * 1e3;
            let redo_ms = db.stats().redo_parallel_ns.load(Ordering::Relaxed) as f64 / 1e6;
            let threads_used = db.stats().redo_threads_used.load(Ordering::Relaxed);
            rows.push(RedoRow {
                ops,
                threads,
                threads_used,
                redo_ms,
                open_ms,
                records_scanned: outcome.records_scanned,
            });
            db.crash();
            let _ = std::fs::remove_dir_all(&case);
        }
        let _ = std::fs::remove_dir_all(&base);
    }
    rows
}

struct RetentionRow {
    cadence: usize,
    retire: bool,
    checkpoints: usize,
    total_logged: u64,
    bytes_on_disk: u64,
    segments: u64,
    segments_retired: u64,
}

/// Fixed workload (`rounds` rounds of NRECS updates), checkpointing every
/// `cadence` rounds, with retirement on or off.
fn retention_cell(cadence: usize, retire: bool, rounds: usize) -> RetentionRow {
    let dir = scratch_dir(&format!("recovery-retain-{cadence}-{retire}"));
    let config = base_config(&dir).with_log_retire(retire);
    let (db, _) = DaliEngine::create(config).unwrap();
    let t = db.create_table("t", REC, NRECS).unwrap();
    let setup = db.begin().unwrap();
    let mut recs = Vec::new();
    for i in 0..NRECS {
        recs.push(setup.insert(t, &[i as u8; REC]).unwrap());
    }
    setup.commit().unwrap();
    let mut checkpoints = 0usize;
    for round in 0..rounds {
        let txn = db.begin().unwrap();
        for (i, &rec) in recs.iter().enumerate() {
            let mut v = vec![(round % 251) as u8; REC];
            v[0] = i as u8;
            txn.update(rec, &v).unwrap();
        }
        txn.commit().unwrap();
        if (round + 1) % cadence == 0 {
            db.checkpoint().unwrap();
            checkpoints += 1;
        }
    }
    let stats = db.stats();
    let row = RetentionRow {
        cadence,
        retire,
        checkpoints,
        total_logged: db.current_lsn().unwrap().0,
        bytes_on_disk: stats.log_bytes_on_disk.load(Ordering::Relaxed),
        segments: stats.log_segments_active.load(Ordering::Relaxed),
        segments_retired: stats.log_segments_retired.load(Ordering::Relaxed),
    };
    db.crash();
    let _ = std::fs::remove_dir_all(&dir);
    row
}

fn main() {
    let mut threads_list: Vec<usize> = vec![1, 2, 4, 8];
    let mut ops_list: Vec<usize> = vec![2_000, 8_000];
    let mut cadences: Vec<usize> = vec![1, 4];
    let mut rounds = 24usize;
    let mut json_path: String = "BENCH_recovery.json".into();
    let mut quick = false;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => threads_list = parse_list(&value(&mut args, "--threads"), "--threads"),
            "--ops" => ops_list = parse_list(&value(&mut args, "--ops"), "--ops"),
            "--cadences" => cadences = parse_list(&value(&mut args, "--cadences"), "--cadences"),
            "--json" => json_path = value(&mut args, "--json"),
            "--quick" => quick = true,
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    if quick {
        threads_list = vec![1, 2, 8];
        ops_list = vec![500];
        cadences = vec![2];
        rounds = 8;
    }

    // ---- leg 1: redo scaling ----
    let redo_rows = redo_leg(&ops_list, &threads_list);
    println!("redo scaling ({SEG_BYTES}B segments, {REC}B records):");
    println!(
        "  {:>8} {:>8} {:>6} {:>10} {:>10} {:>9}",
        "ops", "threads", "used", "redo ms", "open ms", "scanned"
    );
    for r in &redo_rows {
        println!(
            "  {:>8} {:>8} {:>6} {:>10.3} {:>10.1} {:>9}",
            r.ops, r.threads, r.threads_used, r.redo_ms, r.open_ms, r.records_scanned
        );
    }

    // ---- leg 2: retention ----
    let mut retention_rows = Vec::new();
    for &cadence in &cadences {
        for retire in [true, false] {
            retention_rows.push(retention_cell(cadence, retire, rounds));
        }
    }
    println!("\nretention ({rounds} rounds, checkpoint every N rounds):");
    println!(
        "  {:>8} {:>7} {:>6} {:>12} {:>12} {:>9} {:>8}",
        "cadence", "retire", "ckpts", "logged B", "on-disk B", "segments", "retired"
    );
    for r in &retention_rows {
        println!(
            "  {:>8} {:>7} {:>6} {:>12} {:>12} {:>9} {:>8}",
            r.cadence,
            r.retire,
            r.checkpoints,
            r.total_logged,
            r.bytes_on_disk,
            r.segments,
            r.segments_retired
        );
    }
    // The smoke's hard claim: with retirement on and more than one
    // checkpoint behind us, the directory holds a fraction of everything
    // ever logged (two checkpoints of slack, segment-granular).
    for r in retention_rows.iter().filter(|r| r.retire) {
        if r.checkpoints >= 3 {
            assert!(
                r.bytes_on_disk < r.total_logged / 2,
                "retirement is not bounding the log: cadence {} retains {} of {} bytes",
                r.cadence,
                r.bytes_on_disk,
                r.total_logged
            );
            assert!(r.segments_retired > 0);
        }
    }

    // ---- JSON ----
    let json = Json::Obj(vec![
        (
            "redo_scaling",
            Json::Arr(
                redo_rows
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("ops", Json::UInt(r.ops as u64)),
                            ("threads", Json::UInt(r.threads as u64)),
                            ("threads_used", Json::UInt(r.threads_used)),
                            ("redo_ms", Json::Num(r.redo_ms)),
                            ("open_ms", Json::Num(r.open_ms)),
                            ("records_scanned", Json::UInt(r.records_scanned as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "retention",
            Json::Arr(
                retention_rows
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("cadence", Json::UInt(r.cadence as u64)),
                            ("retire", Json::Bool(r.retire)),
                            ("checkpoints", Json::UInt(r.checkpoints as u64)),
                            ("total_logged", Json::UInt(r.total_logged)),
                            ("bytes_on_disk", Json::UInt(r.bytes_on_disk)),
                            ("segments", Json::UInt(r.segments)),
                            ("segments_retired", Json::UInt(r.segments_retired)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&json_path, json.render()).unwrap();
    println!("\nwrote {json_path}");
}
