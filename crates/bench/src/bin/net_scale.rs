//! Network scaling: connection-count sweeps of the event-driven server
//! against the `legacy-threaded` thread-per-connection baseline, plus
//! the original group-commit window sweep (`--group-commit`).
//!
//! ## Connection scaling (default mode)
//!
//! Each cell opens `conns` concurrent loopback connections against a
//! fresh server and drives `frames` pipelined `Ping` frames per
//! connection at pipeline depth `depth`, using a nonblocking
//! multiplexed client harness (a handful of driver threads `poll(2)`ing
//! hundreds of sockets each — the client side must not be
//! thread-per-connection either, or it would hit the same wall the
//! bench exists to demonstrate). Per cell we report:
//!
//! * completion: did every connection get every response before the
//!   deadline (a hung accept loop or dead server shows up here);
//! * aggregate frames/sec over the drive wall-time;
//! * server-side `Ping` p50/p99 from the `Metrics` verb (decode →
//!   response, so queue wait is included);
//! * process RSS delta for the cell (threads cost stacks; event loops
//!   cost buffers — this is the column that separates the two models).
//!
//! Arrival is closed-loop by default (each connection keeps `depth`
//! frames in flight); `--rate R` switches to open-loop arrivals at R
//! frames/sec spread across all connections, with the pipeline depth
//! acting as each connection's queue bound.
//!
//! Results are also written as machine-readable JSON (`BENCH_net.json`
//! by default, `--json PATH` to move it).
//!
//! ## Quick smoke (`--quick`, used by CI)
//!
//! Runs the threaded baseline at 64 connections and the event server at
//! 256 (4x), both at depth 8, and asserts the event server finishes
//! every frame while staying within the threaded server's memory
//! envelope (1.5x + 8 MiB measurement slack): "4x the connections at
//! equal memory" is the tentpole claim, so CI holds it.
//!
//! Usage:
//!   cargo run -p dali-bench --release --bin net_scale [-- options]
//!
//! Options:
//!   --conns LIST     connection counts (default 64,256,1024,4096)
//!   --depths LIST    pipeline depths (default 1,16)
//!   --frames N       frames per connection (default 100)
//!   --rate R         open-loop arrivals/sec across all conns (0 = closed loop)
//!   --modes LIST     event,threaded (default both)
//!   --deadline SECS  per-cell drive deadline (default 120)
//!   --json PATH      result file (default BENCH_net.json)
//!   --quick          CI smoke: threaded@64 vs event@256 + assertions
//!   --group-commit   run the durable-commit window sweep instead
//!   --ops N          [group-commit] TPC-B ops per cell (default 2000)
//!   --reps N         [group-commit] repetitions, median (default 3)
//!   --clients LIST   [group-commit] client counts (default 1,2,4,8)
//!   --windows LIST   [group-commit] commit windows ms (default 0,0.5,2)
//!   --ops-per-txn N  [group-commit] ops per txn (default 4)

use dali_bench::{scratch_dir, vm_rss_kib, Json};
use dali_common::{DaliConfig, ProtectionScheme};
use dali_engine::DaliEngine;
use dali_net::legacy::ThreadedServer;
use dali_net::protocol::{encode_request, frame, parse_frame};
use dali_net::{DaliClient, DaliServer, NetTpcbDriver, Request};
use dali_workload::TpcbConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: net_scale [--conns LIST] [--depths LIST] [--frames N] [--rate R] \
                     [--modes event,threaded] [--deadline SECS] [--json PATH] [--quick] \
                     [--group-commit [--ops N] [--reps N] [--clients LIST] [--windows LIST] \
                     [--ops-per-txn N]]";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_list<T: std::str::FromStr>(v: &str, flag: &str) -> Vec<T> {
    v.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("{flag} must be comma-separated numbers")))
        })
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

// -------------------------------------------------------------------
// Connection-scaling sweep
// -------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Event,
    Threaded,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Event => "event",
            Mode::Threaded => "threaded",
        }
    }
}

/// Either server behind one start/addr/shutdown surface.
enum AnyServer {
    Event(DaliServer),
    Threaded(ThreadedServer),
}

impl AnyServer {
    fn start(mode: Mode, engine: DaliEngine) -> AnyServer {
        match mode {
            Mode::Event => {
                AnyServer::Event(DaliServer::start(engine, "127.0.0.1:0").expect("bind"))
            }
            Mode::Threaded => {
                AnyServer::Threaded(ThreadedServer::start(engine, "127.0.0.1:0").expect("bind"))
            }
        }
    }

    fn addr(&self) -> SocketAddr {
        match self {
            AnyServer::Event(s) => s.addr(),
            AnyServer::Threaded(s) => s.addr(),
        }
    }

    fn shutdown(self) {
        match self {
            AnyServer::Event(s) => s.shutdown(),
            AnyServer::Threaded(s) => s.shutdown(),
        }
    }
}

/// One connection owned by a driver thread: a nonblocking socket plus
/// the bookkeeping to keep `depth` frames in flight.
struct Conn {
    stream: TcpStream,
    /// Encoded-but-unwritten bytes (bounded by depth x frame size).
    out: Vec<u8>,
    out_pos: usize,
    /// Partial inbound bytes awaiting a frame boundary.
    inbuf: Vec<u8>,
    sent: usize,
    recv: usize,
    /// Next open-loop arrival for this connection (unused closed-loop).
    next_due: Instant,
    dead: bool,
}

impl Conn {
    fn in_flight(&self) -> usize {
        self.sent - self.recv
    }
    fn done(&self, target: usize) -> bool {
        self.dead || self.recv >= target
    }
}

/// Outcome of one (mode, conns, depth) cell.
struct ScaleCellResult {
    mode: Mode,
    conns: usize,
    depth: usize,
    conns_established: usize,
    frames_target: u64,
    frames_done: u64,
    completed: bool,
    wall_secs: f64,
    frames_per_sec: f64,
    ping_p50_ns: Option<u64>,
    ping_p99_ns: Option<u64>,
    rss_delta_kib: u64,
}

/// Drive the connections assigned to one thread until every one is done
/// (or the deadline passes). Closed loop when `interval` is None;
/// otherwise each connection enqueues a frame when its arrival comes due,
/// still bounded by `depth` in flight.
fn drive_conns(
    conns: &mut [Conn],
    target: usize,
    depth: usize,
    interval: Option<Duration>,
    ping_frame: &[u8],
    deadline: Instant,
) -> u64 {
    let mut pfds: Vec<libc::pollfd> = conns
        .iter()
        .map(|c| libc::pollfd {
            fd: c.stream.as_raw_fd(),
            events: 0,
            revents: 0,
        })
        .collect();
    let mut scratch = [0u8; 64 * 1024];
    loop {
        let now = Instant::now();
        if now >= deadline || conns.iter().all(|c| c.done(target)) {
            break;
        }
        // Top up each connection's pipeline.
        for c in conns.iter_mut() {
            if c.dead {
                continue;
            }
            while c.sent < target && c.in_flight() < depth {
                if let Some(iv) = interval {
                    if now < c.next_due {
                        break;
                    }
                    c.next_due += iv;
                }
                c.out.extend_from_slice(ping_frame);
                c.sent += 1;
            }
        }
        // Arm poll: always read interest; write interest only with
        // buffered output (POLLOUT on an idle socket spins).
        for (c, pfd) in conns.iter().zip(pfds.iter_mut()) {
            if c.done(target) {
                pfd.fd = -1; // ignored by poll(2)
                continue;
            }
            pfd.fd = c.stream.as_raw_fd();
            pfd.events = libc::POLLIN;
            if c.out_pos < c.out.len() {
                pfd.events |= libc::POLLOUT;
            }
            pfd.revents = 0;
        }
        let wait_ms = match interval {
            Some(_) => 5,
            None => 100,
        };
        // SAFETY: pfds points at a live array of pfds.len() pollfds.
        let rc = unsafe { libc::poll(pfds.as_mut_ptr(), pfds.len() as libc::nfds_t, wait_ms) };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                continue;
            }
            panic!("poll failed: {err}");
        }
        for (c, pfd) in conns.iter_mut().zip(pfds.iter()) {
            if pfd.fd < 0 || pfd.revents == 0 {
                continue;
            }
            if pfd.revents & libc::POLLOUT != 0 {
                while c.out_pos < c.out.len() {
                    match c.stream.write(&c.out[c.out_pos..]) {
                        Ok(0) => {
                            c.dead = true;
                            break;
                        }
                        Ok(n) => c.out_pos += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            c.dead = true;
                            break;
                        }
                    }
                }
                if c.out_pos == c.out.len() {
                    c.out.clear();
                    c.out_pos = 0;
                }
            }
            if pfd.revents & (libc::POLLIN | libc::POLLERR | libc::POLLHUP) != 0 {
                loop {
                    match c.stream.read(&mut scratch) {
                        Ok(0) => {
                            c.dead = true;
                            break;
                        }
                        Ok(n) => {
                            c.inbuf.extend_from_slice(&scratch[..n]);
                            if n < scratch.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            c.dead = true;
                            break;
                        }
                    }
                }
                // Count complete response frames (the harness measures
                // delivery; correctness of payloads is the test suite's
                // job, not the bench's).
                let mut consumed = 0usize;
                while let Ok(Some((_, used))) = parse_frame(&c.inbuf[consumed..]) {
                    consumed += used;
                    c.recv += 1;
                }
                if consumed > 0 {
                    c.inbuf.drain(..consumed);
                }
            }
        }
    }
    conns.iter().map(|c| c.recv as u64).sum()
}

/// Run one connection-scaling cell: fresh engine + server in `mode`,
/// `n_conns` connections x `frames` pings at pipeline depth `depth`.
fn run_scale_cell(
    mode: Mode,
    n_conns: usize,
    depth: usize,
    frames: usize,
    rate: f64,
    deadline_secs: u64,
) -> ScaleCellResult {
    let rss_before = vm_rss_kib();
    let config = DaliConfig::small(scratch_dir(&format!(
        "netconns-{}-{n_conns}c",
        mode.label()
    )))
    .with_scheme(ProtectionScheme::Baseline);
    let (engine, _) = DaliEngine::create(config).expect("create db");
    let dir = engine.config().dir.clone();
    let server = AnyServer::start(mode, engine);
    let addr = server.addr();

    // Serial connect phase: the listen backlog is finite (128), so a
    // thundering herd of connect()s can overflow it before the server
    // accepts — which would measure the kernel's SYN queue, not the
    // server. Connecting serially, each connect waits for the previous
    // ones to be draining.
    let mut streams = Vec::with_capacity(n_conns);
    for _ in 0..n_conns {
        match TcpStream::connect_timeout(&addr, Duration::from_secs(5)) {
            Ok(s) => {
                s.set_nodelay(true).expect("nodelay");
                s.set_nonblocking(true).expect("nonblocking");
                streams.push(s);
            }
            // A server that stopped accepting (dead accept thread, fd
            // exhaustion) surfaces here; record how far it got.
            Err(_) => break,
        }
    }
    let conns_established = streams.len();

    let ping_frame = frame(&encode_request(&Request::Ping));
    let n_drivers = 8.min(conns_established.max(1));
    let interval = if rate > 0.0 {
        // Per-connection arrival spacing for an aggregate of `rate`/sec.
        Some(Duration::from_secs_f64(
            conns_established.max(1) as f64 / rate,
        ))
    } else {
        None
    };
    let start = Instant::now();
    let mut conns: Vec<Conn> = streams
        .into_iter()
        .map(|stream| Conn {
            stream,
            out: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
            sent: 0,
            recv: 0,
            next_due: start,
            dead: false,
        })
        .collect();

    // Partition connections across driver threads; the main thread
    // samples RSS while they run (thread stacks and per-connection
    // buffers only count while alive).
    let deadline = start + Duration::from_secs(deadline_secs);
    let finished = AtomicUsize::new(0);
    let mut chunks: Vec<&mut [Conn]> = Vec::new();
    let per = conns.len().div_ceil(n_drivers).max(1);
    let mut rest = conns.as_mut_slice();
    while !rest.is_empty() {
        let take = per.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        chunks.push(head);
        rest = tail;
    }
    let mut rss_peak = rss_before;
    let frames_done: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let (ping_frame, finished) = (&ping_frame, &finished);
                s.spawn(move || {
                    let done = drive_conns(chunk, frames, depth, interval, ping_frame, deadline);
                    finished.fetch_add(1, Ordering::Release);
                    done
                })
            })
            .collect();
        while finished.load(Ordering::Acquire) < handles.len() {
            rss_peak = rss_peak.max(vm_rss_kib());
            std::thread::sleep(Duration::from_millis(50));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    // Server-side latency, from the Metrics verb over a fresh admin
    // connection (the server may itself be wedged — tolerate failure).
    let (ping_p50_ns, ping_p99_ns) = match DaliClient::connect(addr) {
        Ok(mut admin) => match admin.metrics() {
            Ok(m) => match m.verb(Request::Ping.tag()) {
                Some(v) => (Some(v.quantile(0.50)), Some(v.quantile(0.99))),
                None => (None, None),
            },
            Err(_) => (None, None),
        },
        Err(_) => (None, None),
    };

    drop(conns);
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);

    let frames_target = (n_conns * frames) as u64;
    ScaleCellResult {
        mode,
        conns: n_conns,
        depth,
        conns_established,
        frames_target,
        frames_done,
        completed: conns_established == n_conns && frames_done == frames_target,
        wall_secs,
        frames_per_sec: frames_done as f64 / wall_secs.max(1e-9),
        ping_p50_ns,
        ping_p99_ns,
        rss_delta_kib: rss_peak.saturating_sub(rss_before),
    }
}

fn fmt_us(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.1}", ns as f64 / 1e3),
        None => "-".into(),
    }
}

fn print_scale_row(r: &ScaleCellResult) {
    let status = if r.completed {
        "ok".to_string()
    } else if r.conns_established < r.conns {
        format!("FAILED ({} connected)", r.conns_established)
    } else {
        format!("DEGRADED ({}/{} frames)", r.frames_done, r.frames_target)
    };
    println!(
        "| {} | {} | {} | {status} | {:.0} | {} | {} | {:.1} |",
        r.mode.label(),
        r.conns,
        r.depth,
        r.frames_per_sec,
        fmt_us(r.ping_p50_ns),
        fmt_us(r.ping_p99_ns),
        r.rss_delta_kib as f64 / 1024.0
    );
}

fn scale_cell_json(r: &ScaleCellResult) -> Json {
    Json::Obj(vec![
        ("mode", Json::Str(r.mode.label().into())),
        ("conns", Json::UInt(r.conns as u64)),
        ("depth", Json::UInt(r.depth as u64)),
        ("conns_established", Json::UInt(r.conns_established as u64)),
        ("frames_target", Json::UInt(r.frames_target)),
        ("frames_done", Json::UInt(r.frames_done)),
        ("completed", Json::Bool(r.completed)),
        ("wall_secs", Json::Num(r.wall_secs)),
        ("frames_per_sec", Json::Num(r.frames_per_sec)),
        (
            "ping_p50_ns",
            r.ping_p50_ns.map_or(Json::Num(f64::NAN), Json::UInt),
        ),
        (
            "ping_p99_ns",
            r.ping_p99_ns.map_or(Json::Num(f64::NAN), Json::UInt),
        ),
        ("rss_delta_kib", Json::UInt(r.rss_delta_kib)),
    ])
}

fn scale_table_header() {
    println!(
        "| Server | Conns | Depth | Status | Frames/s | p50 µs | p99 µs | RSS Δ MiB |\n\
         |:--|--:|--:|:--|--:|--:|--:|--:|"
    );
}

/// The CI smoke: the event server must sustain 4x the connections of the
/// threaded baseline without exceeding its memory envelope.
fn run_quick(json_path: Option<&str>) {
    const THREADED_CONNS: usize = 64;
    const EVENT_CONNS: usize = 256;
    const DEPTH: usize = 8;
    const FRAMES: usize = 50;
    println!(
        "### Connection-scaling smoke: threaded@{THREADED_CONNS} vs event@{EVENT_CONNS} \
         (depth {DEPTH}, {FRAMES} frames/conn)\n"
    );
    scale_table_header();
    let threaded = run_scale_cell(Mode::Threaded, THREADED_CONNS, DEPTH, FRAMES, 0.0, 120);
    print_scale_row(&threaded);
    let event = run_scale_cell(Mode::Event, EVENT_CONNS, DEPTH, FRAMES, 0.0, 120);
    print_scale_row(&event);
    println!();

    if let Some(path) = json_path {
        write_json(
            path,
            vec![scale_cell_json(&threaded), scale_cell_json(&event)],
            None,
        );
    }

    assert!(
        event.completed,
        "event server failed to complete {EVENT_CONNS} connections x {FRAMES} frames \
         ({}/{} frames, {} connected)",
        event.frames_done, event.frames_target, event.conns_established
    );
    assert!(
        threaded.frames_done > 0,
        "threaded baseline served nothing; smoke cannot compare"
    );
    // "4x the connections at equal memory": allow 1.5x + 8 MiB of
    // measurement slack (RSS sampling races allocator behavior).
    let budget = threaded.rss_delta_kib + threaded.rss_delta_kib / 2 + 8 * 1024;
    assert!(
        event.rss_delta_kib <= budget,
        "event server at {EVENT_CONNS} conns used {} KiB, over the threaded@{THREADED_CONNS} \
         envelope of {} KiB",
        event.rss_delta_kib,
        budget
    );
    println!(
        "smoke OK: event@{EVENT_CONNS} completed in {} KiB RSS vs threaded@{THREADED_CONNS} \
         envelope {} KiB",
        event.rss_delta_kib, budget
    );
}

fn write_json(path: &str, cells: Vec<Json>, group_commit: Option<Json>) {
    let mut top = vec![
        ("bench", Json::Str("net_scale".into())),
        (
            "host_cpus",
            Json::UInt(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ),
        ("cells", Json::Arr(cells)),
    ];
    if let Some(gc) = group_commit {
        top.push(("group_commit", gc));
    }
    let body = Json::Obj(top).render() + "\n";
    std::fs::write(path, body).unwrap_or_else(|e| fail(&format!("writing {path}: {e}")));
    eprintln!("wrote {path}");
}

// -------------------------------------------------------------------
// Group-commit window sweep (the original net_scale)
// -------------------------------------------------------------------

/// One cell's outcome.
struct NetCell {
    ops_per_sec: f64,
    /// fsyncs issued per durable commit — 1.0 means no sharing at all.
    fsyncs_per_txn: f64,
    retries: usize,
}

/// Run `clients` connections of contended TPC-B against a fresh server
/// with the given commit window; durable commits throughout.
fn run_net_cell(wl: &TpcbConfig, clients: usize, ops: usize, window: Duration) -> NetCell {
    let mut config = DaliConfig::small(scratch_dir(&format!(
        "netscale-{clients}c-{}us",
        window.as_micros()
    )))
    .with_scheme(ProtectionScheme::Baseline)
    .with_lock_shards(8)
    .with_commit_window(window);
    // A zero window still measures durable commits — just unbatched.
    config.sync_commit = true;
    config.db_pages = wl.required_pages(config.page_size);
    let (db, _) = DaliEngine::create(config).expect("create db");
    let dir = db.config().dir.clone();

    let server = DaliServer::start(db, "127.0.0.1:0").expect("bind server");
    let mut driver = NetTpcbDriver::setup(server.addr(), wl.clone()).expect("populate");
    let mut admin = DaliClient::connect(server.addr()).expect("admin connect");

    let base = admin.stats().expect("stats");
    let run = driver.run_clients(clients, ops).expect("net run");
    let stats = admin.stats().expect("stats");
    driver.verify_invariant().expect("invariant");

    let durable = (stats.durable_commits - base.durable_commits).max(1);
    let fsyncs = stats.fsyncs - base.fsyncs;
    drop(admin);
    drop(driver);
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
    NetCell {
        ops_per_sec: run.ops_per_sec(),
        fsyncs_per_txn: fsyncs as f64 / durable as f64,
        retries: run.retries,
    }
}

struct GroupCommitOpts {
    ops: usize,
    reps: usize,
    clients: Vec<usize>,
    windows_ms: Vec<f64>,
    ops_per_txn: usize,
}

fn run_group_commit(opts: &GroupCommitOpts, json_path: Option<&str>) {
    let mut wl = TpcbConfig::scale();
    wl.ops_per_txn = opts.ops_per_txn;
    println!(
        "### Networked TPC-B over loopback TCP (durable commits)\n\n\
         {} accounts / {} tellers / {} branches, {} ops/txn, {} ops per cell x {} reps, \
         contended mode; cells report median ops/s (fsyncs per durable commit, retries)\n",
        wl.accounts, wl.tellers, wl.branches, wl.ops_per_txn, opts.ops, opts.reps
    );
    let mut head = String::from("| Commit window |");
    for c in &opts.clients {
        head.push_str(&format!(" {c} client{} |", if *c == 1 { "" } else { "s" }));
    }
    println!("{head}\n|:--|{}", "--:|".repeat(opts.clients.len()));
    let mut rows = Vec::new();
    for &w in &opts.windows_ms {
        let window = Duration::from_secs_f64(w / 1e3);
        let mut row = format!("| {w} ms |");
        for &c in &opts.clients {
            let cells: Vec<NetCell> = (0..opts.reps)
                .map(|_| run_net_cell(&wl, c, opts.ops, window))
                .collect();
            let v = median(cells.iter().map(|x| x.ops_per_sec).collect());
            let f = median(cells.iter().map(|x| x.fsyncs_per_txn).collect());
            let r = median(cells.iter().map(|x| x.retries as f64).collect());
            row.push_str(&format!(" {v:.0} ({f:.2} fs/txn, {r:.0} rtry) |"));
            rows.push(Json::Obj(vec![
                ("window_ms", Json::Num(w)),
                ("clients", Json::UInt(c as u64)),
                ("ops_per_sec", Json::Num(v)),
                ("fsyncs_per_txn", Json::Num(f)),
                ("retries", Json::Num(r)),
            ]));
        }
        println!("{row}");
    }
    println!();
    if let Some(path) = json_path {
        write_json(path, Vec::new(), Some(Json::Arr(rows)));
    }
}

// -------------------------------------------------------------------

fn main() {
    // Connection-scaling defaults.
    let mut conns: Vec<usize> = vec![64, 256, 1024, 4096];
    let mut depths: Vec<usize> = vec![1, 16];
    let mut frames: usize = 100;
    let mut rate: f64 = 0.0;
    let mut modes: Vec<Mode> = vec![Mode::Event, Mode::Threaded];
    let mut deadline_secs: u64 = 120;
    let mut json_path: String = "BENCH_net.json".into();
    let mut quick = false;
    let mut group_commit = false;
    // Group-commit defaults.
    let mut gc = GroupCommitOpts {
        ops: 2_000,
        reps: 3,
        clients: vec![1, 2, 4, 8],
        windows_ms: vec![0.0, 0.5, 2.0],
        ops_per_txn: 4,
    };

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--conns" => conns = parse_list(&value(&mut args, "--conns"), "--conns"),
            "--depths" => depths = parse_list(&value(&mut args, "--depths"), "--depths"),
            "--frames" => {
                frames = value(&mut args, "--frames")
                    .parse()
                    .unwrap_or_else(|_| fail("--frames must be a number"));
            }
            "--rate" => {
                rate = value(&mut args, "--rate")
                    .parse()
                    .unwrap_or_else(|_| fail("--rate must be a number"));
            }
            "--modes" => {
                modes = value(&mut args, "--modes")
                    .split(',')
                    .map(|m| match m.trim() {
                        "event" => Mode::Event,
                        "threaded" => Mode::Threaded,
                        other => fail(&format!("unknown mode '{other}'")),
                    })
                    .collect();
            }
            "--deadline" => {
                deadline_secs = value(&mut args, "--deadline")
                    .parse()
                    .unwrap_or_else(|_| fail("--deadline must be a number"));
            }
            "--json" => json_path = value(&mut args, "--json"),
            "--quick" => quick = true,
            "--group-commit" => group_commit = true,
            "--ops" => {
                gc.ops = value(&mut args, "--ops")
                    .parse()
                    .unwrap_or_else(|_| fail("--ops must be a number"));
            }
            "--reps" => {
                gc.reps = value(&mut args, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps must be a number"));
            }
            "--clients" => gc.clients = parse_list(&value(&mut args, "--clients"), "--clients"),
            "--windows" => gc.windows_ms = parse_list(&value(&mut args, "--windows"), "--windows"),
            "--ops-per-txn" => {
                gc.ops_per_txn = value(&mut args, "--ops-per-txn")
                    .parse()
                    .unwrap_or_else(|_| fail("--ops-per-txn must be a number"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }

    if group_commit {
        if gc.ops == 0
            || gc.reps == 0
            || gc.ops_per_txn == 0
            || gc.clients.is_empty()
            || gc.windows_ms.is_empty()
        {
            fail("--ops/--reps/--ops-per-txn must be positive, lists non-empty");
        }
        if gc.windows_ms.iter().any(|&w| w < 0.0) {
            fail("--windows entries must be >= 0");
        }
        gc.quick_adjust(quick);
        run_group_commit(&gc, Some(&json_path));
        return;
    }

    if quick {
        run_quick(None);
        return;
    }

    if frames == 0 || conns.is_empty() || depths.is_empty() || modes.is_empty() {
        fail("--frames must be positive, lists non-empty");
    }
    println!(
        "### Connection scaling over loopback TCP ({frames} Ping frames/conn, {} arrival)\n",
        if rate > 0.0 {
            format!("open-loop {rate}/s")
        } else {
            "closed-loop".to_string()
        }
    );
    scale_table_header();
    let mut cells = Vec::new();
    for &mode in &modes {
        for &n in &conns {
            for &d in &depths {
                let r = run_scale_cell(mode, n, d, frames, rate, deadline_secs);
                print_scale_row(&r);
                cells.push(scale_cell_json(&r));
            }
        }
    }
    println!();
    write_json(&json_path, cells, None);
}

impl GroupCommitOpts {
    /// Shrink to smoke sizes when `--quick` accompanies `--group-commit`.
    fn quick_adjust(&mut self, quick: bool) {
        if quick {
            self.ops = 400;
            self.reps = 1;
            self.clients = vec![1, 2, 4];
        }
    }
}
