//! Network scaling: N client connections of contended TPC-B against one
//! server, swept over the group-commit window.
//!
//! Every cell runs with durable commits (`sync_commit`), which is the
//! regime group commit exists for: without a window every commit pays
//! its own fsync; with one, concurrent committers from different
//! connections share a single fsync, so fsyncs/txn drops as the client
//! count grows. Throughput and fsyncs/txn per cell come from the
//! server's `Stats` verb (the `SystemLog` flush/fsync counters).
//!
//! Usage:
//!   cargo run -p dali-bench --release --bin net_scale [-- options]
//!
//! Options:
//!   --ops N          TPC-B operations per cell (default 2000)
//!   --reps N         repetitions per cell, median reported (default 3)
//!   --clients LIST   comma-separated client counts (default 1,2,4,8)
//!   --windows LIST   comma-separated commit windows in ms (default 0,0.5,2)
//!   --ops-per-txn N  operations per transaction (default 4: commit-heavy)
//!   --quick          one rep, smaller cells (CI smoke)

use dali_bench::scratch_dir;
use dali_common::{DaliConfig, ProtectionScheme};
use dali_engine::DaliEngine;
use dali_net::{DaliClient, DaliServer, NetTpcbDriver};
use dali_workload::TpcbConfig;
use std::time::Duration;

const USAGE: &str = "usage: net_scale [--ops N] [--reps N] [--clients LIST] \
                     [--windows LIST] [--ops-per-txn N] [--quick]";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_list<T: std::str::FromStr>(v: &str, flag: &str) -> Vec<T> {
    v.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("{flag} must be comma-separated numbers")))
        })
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// One cell's outcome.
struct NetCell {
    ops_per_sec: f64,
    /// fsyncs issued per durable commit — 1.0 means no sharing at all.
    fsyncs_per_txn: f64,
    retries: usize,
}

/// Run `clients` connections of contended TPC-B against a fresh server
/// with the given commit window; durable commits throughout.
fn run_net_cell(wl: &TpcbConfig, clients: usize, ops: usize, window: Duration) -> NetCell {
    let mut config = DaliConfig::small(scratch_dir(&format!(
        "netscale-{clients}c-{}us",
        window.as_micros()
    )))
    .with_scheme(ProtectionScheme::Baseline)
    .with_lock_shards(8)
    .with_commit_window(window);
    // A zero window still measures durable commits — just unbatched.
    config.sync_commit = true;
    config.db_pages = wl.required_pages(config.page_size);
    let (db, _) = DaliEngine::create(config).expect("create db");
    let dir = db.config().dir.clone();

    let server = DaliServer::start(db, "127.0.0.1:0").expect("bind server");
    let mut driver = NetTpcbDriver::setup(server.addr(), wl.clone()).expect("populate");
    let mut admin = DaliClient::connect(server.addr()).expect("admin connect");

    let base = admin.stats().expect("stats");
    let run = driver.run_clients(clients, ops).expect("net run");
    let stats = admin.stats().expect("stats");
    driver.verify_invariant().expect("invariant");

    let durable = (stats.durable_commits - base.durable_commits).max(1);
    let fsyncs = stats.fsyncs - base.fsyncs;
    drop(admin);
    drop(driver);
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
    NetCell {
        ops_per_sec: run.ops_per_sec(),
        fsyncs_per_txn: fsyncs as f64 / durable as f64,
        retries: run.retries,
    }
}

fn main() {
    let mut ops: usize = 2_000;
    let mut reps: usize = 3;
    let mut clients: Vec<usize> = vec![1, 2, 4, 8];
    let mut windows_ms: Vec<f64> = vec![0.0, 0.5, 2.0];
    let mut ops_per_txn: usize = 4;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => {
                ops = value(&mut args, "--ops")
                    .parse()
                    .unwrap_or_else(|_| fail("--ops must be a number"));
            }
            "--reps" => {
                reps = value(&mut args, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps must be a number"));
            }
            "--clients" => clients = parse_list(&value(&mut args, "--clients"), "--clients"),
            "--windows" => windows_ms = parse_list(&value(&mut args, "--windows"), "--windows"),
            "--ops-per-txn" => {
                ops_per_txn = value(&mut args, "--ops-per-txn")
                    .parse()
                    .unwrap_or_else(|_| fail("--ops-per-txn must be a number"));
            }
            "--quick" => {
                ops = 400;
                reps = 1;
                clients = vec![1, 2, 4];
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    if ops == 0 || reps == 0 || ops_per_txn == 0 || clients.is_empty() || windows_ms.is_empty() {
        fail("--ops/--reps/--ops-per-txn must be positive, lists non-empty");
    }
    if windows_ms.iter().any(|&w| w < 0.0) {
        fail("--windows entries must be >= 0");
    }

    let mut wl = TpcbConfig::scale();
    wl.ops_per_txn = ops_per_txn;
    println!(
        "### Networked TPC-B over loopback TCP (durable commits)\n\n\
         {} accounts / {} tellers / {} branches, {} ops/txn, {ops} ops per cell x {reps} reps, \
         contended mode; cells report median ops/s (fsyncs per durable commit, retries)\n",
        wl.accounts, wl.tellers, wl.branches, wl.ops_per_txn
    );
    let mut head = String::from("| Commit window |");
    for c in &clients {
        head.push_str(&format!(" {c} client{} |", if *c == 1 { "" } else { "s" }));
    }
    println!("{head}\n|:--|{}", "--:|".repeat(clients.len()));
    for &w in &windows_ms {
        let window = Duration::from_secs_f64(w / 1e3);
        let mut row = format!("| {w} ms |");
        for &c in &clients {
            let cells: Vec<NetCell> = (0..reps)
                .map(|_| run_net_cell(&wl, c, ops, window))
                .collect();
            let v = median(cells.iter().map(|x| x.ops_per_sec).collect());
            let f = median(cells.iter().map(|x| x.fsyncs_per_txn).collect());
            let r = median(cells.iter().map(|x| x.retries as f64).collect());
            row.push_str(&format!(" {v:.0} ({f:.2} fs/txn, {r:.0} rtry) |"));
        }
        println!("{row}");
    }
    println!();
}
