//! Online-repair scaling sweep: what self-healing costs and what it
//! saves.
//!
//! 1. **Repair vs recovery latency** — wall-clock of an in-place parity
//!    rebuild of one corrupt region against the log-based alternative
//!    (certified checkpoint restore + WAL replay, forced by a double
//!    fault in the same parity group), swept over parity group size and
//!    post-checkpoint dirt (committed ops since the anchor, which is
//!    what the log rung has to replay). In-place repair is flat; the
//!    log rung grows with the dirt. At the default group size the
//!    harness *asserts* repair is at least 10x below recovery.
//! 2. **Parity write amplification** — TPC-B throughput with the stripe
//!    off vs on, plus the stripe's own counters (drains, coalesced
//!    deltas, delta bytes queued) so the overhead can be attributed.
//!
//! Usage:
//!   cargo run -p dali-bench --release --bin repair_scale [-- options]
//!
//! Options:
//!   --groups LIST   parity group sizes to sweep (default 4,8,16,32)
//!   --dirty LIST    post-checkpoint committed ops (default 0,256,2048)
//!   --reps N        repetitions per cell, best reported (default 5)
//!   --ops N         TPC-B ops for the overhead leg (default 20000)
//!   --quick         CI smoke mode: one cell each, seconds total

use dali_bench::scratch_dir;
use dali_common::{DaliConfig, DbAddr, ProtectionScheme};
use dali_engine::repair::RepairOutcome;
use dali_engine::{CheckpointOutcome, DaliEngine};
use dali_faultinject::FaultInjector;
use dali_workload::{TpcbConfig, TpcbDriver};
use std::time::Instant;

const USAGE: &str =
    "usage: repair_scale [--groups LIST] [--dirty LIST] [--reps N] [--ops N] [--quick]";

const REC: usize = 64;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_list(s: &str, flag: &str) -> Vec<usize> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("{flag} must be comma-separated numbers")))
        })
        .collect()
}

/// A populated engine with a certified anchor and `dirty_ops` committed
/// updates since it — the state both repair rungs start from. Returns
/// the engine plus the base addresses of two sibling regions in one
/// parity group (record slots, so wild writes land on live data).
fn arena(
    group: usize,
    dirty_ops: usize,
    tag: &str,
) -> (DaliEngine, DbAddr, DbAddr, std::path::PathBuf) {
    let dir = scratch_dir(&format!("repairscale-{tag}-{group}-{dirty_ops}"));
    let config = DaliConfig::small(&dir)
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_parity_group_size(group);
    let (db, _) = DaliEngine::create(config).unwrap();
    let table = db.create_table("t", REC, 4096).unwrap();
    let mut recs = Vec::new();
    for i in 0..256u32 {
        let txn = db.begin().unwrap();
        recs.push(txn.insert(table, &[i as u8; REC]).unwrap());
        txn.commit().unwrap();
    }
    match db.checkpoint().unwrap() {
        CheckpointOutcome::Certified { .. } => {}
        other => panic!("clean database must certify, got {other:?}"),
    }
    // Post-anchor dirt: this is what the log rung has to replay.
    for i in 0..dirty_ops {
        let txn = db.begin().unwrap();
        txn.update(recs[i % recs.len()], &[(i as u8) ^ 0x55; REC])
            .unwrap();
        txn.commit().unwrap();
    }
    // Two sibling regions of one group: records are region-sized, so
    // consecutive slots are consecutive regions.
    let (base_a, base_b) = {
        let geom = db.db().prot.geometry();
        let stripe = db.db().prot.parity().expect("stripe enabled");
        let a = db.record_addr(recs[0]).unwrap();
        let ra = geom.region_of(a);
        let rb = if stripe.group_of(ra + 1) == stripe.group_of(ra) {
            ra + 1
        } else {
            ra - 1
        };
        (geom.region_base(ra), geom.region_base(rb))
    };
    (db, base_a, base_b, dir)
}

fn flip(db: &DaliEngine, inj: &FaultInjector, base: DbAddr) {
    let mut b = [0u8; 1];
    db.db().image.read(base, &mut b).unwrap();
    b[0] ^= 0x08;
    assert!(inj.wild_write_bytes(base, &b).unwrap().landed());
}

/// Best-of-`reps` latency of one repair rung, in seconds. `double`
/// selects the rung: a second corrupt sibling forces the log path.
fn rung_latency(group: usize, dirty_ops: usize, reps: usize, double: bool) -> f64 {
    let tag = if double { "log" } else { "parity" };
    let (db, base_a, base_b, dir) = arena(group, dirty_ops, tag);
    let inj = FaultInjector::new(&db);
    let region = db.db().prot.geometry().region_of(base_a);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        flip(&db, &inj, base_a);
        if double {
            flip(&db, &inj, base_b);
        }
        let start = Instant::now();
        let outcome = db.repair(region).unwrap();
        best = best.min(start.elapsed().as_secs_f64());
        match (double, &outcome) {
            (false, RepairOutcome::RepairedInPlace { .. }) => {}
            (true, RepairOutcome::RecoveredViaLog { .. }) => {}
            _ => panic!("wrong rung for double={double}: {outcome:?}"),
        }
    }
    assert!(
        db.audit().unwrap().clean(),
        "post-repair audit must be clean"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    best
}

fn latency_sweep(groups: &[usize], dirty: &[usize], reps: usize, default_group: usize) {
    println!(
        "### Repair vs recovery latency (best of {reps}): one corrupt region, in-place parity \
         rebuild vs certified-checkpoint + WAL replay\n"
    );
    println!("| group size | post-ckpt ops | repair us | recovery us | recovery / repair |");
    println!("|---|---|---|---|---|");
    for &g in groups {
        for &d in dirty {
            let repair = rung_latency(g, d, reps, false);
            let recover = rung_latency(g, d, reps, true);
            let ratio = recover / repair;
            println!(
                "| {g} | {d} | {:.1} | {:.1} | {ratio:.0}x |",
                repair * 1e6,
                recover * 1e6,
            );
            if g == default_group {
                assert!(
                    ratio >= 10.0,
                    "acceptance: at the default group size ({g}), in-place repair must be at \
                     least 10x below log-based recovery, got {ratio:.1}x \
                     ({:.1} us vs {:.1} us)",
                    repair * 1e6,
                    recover * 1e6,
                );
            }
        }
    }
    println!();
}

fn overhead_leg(ops: usize, reps: usize, default_group: usize) {
    println!(
        "### Parity write amplification: TPC-B, {ops} ops, stripe off vs on (best of {reps})\n"
    );
    println!("| stripe | ops/s | overhead | drains | coalesced | delta bytes | bytes/op |");
    println!("|---|---|---|---|---|---|---|");
    let mut base_ops_s = 0.0;
    for group in [0, default_group] {
        let dir = scratch_dir(&format!("repairscale-tpcb-{group}"));
        let config = DaliConfig::small(&dir)
            .with_scheme(ProtectionScheme::DataCodeword)
            .with_parity_group_size(group);
        let (db, _) = DaliEngine::create(config).unwrap();
        let mut driver = TpcbDriver::setup(&db, TpcbConfig::small()).unwrap();
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            driver.run_ops(ops).unwrap();
            best = best.min(start.elapsed().as_secs_f64());
        }
        let ops_s = ops as f64 / best;
        if group == 0 {
            base_ops_s = ops_s;
        }
        let snap = db.parity_stats();
        println!(
            "| {} | {ops_s:.0} | {:+.1}% | {} | {} | {} | {:.1} |",
            if group == 0 {
                "off".to_string()
            } else {
                format!("on ({group})")
            },
            (base_ops_s / ops_s - 1.0) * 100.0,
            snap.drains,
            snap.coalesced_deltas,
            snap.delta_bytes,
            snap.delta_bytes as f64 / (ops * reps) as f64,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!();
}

fn main() {
    let mut groups: Vec<usize> = vec![4, 8, 16, 32];
    let mut dirty: Vec<usize> = vec![0, 256, 2048];
    let mut reps: usize = 5;
    let mut ops: usize = 20_000;
    let mut quick = false;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--groups" => groups = parse_list(&value(&mut args, "--groups"), "--groups"),
            "--dirty" => dirty = parse_list(&value(&mut args, "--dirty"), "--dirty"),
            "--reps" => {
                reps = value(&mut args, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps must be a number"));
            }
            "--ops" => {
                ops = value(&mut args, "--ops")
                    .parse()
                    .unwrap_or_else(|_| fail("--ops must be a number"));
            }
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    if quick {
        // CI smoke: every rung once, including the 10x assertion.
        groups = vec![8];
        dirty = vec![64];
        reps = 2;
        ops = 2_000;
    }
    if groups.is_empty() || dirty.is_empty() || reps == 0 || ops == 0 {
        fail("all arguments must be positive / non-empty");
    }
    if groups.iter().any(|&g| g < 2) {
        fail("--groups entries must be at least 2 (a stripe needs siblings)");
    }

    let default_group = DaliConfig::small("unused").parity_group_size;
    println!("Repair scaling: in-place parity rebuilds vs log-based recovery");
    println!(
        "(host CPUs: {}, default parity group size: {default_group})\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    latency_sweep(&groups, &dirty, reps, default_group);
    overhead_leg(ops, reps, default_group);
}
