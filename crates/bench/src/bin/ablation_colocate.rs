//! Ablation for the paper's §5.3 observation: operations touched ~11
//! pages because Dali keeps allocation/control information on pages
//! separate from tuple data; "this number may be significantly smaller
//! for a page-based system, which would improve the performance of
//! Hardware Protection and Read Prechecking relative to the detection
//! schemes."
//!
//! We flip exactly that knob: `colocate_control` packs each table's
//! allocation bitmap next to its data (sharing pages) and we measure
//! pages-exposed-per-operation and throughput under Memory Protection in
//! both layouts.
//!
//! Usage: cargo run -p dali-bench --release --bin ablation_colocate [-- --ops N]

use dali_bench::{process_cpu_seconds, scratch_dir};
use dali_common::{DaliConfig, ProtectionScheme};
use dali_engine::DaliEngine;
use dali_workload::{TpcbConfig, TpcbDriver};

fn run(colocate: bool, ops: usize) -> (f64, f64) {
    let wl = TpcbConfig::small();
    let mut config = DaliConfig::small(scratch_dir(&format!("abl-{colocate}")))
        .with_scheme(ProtectionScheme::MemoryProtection);
    config.db_pages = wl.required_pages(config.page_size);
    config.colocate_control = colocate;
    let (db, _) = DaliEngine::create(config).expect("create");
    let mut driver = TpcbDriver::setup(&db, wl).expect("setup");
    db.protect_stats().reset();

    let cpu0 = process_cpu_seconds();
    driver.run_ops(ops).expect("run");
    let cpu = process_cpu_seconds() - cpu0;
    // Syscall pairs are what Table 1 prices: the unprotect count equals
    // the number of protect/unprotect pairs issued.
    let (unprotect, _, _) = db.protect_stats().snapshot();
    driver.verify_invariant().expect("invariant");
    let dir = db.config().dir.clone();
    drop(driver);
    drop(db);
    let _ = std::fs::remove_dir_all(dir);
    (unprotect as f64 / ops as f64, ops as f64 / cpu)
}

fn main() {
    let ops: usize = std::env::args()
        .skip_while(|a| a != "--ops")
        .nth(1)
        .map(|s| s.parse().expect("--ops must be a number"))
        .unwrap_or(10_000);

    println!("Hardware Protection: control-information layout ablation (section 5.3)");
    println!("(TPC-B small workload, {ops} ops, real mprotect)\n");
    println!(
        "{:<34} {:>14} {:>14}",
        "layout", "mprotect/op", "ops/s (cpu)"
    );
    let _ = run(false, ops.min(2_000)); // warmup
    for (label, colocate) in [
        ("Dali (control on own pages)", false),
        ("page-based (colocated)", true),
    ] {
        let (pages, rate) = run(colocate, ops);
        println!("{label:<34} {pages:>14.2} {rate:>14.0}");
    }
    println!(
        "\nColocating control information reduces the pages exposed per\n\
         operation, which is precisely the improvement the paper predicts\n\
         for page-based systems — and why its non-page-based Dali numbers\n\
         put Hardware Protection at a disadvantage."
    );
}
