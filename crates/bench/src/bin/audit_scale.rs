//! Audit-scan scaling sweep: the wide fold kernels (XOR parity and
//! mod-(2^32-1) residue) and the striped parallel audit, measured at the
//! three layers they live in.
//!
//! 1. **Fold kernel bandwidth** — GB/s of the one-word-at-a-time scalar
//!    fold vs the 32-byte/4-lane wide fold, on both the slice path
//!    (`algebra::fold`) and the raw-pointer path behind
//!    `DbImage::fold`, across region-sized buffers, per algebra.
//! 2. **Full-database audit** — `audit_all` wall-clock vs audit worker
//!    count on a noise-filled image, with the parallel report checked
//!    byte-identical to the serial one every time, per algebra.
//! 3. **Checkpoint certification** — end-to-end `checkpoint()` latency
//!    (certification audit included) on a live TPC-B database, with
//!    `audit_threads` swept, plus the engine's audit counters
//!    (audits / regions / bytes folded / audit ns) after the run, per
//!    algebra — the Table 2-style overhead comparison.
//!
//! Usage:
//!   cargo run -p dali-bench --release --bin audit_scale [-- options]
//!
//! Options:
//!   --sizes LIST    fold buffer sizes in KiB (default 4,64,1024,16384)
//!   --threads LIST  audit worker counts (default 1,2,4,8)
//!   --image-mib N   image size for audit/certification sweeps (default 256)
//!   --reps N        repetitions per cell, best reported (default 5)
//!   --ops N         TPC-B ops before each certification (default 500)
//!   --algebra A     xor | residue | both (default both)
//!   --json PATH     also write every row as machine-readable JSON
//!   --quick         CI smoke mode: tiny sizes, seconds total

use dali_bench::{scratch_dir, Json};
use dali_codeword::algebra;
use dali_codeword::{CodewordProtection, DeferredConfig};
use dali_common::{CodewordAlgebraKind, DaliConfig, DbAddr, PageId, ProtectionScheme};
use dali_engine::{CheckpointOutcome, DaliEngine};
use dali_mem::DbImage;
use dali_workload::{TpcbConfig, TpcbDriver};
use std::hint::black_box;
use std::time::Instant;

const USAGE: &str = "usage: audit_scale [--sizes LIST] [--threads LIST] [--image-mib N] \
                     [--reps N] [--ops N] [--algebra xor|residue|both] [--json PATH] [--quick]";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_list(s: &str, flag: &str) -> Vec<usize> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("{flag} must be comma-separated numbers")))
        })
        .collect()
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else {
        format!("{} KiB", bytes >> 10)
    }
}

/// Best-of-`reps` time for `iters` calls of `f`, in seconds.
fn time_best(reps: usize, iters: usize, mut f: impl FnMut() -> u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let mut acc = 0u32;
        for _ in 0..iters {
            acc ^= f();
        }
        black_box(acc);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn patterned(len: usize) -> Vec<u8> {
    (0..len as u32)
        .map(|i| (i.wrapping_mul(2654435761).rotate_right(7) ^ i) as u8)
        .collect()
}

/// Noise-filled image of `mib` MiB (8 KiB pages).
fn noisy_image(mib: usize) -> DbImage {
    const PAGE: usize = 8192;
    let image = DbImage::new(mib << 20 >> 13, PAGE).expect("allocate image");
    let chunk = patterned(1 << 20);
    for off in (0..image.len()).step_by(chunk.len()) {
        let n = chunk.len().min(image.len() - off);
        image.write(DbAddr(off), &chunk[..n]).expect("fill image");
    }
    image
}

fn fold_bandwidth(
    kind: CodewordAlgebraKind,
    sizes_kib: &[usize],
    reps: usize,
    target_bytes: usize,
    rows: &mut Vec<Json>,
) {
    println!(
        "### Fold kernel bandwidth, {} algebra (GB/s, best of {reps})\n",
        kind.label()
    );
    println!(
        "| buffer | scalar slice | wide slice | speedup | scalar image | wide image | speedup |"
    );
    println!("|---|---|---|---|---|---|---|");
    for &kib in sizes_kib {
        let len = kib << 10;
        let buf = patterned(len);
        let image = DbImage::new(len.div_ceil(8192).max(1), 8192).expect("allocate image");
        image.write(DbAddr(0), &buf).expect("fill image");
        let iters = (target_bytes / len).max(1);
        let gbs = |secs: f64| (len * iters) as f64 / secs / 1e9;
        let scalar = gbs(time_best(reps, iters, || algebra::fold_scalar(kind, &buf)));
        let wide = gbs(time_best(reps, iters, || algebra::fold(kind, &buf)));
        let img_scalar = gbs(time_best(reps, iters, || {
            image.fold_scalar(kind, DbAddr(0), len).unwrap()
        }));
        let img_wide = gbs(time_best(reps, iters, || {
            image.fold(kind, DbAddr(0), len).unwrap()
        }));
        println!(
            "| {} | {scalar:.2} | {wide:.2} | {:.2}x | {img_scalar:.2} | {img_wide:.2} | {:.2}x |",
            human(len),
            wide / scalar,
            img_wide / img_scalar,
        );
        rows.push(Json::Obj(vec![
            ("sweep", Json::Str("fold_bandwidth".into())),
            ("algebra", Json::Str(kind.label().into())),
            ("buffer_bytes", Json::UInt(len as u64)),
            ("scalar_slice_gbs", Json::Num(scalar)),
            ("wide_slice_gbs", Json::Num(wide)),
            ("scalar_image_gbs", Json::Num(img_scalar)),
            ("wide_image_gbs", Json::Num(img_wide)),
        ]));
    }
    println!();
}

fn audit_sweep(
    kind: CodewordAlgebraKind,
    threads: &[usize],
    image_mib: usize,
    reps: usize,
    rows: &mut Vec<Json>,
) {
    println!(
        "### Full-database audit, {} algebra: {image_mib} MiB image, wall-clock vs workers \
         (best of {reps})\n",
        kind.label()
    );
    let image = noisy_image(image_mib);
    let prot = CodewordProtection::with_config(
        &image,
        ProtectionScheme::DataCodeword,
        4096,
        8,
        DeferredConfig::default(),
        1,
        kind,
    )
    .expect("build protection");
    let serial = prot.audit_with_threads(&image, 1).expect("serial audit");
    assert!(serial.clean(), "noise image must audit clean");
    println!("| workers | audit ms | speedup | scan GB/s |");
    println!("|---|---|---|---|");
    let mut base_ms = 0.0;
    for &t in threads {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            let report = prot.audit_with_threads(&image, t).expect("audit");
            best = best.min(start.elapsed().as_secs_f64());
            assert_eq!(report.regions_checked, serial.regions_checked);
            assert_eq!(
                report.corrupt, serial.corrupt,
                "{t} workers: report differs"
            );
        }
        let ms = best * 1e3;
        if t == threads[0] {
            base_ms = ms;
        }
        println!(
            "| {t} | {ms:.1} | {:.2}x | {:.2} |",
            base_ms / ms,
            image.len() as f64 / best / 1e9
        );
        rows.push(Json::Obj(vec![
            ("sweep", Json::Str("audit".into())),
            ("algebra", Json::Str(kind.label().into())),
            ("image_mib", Json::UInt(image_mib as u64)),
            ("workers", Json::UInt(t as u64)),
            ("audit_ms", Json::Num(ms)),
            ("speedup", Json::Num(base_ms / ms)),
            ("scan_gbs", Json::Num(image.len() as f64 / best / 1e9)),
        ]));
    }
    println!();
}

/// Delta-certification sweep: certification cost vs dirty fraction.
///
/// Pseudo-randomly marks a fraction of pages dirty (page-clustered, the
/// shape a real checkpoint footprint has), maps them to protection
/// regions exactly as `checkpoint()` does, and times `audit_regions`
/// against the full sweep — both latch-batched. The bracket-drop column
/// is regions folded per exclusive latch bracket (1.0 = the paper's
/// latch-per-region cadence; the full sweep approaches the latch-run
/// bound).
fn delta_sweep(
    kind: CodewordAlgebraKind,
    image_mib: usize,
    reps: usize,
    audit_threads: usize,
    latch_run: usize,
    rows: &mut Vec<Json>,
) {
    const PAGE: usize = 8192;
    const REGION: usize = 4096;
    println!(
        "### Delta certification, {} algebra: {image_mib} MiB image, latency vs dirty \
         fraction ({audit_threads} workers, latch run {latch_run}, best of {reps})\n",
        kind.label()
    );
    let image = noisy_image(image_mib);
    let mut prot = CodewordProtection::with_config(
        &image,
        ProtectionScheme::DataCodeword,
        REGION,
        8,
        DeferredConfig::default(),
        audit_threads,
        kind,
    )
    .expect("build protection");
    prot.set_latch_run(latch_run);
    let num_pages = image.len() / PAGE;

    let mut full_best = f64::INFINITY;
    let mut full_report = None;
    for _ in 0..reps {
        let start = Instant::now();
        let report = prot.audit(&image).expect("full audit");
        full_best = full_best.min(start.elapsed().as_secs_f64());
        assert!(report.clean());
        full_report = Some(report);
    }
    let full_report = full_report.unwrap();
    let full_ms = full_best * 1e3;

    println!("| dirty pages | regions audited | certify ms | vs full | regions/bracket |");
    println!("|---|---|---|---|---|");
    for permille in [10usize, 50, 100, 250, 500, 1000] {
        let (regions, ms, report) = if permille == 1000 {
            (prot.geometry().num_regions(), full_ms, full_report.clone())
        } else {
            // Deterministic scatter: page p is dirty iff its hash lands
            // under the threshold.
            let pages: Vec<PageId> = (0..num_pages)
                .filter(|p| (p.wrapping_mul(2654435761) >> 7) % 1000 < permille)
                .map(|p| PageId(p as u32))
                .collect();
            let regions = dali_wal::pages_to_regions(&pages, PAGE, REGION);
            let mut best = f64::INFINITY;
            let mut rep = None;
            for _ in 0..reps {
                let start = Instant::now();
                let r = prot.audit_regions(&image, &regions).expect("delta audit");
                best = best.min(start.elapsed().as_secs_f64());
                assert!(r.clean());
                assert_eq!(r.regions_checked, regions.len());
                rep = Some(r);
            }
            (regions.len(), best * 1e3, rep.unwrap())
        };
        println!(
            "| {:.1}% | {regions} | {ms:.2} | {:.2}x | {:.1} |",
            permille as f64 / 10.0,
            full_ms / ms,
            report.regions_checked as f64 / report.latch_brackets.max(1) as f64,
        );
        rows.push(Json::Obj(vec![
            ("sweep", Json::Str("delta_certification".into())),
            ("algebra", Json::Str(kind.label().into())),
            ("image_mib", Json::UInt(image_mib as u64)),
            ("dirty_permille", Json::UInt(permille as u64)),
            ("regions_audited", Json::UInt(regions as u64)),
            ("certify_ms", Json::Num(ms)),
            ("vs_full", Json::Num(full_ms / ms)),
            (
                "regions_per_bracket",
                Json::Num(report.regions_checked as f64 / report.latch_brackets.max(1) as f64),
            ),
        ]));
    }
    println!();
}

fn certification_sweep(
    kind: CodewordAlgebraKind,
    threads: &[usize],
    image_mib: usize,
    ops: usize,
    reps: usize,
    rows: &mut Vec<Json>,
) {
    println!(
        "### Checkpoint certification, {} algebra: {image_mib} MiB database, {ops} TPC-B \
         ops, latency vs audit_threads (best of {reps})\n",
        kind.label()
    );
    println!(
        "| audit_threads | checkpoint ms | speedup | audits | regions | GiB folded | audit ms |"
    );
    println!("|---|---|---|---|---|---|---|");
    let wl = TpcbConfig::small();
    let mut base_ms = 0.0;
    for &t in threads {
        let mut config = DaliConfig::small(scratch_dir(&format!("auditscale-{}-{t}", kind.tag())))
            .with_scheme(ProtectionScheme::DataCodeword)
            .with_codeword_algebra(kind)
            .with_audit_threads(t);
        config.db_pages = wl
            .required_pages(config.page_size)
            .max((image_mib << 20) / config.page_size);
        let (db, _) = DaliEngine::create(config).expect("create db");
        let mut driver = TpcbDriver::setup(&db, wl.clone()).expect("populate");
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            driver.run_ops(ops).expect("workload");
            let start = Instant::now();
            match db.checkpoint().expect("checkpoint") {
                CheckpointOutcome::Certified { .. } => {}
                other => panic!("certification failed on a clean database: {other:?}"),
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        let ms = best * 1e3;
        if t == threads[0] {
            base_ms = ms;
        }
        let stats = db.stats();
        let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
        println!(
            "| {t} | {ms:.1} | {:.2}x | {} | {} | {:.2} | {:.1} |",
            base_ms / ms,
            load(&stats.audits),
            load(&stats.regions_audited),
            load(&stats.bytes_folded) as f64 / (1u64 << 30) as f64,
            load(&stats.audit_ns) as f64 / 1e6,
        );
        rows.push(Json::Obj(vec![
            ("sweep", Json::Str("certification".into())),
            ("algebra", Json::Str(kind.label().into())),
            ("image_mib", Json::UInt(image_mib as u64)),
            ("audit_threads", Json::UInt(t as u64)),
            ("checkpoint_ms", Json::Num(ms)),
            ("speedup", Json::Num(base_ms / ms)),
            ("audits", Json::UInt(load(&stats.audits))),
            ("regions_audited", Json::UInt(load(&stats.regions_audited))),
            ("bytes_folded", Json::UInt(load(&stats.bytes_folded))),
            (
                "audit_ms_total",
                Json::Num(load(&stats.audit_ns) as f64 / 1e6),
            ),
        ]));
    }
    println!();
}

fn main() {
    let mut sizes_kib: Vec<usize> = vec![4, 64, 1024, 16384];
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut image_mib: usize = 256;
    let mut reps: usize = 5;
    let mut ops: usize = 500;
    let mut kinds: Vec<CodewordAlgebraKind> = CodewordAlgebraKind::ALL.to_vec();
    let mut json_path: Option<String> = None;
    let mut quick = false;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sizes" => sizes_kib = parse_list(&value(&mut args, "--sizes"), "--sizes"),
            "--threads" => threads = parse_list(&value(&mut args, "--threads"), "--threads"),
            "--image-mib" => {
                image_mib = value(&mut args, "--image-mib")
                    .parse()
                    .unwrap_or_else(|_| fail("--image-mib must be a number"));
            }
            "--reps" => {
                reps = value(&mut args, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps must be a number"));
            }
            "--ops" => {
                ops = value(&mut args, "--ops")
                    .parse()
                    .unwrap_or_else(|_| fail("--ops must be a number"));
            }
            "--algebra" => {
                kinds = match value(&mut args, "--algebra").as_str() {
                    "xor" => vec![CodewordAlgebraKind::XorFold],
                    "residue" => vec![CodewordAlgebraKind::Residue],
                    "both" => CodewordAlgebraKind::ALL.to_vec(),
                    _ => fail("--algebra must be xor, residue, or both"),
                };
            }
            "--json" => json_path = Some(value(&mut args, "--json")),
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    if quick {
        // CI smoke: exercise every code path once, in seconds.
        sizes_kib = vec![4, 64];
        threads = vec![1, 2];
        image_mib = 8;
        reps = 1;
        ops = 100;
    }
    if sizes_kib.is_empty() || threads.is_empty() {
        fail("--sizes and --threads each need at least one entry");
    }
    if sizes_kib.contains(&0) || threads.contains(&0) || image_mib == 0 || reps == 0 || ops == 0 {
        fail("all numeric arguments must be positive");
    }

    // Enough traffic per measurement that timer resolution is noise.
    let target_bytes = if quick { 8 << 20 } else { 256 << 20 };

    println!("Audit scaling: wide fold kernels and striped parallel scans");
    println!(
        "(host CPUs: {})\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    let mut rows: Vec<Json> = Vec::new();
    for &kind in &kinds {
        fold_bandwidth(kind, &sizes_kib, reps, target_bytes, &mut rows);
        audit_sweep(kind, &threads, image_mib, reps, &mut rows);
        delta_sweep(
            kind,
            image_mib,
            reps,
            threads.iter().copied().max().unwrap(),
            DaliConfig::small("unused").audit_latch_run,
            &mut rows,
        );
        certification_sweep(kind, &threads, image_mib, ops, reps, &mut rows);
    }
    if let Some(path) = json_path {
        let body = Json::Obj(vec![
            ("bench", Json::Str("audit_scale".into())),
            (
                "host_cpus",
                Json::UInt(std::thread::available_parallelism().map_or(0, |n| n.get() as u64)),
            ),
            ("rows", Json::Arr(rows)),
        ])
        .render()
            + "\n";
        std::fs::write(&path, body).unwrap_or_else(|e| fail(&format!("writing {path}: {e}")));
        eprintln!("wrote {path}");
    }
}
