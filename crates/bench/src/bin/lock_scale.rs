//! Lock-manager scaling: the sharded lock table vs. the single-mutex
//! baseline, measured three ways.
//!
//! 1. **Raw microbenchmark** — threads hammer the bare `LockManager`
//!    (lock / unlock_all, no engine). Disjoint mode isolates lock-table
//!    mutex contention; overlap mode adds real conflicts, condvar
//!    wake-ups and deadlocks.
//! 2. **Contended TPC-B** — `run_concurrent_contended` (workers draw
//!    from overlapping account/teller/branch ranges) at 1 shard vs. N
//!    shards, buffered commits.
//! 3. **Deadlock latency** — median time for the victim of a 2-txn X/X
//!    cross-wait to be denied: wait-for-graph detector vs. timeout.
//!
//! Usage:
//!   cargo run -p dali-bench --release --bin lock_scale [-- options]
//!
//! Options:
//!   --txns N         microbenchmark transactions per thread (default 20000)
//!   --ops N          TPC-B operations per cell (default 4000)
//!   --reps N         interleaved repetitions per cell, median reported (default 3)
//!   --threads LIST   comma-separated thread counts (default 1,2,4,8)
//!   --shards LIST    comma-separated shard counts for the micro bench (default 1,8)
//!   --detect-ms N    deadlock-detector interval, 0 disables (default 1)
//!   --section NAME   run one section only: micro | tpcb | deadlock
//!   --quick          one rep, smaller cells (CI smoke)

use dali_bench::{
    measure_deadlock_latency, run_contended_cell, run_lock_micro, LockMicroCell, ScaleCell,
};
use dali_common::ProtectionScheme;
use dali_workload::TpcbConfig;
use std::time::Duration;

const USAGE: &str = "usage: lock_scale [--txns N] [--ops N] [--reps N] \
                     [--threads LIST] [--shards LIST] [--detect-ms N] \
                     [--section micro|tpcb|deadlock] [--quick]";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_list(v: &str, flag: &str) -> Vec<usize> {
    v.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("{flag} must be comma-separated numbers")))
        })
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let mut txns: usize = 20_000;
    let mut ops: usize = 4_000;
    let mut reps: usize = 3;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut shards: Vec<usize> = vec![1, 8];
    let mut detect_ms: f64 = 1.0;
    let mut section: Option<String> = None;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--txns" => {
                txns = value(&mut args, "--txns")
                    .parse()
                    .unwrap_or_else(|_| fail("--txns must be a number"));
            }
            "--ops" => {
                ops = value(&mut args, "--ops")
                    .parse()
                    .unwrap_or_else(|_| fail("--ops must be a number"));
            }
            "--reps" => {
                reps = value(&mut args, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps must be a number"));
            }
            "--threads" => threads = parse_list(&value(&mut args, "--threads"), "--threads"),
            "--shards" => shards = parse_list(&value(&mut args, "--shards"), "--shards"),
            "--detect-ms" => {
                detect_ms = value(&mut args, "--detect-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--detect-ms must be a number"));
            }
            "--section" => section = Some(value(&mut args, "--section")),
            "--quick" => {
                txns = 4_000;
                ops = 1_000;
                reps = 1;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    if txns == 0 || ops == 0 || reps == 0 || threads.is_empty() || shards.is_empty() {
        fail("--txns/--ops/--reps must be positive, lists non-empty");
    }
    let detect = (detect_ms > 0.0).then(|| Duration::from_secs_f64(detect_ms / 1e3));
    let want = |name: &str| section.as_deref().is_none_or(|s| s == name);

    // ---- 1. raw microbenchmark --------------------------------------
    for overlap in [false, true] {
        if !want("micro") {
            break;
        }
        let label = if overlap {
            "overlapping records (conflicts + deadlocks, 1024-record space)"
        } else {
            "disjoint records (pure lock-table contention)"
        };
        println!(
            "### Raw lock manager: {label}\n\n\
             {txns} txns/thread x 4 X-locks, {reps} reps, median locks/s\n"
        );
        let mut head = String::from("| Shards |");
        for t in &threads {
            head.push_str(&format!(" {t} thr |"));
        }
        println!("{head}\n|:--|{}", "--:|".repeat(threads.len()));
        for &sh in &shards {
            let mut row = format!("| {sh} |");
            for &t in &threads {
                let cells: Vec<LockMicroCell> = (0..reps)
                    .map(|_| run_lock_micro(sh, t, txns, 4, 1024, overlap, detect))
                    .collect();
                let locks = median(cells.iter().map(|c| c.locks_per_sec).collect());
                let denials = cells[cells.len() / 2].denials;
                if overlap && denials > 0 {
                    row.push_str(&format!(" {:.0}k ({denials} den) |", locks / 1e3));
                } else {
                    row.push_str(&format!(" {:.0}k |", locks / 1e3));
                }
            }
            println!("{row}");
        }
        println!();
    }

    // ---- 2. contended TPC-B ----------------------------------------
    if want("tpcb") {
        let mut wl = TpcbConfig::scale();
        wl.ops_per_txn = 5;
        let timeout = Duration::from_millis(100);
        println!(
            "### Contended TPC-B (overlapping ranges, buffered commits)\n\n\
             {} accounts / {} tellers / {} branches, {} ops/txn, {ops} ops per cell x {reps} reps, \
             100 ms lock timeout\n",
            wl.accounts, wl.tellers, wl.branches, wl.ops_per_txn
        );
        let run_row = |label: &str, sh: usize, det: Option<Duration>| {
            let mut row = format!("| {label} |");
            for &t in &threads {
                let cells: Vec<ScaleCell> = (0..reps)
                    .map(|_| {
                        run_contended_cell(
                            ProtectionScheme::Baseline,
                            &wl,
                            t,
                            ops,
                            sh,
                            det,
                            timeout,
                        )
                    })
                    .collect();
                let v = median(cells.iter().map(|c| c.wall_ops_per_sec).collect());
                let retries = median(cells.iter().map(|c| c.retries as f64).collect());
                let cpu = median(cells.iter().map(|c| c.cpu_us_per_op).collect());
                row.push_str(&format!(" {v:.0} ({retries:.0} rtry, {cpu:.1}us) |"));
            }
            println!("{row}");
        };
        let header = |title: &str| {
            let mut head = String::from("| Lock manager |");
            for t in &threads {
                head.push_str(&format!(" {t} thr |"));
            }
            println!("{title}\n\n{head}\n|:--|{}", "--:|".repeat(threads.len()));
        };

        // Headline: the seed's lock manager as a system (single mutex,
        // timeout-only deadlock resolution) vs. the new subsystem
        // (sharded table + wait-for-graph detection).
        header("Seed baseline vs. new subsystem:");
        run_row("single mutex, timeout-only (seed)", 1, None);
        let max_shards = shards.iter().copied().max().unwrap_or(8);
        run_row(
            &format!("{max_shards} shards + deadlock detector"),
            max_shards,
            detect,
        );
        println!();

        // Isolation: shard count alone, detector held fixed on both
        // rows, so the detection win and the sharding win are separable.
        header("Shard count alone (detector on for both):");
        for &sh in &shards {
            run_row(
                &format!("{sh} shard{}, detector on", if sh == 1 { "" } else { "s" }),
                sh,
                detect,
            );
        }
        println!();
    }

    // ---- 3. deadlock latency ---------------------------------------
    if want("deadlock") {
        let timeout = Duration::from_millis(250);
        let det_iv = detect.unwrap_or(Duration::from_millis(1));
        let det = measure_deadlock_latency(Some(det_iv), timeout, 15);
        let to = measure_deadlock_latency(None, timeout, 5);
        println!(
            "### Deadlock resolution latency (2-txn X/X cross wait, median)\n\n\
             | resolution | victim denied after |\n|:--|--:|\n\
             | wait-for-graph detector ({} ms interval) | {:.1} ms |\n\
             | timeout only ({} ms lock_timeout) | {:.1} ms |",
            det_iv.as_secs_f64() * 1e3,
            det.as_secs_f64() * 1e3,
            timeout.as_millis(),
            to.as_secs_f64() * 1e3,
        );
    }
}
