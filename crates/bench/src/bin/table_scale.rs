//! Thread-scaling sweep: the paper's Table 2 extended with a thread
//! axis. Runs the concurrent TPC-B driver at 1/2/4/8 threads under
//! Baseline, Data CW, Precheck, ReadLog and Deferred Maintenance, and
//! emits a markdown table of ops/s (wall) with per-scheme speedups.
//!
//! Commits are durable (`sync_commit`) by default: that is the regime
//! where extra threads help — workers overlap their commit fsyncs and
//! piggyback on each other's — and where the latch-mode differences
//! between schemes (shared for plain codeword maintenance, exclusive for
//! prechecked reads) actually contend. `--no-sync` shows the pure-CPU
//! regime instead, which on a single-core host cannot scale.
//!
//! Usage:
//!   cargo run -p dali-bench --release --bin table_scale [-- options]
//!
//! Options:
//!   --ops N          operations per cell (default 6000)
//!   --reps N         interleaved repetitions per cell, median reported (default 3)
//!   --threads LIST   comma-separated thread counts (default 1,2,4,8)
//!   --scale paper    use the full paper-sized tables (default: scale config,
//!                    10% tables, 10-op transactions)
//!   --no-sync        buffered commits (no fsync)
//!
//! Set DALI_BENCH_VERBOSE=1 to print every repetition.

use dali_bench::{format_scale_markdown, run_scale_sweep, scale_schemes};
use dali_workload::TpcbConfig;

const USAGE: &str = "usage: table_scale [--ops N] [--reps N] [--threads LIST] \
                     [--scale paper|scale] [--no-sync]";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut ops: usize = 6_000;
    let mut reps: usize = 3;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut wl = TpcbConfig::scale();
    let mut sync_commit = true;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => {
                ops = value(&mut args, "--ops")
                    .parse()
                    .unwrap_or_else(|_| fail("--ops must be a number"));
            }
            "--reps" => {
                reps = value(&mut args, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps must be a number"));
            }
            "--threads" => {
                threads = value(&mut args, "--threads")
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .unwrap_or_else(|_| fail("--threads must be comma-separated numbers"))
                    })
                    .collect();
            }
            "--scale" => {
                wl = match value(&mut args, "--scale").as_str() {
                    "paper" => TpcbConfig::paper(),
                    "scale" => TpcbConfig::scale(),
                    other => fail(&format!("unknown --scale '{other}' (paper|scale)")),
                };
            }
            "--no-sync" => sync_commit = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    if ops == 0 || reps == 0 {
        fail("--ops and --reps must be positive");
    }
    if threads.is_empty() {
        fail("--threads needs at least one count");
    }
    // The driver partitions branch rows across workers, so a worker count
    // above the branch count cannot be satisfied.
    if let Some(&bad) = threads.iter().find(|&&t| t == 0 || t > wl.branches) {
        fail(&format!(
            "thread count {bad} out of range (1..={} branches)",
            wl.branches
        ));
    }
    let schemes = scale_schemes();

    println!("Thread scaling: TPC-B ops/s vs worker threads");
    println!(
        "({} accounts / {} tellers / {} branches, {} ops per cell x {} reps \
         (interleaved, median), {} ops/txn, durable commits: {})\n",
        wl.accounts, wl.tellers, wl.branches, ops, reps, wl.ops_per_txn, sync_commit
    );
    eprintln!(
        "running {} schemes x {:?} threads x {reps} reps; \
         use --ops 2000 --reps 1 for a quick pass",
        schemes.len(),
        threads
    );

    // Warmup pass, discarded (page cache, frequency ramp).
    let _ = dali_bench::run_scale_cell(schemes[0], &wl, threads[0], ops, sync_commit);
    let cells = run_scale_sweep(&schemes, &wl, &threads, ops, sync_commit, reps);
    println!("{}", format_scale_markdown(&schemes, &threads, &cells));
}
