//! Logical-corruption tracing (paper §7).
//!
//! The paper's closing observation: the read-logging machinery built for
//! *physical* corruption recovery is also "a significant aid" for
//! *logical* corruption — wrong data entered by buggy application code or
//! bad user input, which no codeword can detect. Once a user or auditor
//! identifies the offending transaction(s), the read log records let the
//! DBMS compute the **taint closure**: every transaction that
//! (transitively) read data written by an offending transaction, and
//! every byte range whose current value derives from one.
//!
//! This module implements that tracing as a pure scan over the stable
//! log. It does not modify the database — the paper leaves repair of
//! logical corruption to out-of-band compensation — but the report tells
//! the operator exactly which transactions and data to look at, and can
//! seed a prior-state recovery decision.

use crate::corruption::RangeSet;
use dali_common::{DbAddr, Lsn, Result, TxnId};
use dali_wal::record::LogRecord;
use dali_wal::SystemLog;
use std::collections::HashSet;
use std::path::Path;

/// Result of a taint trace.
#[derive(Clone, Debug, Default)]
pub struct TaintReport {
    /// The seed transactions plus every transaction that transitively
    /// read tainted data.
    pub tainted_txns: Vec<TxnId>,
    /// Byte ranges whose values derive from a tainted transaction.
    pub tainted_data: Vec<(DbAddr, usize)>,
    /// Log records examined.
    pub records_scanned: usize,
    /// Read log records found (zero means the scheme wasn't logging reads
    /// and the trace saw only writes — a warning sign for completeness).
    pub read_records_seen: usize,
}

impl TaintReport {
    /// Is the transaction in the closure?
    pub fn contains(&self, txn: TxnId) -> bool {
        self.tainted_txns.contains(&txn)
    }
}

/// Compute the taint closure of `seeds` over the stable log, scanning
/// from `from` (typically the `ck_end` of the oldest retained checkpoint,
/// or `Lsn::ZERO` if the log has never been truncated).
///
/// Mechanics mirror the delete-transaction redo scan (§4.3), but no state
/// is modified:
///
/// * a write (`PhysicalRedo`) by a tainted transaction taints its range;
/// * a read (`ReadLog`) or write overlapping tainted data taints the
///   transaction;
/// * a tainted transaction's rollback (abort) *un*taints nothing — the
///   trace is conservative.
pub fn trace_taint(
    log_path: &Path,
    from: Lsn,
    seeds: &[TxnId],
    kind: dali_common::CodewordAlgebraKind,
) -> Result<TaintReport> {
    let records = SystemLog::scan_stable_with(log_path, from, kind)?;
    let mut tainted: HashSet<TxnId> = seeds.iter().copied().collect();
    let mut data = RangeSet::new();
    let mut read_records_seen = 0usize;
    let mut records_scanned = 0usize;
    // One forward pass is exactly right: taint at log position L can only
    // affect records after L. Seeds are tainted from the start, so their
    // earliest writes taint in order; transitive readers appear after the
    // tainting write in the log (strict 2PL serializes conflicting
    // operations in log order, the same property §4.3's recovery scan
    // leans on). A fixpoint loop would be WRONG, not just wasteful: it
    // would re-apply taint to writes that happened before the taint
    // existed and cascade over the entire history.
    for (_lsn, rec) in &records {
        records_scanned += 1;
        match rec {
            LogRecord::PhysicalRedo {
                txn, addr, data: d, ..
            } => {
                if tainted.contains(txn) {
                    data.insert(*addr, d.len());
                } else if data.overlaps(*addr, d.len()) {
                    // Overwrote tainted bytes without (necessarily)
                    // reading them: conservatively taint the writer, as
                    // the basic §4.3 scan does for write records.
                    tainted.insert(*txn);
                    data.insert(*addr, d.len());
                }
            }
            LogRecord::ReadLog { txn, addr, len, .. } => {
                read_records_seen += 1;
                if !tainted.contains(txn) && data.overlaps(*addr, *len as usize) {
                    tainted.insert(*txn);
                }
            }
            _ => {}
        }
    }
    let mut tainted_txns: Vec<TxnId> = tainted.into_iter().collect();
    tainted_txns.sort_unstable();
    Ok(TaintReport {
        tainted_txns,
        tainted_data: data.ranges(),
        records_scanned,
        read_records_seen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{DaliConfig, ProtectionScheme};

    fn tmpdir(name: &str) -> dali_testutil::TempDir {
        dali_testutil::TempDir::new(&format!("trace-{name}"))
    }

    #[test]
    fn taint_closure_follows_reads() {
        let dir = tmpdir("closure");
        let config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::ReadLogging);
        let (db, _) = crate::DaliEngine::create(config).unwrap();
        let t = db.create_table("t", 128, 32).unwrap();

        let setup = db.begin().unwrap();
        let a = setup.insert(t, &[1u8; 128]).unwrap();
        let b = setup.insert(t, &[2u8; 128]).unwrap();
        let c = setup.insert(t, &[3u8; 128]).unwrap();
        let d = setup.insert(t, &[4u8; 128]).unwrap();
        setup.commit().unwrap();

        // T1 (the "fat finger") writes a bogus value to A.
        let t1 = db.begin().unwrap();
        let t1_id = t1.id();
        t1.update(a, &[9u8; 128]).unwrap();
        t1.commit().unwrap();

        // T2 reads A, writes B (tainted transitively).
        let t2 = db.begin().unwrap();
        let t2_id = t2.id();
        let v = t2.read_vec(a).unwrap();
        t2.update(b, &v).unwrap();
        t2.commit().unwrap();

        // T3 reads C, writes D (clean).
        let t3 = db.begin().unwrap();
        let t3_id = t3.id();
        let v = t3.read_vec(c).unwrap();
        t3.update(d, &v).unwrap();
        t3.commit().unwrap();

        // T4 reads B (tainted via T2).
        let t4 = db.begin().unwrap();
        let t4_id = t4.id();
        let _ = t4.read_vec(b).unwrap();
        t4.commit().unwrap();

        db.db().syslog.flush(false).unwrap();
        let report = trace_taint(
            &db.config().dir.join("system.log"),
            Lsn::ZERO,
            &[t1_id],
            db.config().codeword_algebra,
        )
        .unwrap();
        assert!(report.contains(t1_id));
        assert!(report.contains(t2_id), "{report:?}");
        assert!(report.contains(t4_id), "{report:?}");
        assert!(!report.contains(t3_id), "{report:?}");
        assert!(report.read_records_seen > 0);
        assert!(!report.tainted_data.is_empty());
    }

    #[test]
    fn empty_seed_taints_nothing() {
        let dir = tmpdir("empty");
        let config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::ReadLogging);
        let (db, _) = crate::DaliEngine::create(config).unwrap();
        let t = db.create_table("t", 8, 8).unwrap();
        let txn = db.begin().unwrap();
        txn.insert(t, &[1u8; 8]).unwrap();
        txn.commit().unwrap();
        db.db().syslog.flush(false).unwrap();
        let report = trace_taint(
            &db.config().dir.join("system.log"),
            Lsn::ZERO,
            &[],
            db.config().codeword_algebra,
        )
        .unwrap();
        assert!(report.tainted_txns.is_empty());
        assert!(report.tainted_data.is_empty());
    }

    #[test]
    fn trace_without_read_logging_flags_it() {
        let dir = tmpdir("noreads");
        let config = DaliConfig::small(dir.path()).with_scheme(ProtectionScheme::Baseline);
        let (db, _) = crate::DaliEngine::create(config).unwrap();
        let t = db.create_table("t", 8, 8).unwrap();
        let t1 = db.begin().unwrap();
        let t1_id = t1.id();
        let rec = t1.insert(t, &[1u8; 8]).unwrap();
        t1.commit().unwrap();
        let t2 = db.begin().unwrap();
        let _ = t2.read_vec(rec).unwrap(); // not logged under Baseline
        t2.commit().unwrap();
        db.db().syslog.flush(false).unwrap();
        let report = trace_taint(
            &db.config().dir.join("system.log"),
            Lsn::ZERO,
            &[t1_id],
            db.config().codeword_algebra,
        )
        .unwrap();
        assert_eq!(
            report.read_records_seen, 0,
            "caller can tell the trace is blind"
        );
        assert!(report.contains(t1_id));
    }
}
