//! Shared engine state: one [`Db`] per open database.

use crate::att::Att;
use crate::catalog::Catalog;
use crate::heap::HeapRuntime;
use crate::lock::LockManager;
use dali_codeword::CodewordProtection;
use dali_common::{DaliConfig, DaliError, Lsn, Result, TableId};
use dali_mem::{DbImage, PageProtector};
use dali_wal::SystemLog;
use parking_lot::{Mutex, RwLock};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Operation counters (diagnostics and the §5.3 statistics).
#[derive(Default, Debug)]
pub struct EngineStats {
    pub reads: AtomicU64,
    pub inserts: AtomicU64,
    pub updates: AtomicU64,
    pub deletes: AtomicU64,
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    pub read_log_records: AtomicU64,
    /// Full-database audit sweeps run (on-demand audits plus checkpoint
    /// certification passes).
    pub audits: AtomicU64,
    /// Regions folded-and-compared across all audit sweeps.
    pub regions_audited: AtomicU64,
    /// Bytes XOR-folded by audit sweeps (regions × region size).
    pub bytes_folded: AtomicU64,
    /// Wall-clock nanoseconds spent inside audit sweeps.
    pub audit_ns: AtomicU64,
    pub checkpoints: AtomicU64,
    /// Checkpoint certifications that swept every region (full audits).
    pub certify_full: AtomicU64,
    /// Checkpoint certifications restricted to the dirty footprint.
    pub certify_delta: AtomicU64,
    /// Regions folded by checkpoint certification sweeps (full + delta).
    pub certify_regions_certified: AtomicU64,
    /// Regions a delta certification *skipped* relative to a full sweep
    /// (clean-by-footprint: no dirty page or queued delta touched them).
    pub certify_regions_skipped: AtomicU64,
    /// Exclusive latch brackets taken by audit and certification sweeps
    /// (one per region run; equals regions audited at latch run 1).
    pub audit_latch_brackets: AtomicU64,
    /// Regions handed to the parity repair path (each corrupt region in a
    /// failed audit counts once).
    pub repair_attempted: AtomicU64,
    /// Regions rebuilt in place from their parity group (no log replay).
    pub repair_succeeded: AtomicU64,
    /// Repair attempts that fell back to log-based recovery (stale
    /// parity, double fault in a group, or failed re-verification).
    pub repair_fell_back: AtomicU64,
    /// Bytes written back by successful in-place rebuilds.
    pub repair_bytes_rebuilt: AtomicU64,
    /// Wall-clock nanoseconds spent inside repair attempts (parity path
    /// only; a log-based fallback's replay time is not included).
    pub repair_ns: AtomicU64,
    /// Parity groups verified by checkpoint certification (the dirty
    /// parity footprint — see `ckpt`'s certification step).
    pub certify_parity_groups: AtomicU64,
    /// Segment files currently retained in the log directory (gauge,
    /// refreshed at open and after each checkpoint).
    pub log_segments_active: AtomicU64,
    /// Segments retired (unlinked) by checkpoint-driven retention since
    /// this database was opened.
    pub log_segments_retired: AtomicU64,
    /// Total bytes of retained log segments on disk (gauge).
    pub log_bytes_on_disk: AtomicU64,
    /// Worker threads the last restart's parallel redo apply actually
    /// used (1 on a serial or corruption-mode replay).
    pub redo_threads_used: AtomicU64,
    /// Wall-clock nanoseconds of the last restart's redo apply phase.
    pub redo_parallel_ns: AtomicU64,
}

impl EngineStats {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Checkpoint bookkeeping.
pub struct CkptState {
    /// Which image (0/1) the next checkpoint writes.
    pub next_image: usize,
    /// Monotonic checkpoint serial (anchor tie-break / staleness check).
    pub serial: u64,
    /// Checkpoints certified since the last *full* sweep of this
    /// database (delta certifications in a row). Gates the
    /// [`DaliConfig::full_certify_every`] cadence.
    pub ckpts_since_full: u32,
    /// Force the next certification to sweep every region regardless of
    /// cadence. Set at recovery (the dirty footprint does not describe
    /// what a crash or a repair touched) and after any certification
    /// finds corruption.
    pub force_full: bool,
}

/// Shared state of one open database.
pub struct Db {
    pub config: DaliConfig,
    pub image: Arc<DbImage>,
    pub prot: CodewordProtection,
    pub protector: PageProtector,
    pub syslog: SystemLog,
    pub att: Att,
    /// Record-lock table, sharded by record-id hash
    /// ([`DaliConfig::lock_shards`]), with optional wait-for-graph
    /// deadlock detection.
    pub locks: LockManager,
    pub catalog: RwLock<Catalog>,
    pub heaps: RwLock<Vec<Arc<HeapRuntime>>>,
    /// Physical-update quiescence: updaters (and log-migrating commits)
    /// hold this shared across their critical windows; the checkpointer
    /// takes it exclusively to snapshot an update-consistent state.
    pub quiesce: RwLock<()>,
    pub ckpt_state: Mutex<CkptState>,
    pub txn_counter: AtomicU64,
    pub audit_counter: AtomicU64,
    /// LSN of the begin record of the last audit that reported clean —
    /// `Audit_SN` in paper §4.3.
    pub last_clean_audit: Mutex<Option<Lsn>>,
    /// Set on simulated crash or corruption-triggered shutdown; every
    /// public operation fails with [`DaliError::Crashed`] afterwards.
    pub crashed: AtomicBool,
    pub stats: EngineStats,
}

impl Db {
    /// Fail if the database has crashed / been poisoned.
    #[inline]
    pub fn check_alive(&self) -> Result<()> {
        if self.crashed.load(Ordering::Acquire) {
            Err(DaliError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Poison the database: all subsequent operations fail until the
    /// caller reopens (restart recovery).
    pub fn poison(&self) {
        self.crashed.store(true, Ordering::Release);
    }

    /// Heap runtime for a table.
    pub fn heap(&self, table: TableId) -> Result<Arc<HeapRuntime>> {
        self.heaps
            .read()
            .get(table.0 as usize)
            .cloned()
            .ok_or_else(|| DaliError::NotFound(format!("table {table}")))
    }

    /// Allocate a fresh transaction id.
    pub fn next_txn_id(&self) -> dali_common::TxnId {
        dali_common::TxnId(self.txn_counter.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocate a fresh audit id.
    pub fn next_audit_id(&self) -> u64 {
        self.audit_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Refresh the log-directory gauges in [`EngineStats`] from the
    /// segment directory (called at open and after each checkpoint's
    /// retirement pass).
    pub fn refresh_log_gauges(&self) -> Result<()> {
        let seg = self.syslog.segment_stats()?;
        self.stats
            .log_segments_active
            .store(seg.segments, Ordering::Relaxed);
        self.stats
            .log_segments_retired
            .store(seg.retired, Ordering::Relaxed);
        self.stats
            .log_bytes_on_disk
            .store(seg.bytes_on_disk, Ordering::Relaxed);
        Ok(())
    }

    // ---- file layout ----

    pub fn log_path(dir: &std::path::Path) -> PathBuf {
        dir.join("system.log")
    }

    pub fn img_path(dir: &std::path::Path, image: usize) -> PathBuf {
        dir.join(if image == 0 {
            "ckpt_a.img"
        } else {
            "ckpt_b.img"
        })
    }

    pub fn meta_path(dir: &std::path::Path, image: usize) -> PathBuf {
        dir.join(if image == 0 {
            "ckpt_a.meta"
        } else {
            "ckpt_b.meta"
        })
    }

    pub fn anchor_path(dir: &std::path::Path) -> PathBuf {
        dir.join("cur_ckpt")
    }

    pub fn parity_path(dir: &std::path::Path, image: usize) -> PathBuf {
        dir.join(if image == 0 {
            "ckpt_a.parity"
        } else {
            "ckpt_b.parity"
        })
    }

    pub fn marker_path(dir: &std::path::Path) -> PathBuf {
        dir.join("corrupt.marker")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_layout() {
        let d = std::path::Path::new("/x");
        assert_eq!(Db::log_path(d), PathBuf::from("/x/system.log"));
        assert_eq!(Db::img_path(d, 0), PathBuf::from("/x/ckpt_a.img"));
        assert_eq!(Db::img_path(d, 1), PathBuf::from("/x/ckpt_b.img"));
        assert_eq!(Db::meta_path(d, 1), PathBuf::from("/x/ckpt_b.meta"));
        assert_eq!(Db::anchor_path(d), PathBuf::from("/x/cur_ckpt"));
        assert_eq!(Db::marker_path(d), PathBuf::from("/x/corrupt.marker"));
    }
}
